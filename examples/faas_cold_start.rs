//! FaaS-style scenario: a bursty, high-QPS workload where the per-hour peak
//! is hundreds of times the trough (the paper's scalability workload,
//! §VII-B2). The example runs RobustScaler-RT against the Adaptive Backup
//! Pool and reports response-time statistics and decision-computation time,
//! demonstrating that the optimizer stays fast even at high QPS.
//!
//! Run with: `cargo run --release --example faas_cold_start`

use robustscaler::core::{
    evaluate_policy, RobustScalerConfig, RobustScalerPipeline, RobustScalerVariant,
};
use robustscaler::simulator::{AdaptiveBackupPool, PendingTimeDistribution, SimulationConfig};
use robustscaler::traces::{simulated_high_qps, ProcessingTimeModel};
use std::time::Instant;

fn main() {
    // Peak of 30 QPS (scaled down from the paper's 10^4 so the example runs
    // in seconds), pod pending time 13 s, Exp(20 s) processing.
    let trace = simulated_high_qps(
        30.0,
        5.0 * 3_600.0,
        ProcessingTimeModel::Exponential { mean: 20.0 },
        77,
    );
    println!(
        "FaaS-like workload: {} invocations over {:.1} h, mean {:.2} QPS",
        trace.len(),
        trace.duration() / 3_600.0,
        trace.mean_qps()
    );
    let (train, test) = trace.split_at(trace.start() + 4.0 * 3_600.0).unwrap();

    let sim = SimulationConfig {
        pending: PendingTimeDistribution::Deterministic(13.0),
        seed: 9,
        recent_history_window: 600.0,
    };

    // RobustScaler-RT targeting an expected response time of 21 s
    // (processing mean 20 s + 1 s waiting budget).
    let mut config =
        RobustScalerConfig::for_variant(RobustScalerVariant::ResponseTime { target: 21.0 });
    config.mean_processing = 20.0;
    config.planning_interval = 10.0;
    config.monte_carlo_samples = 300;
    let pipeline = RobustScalerPipeline::new(config).expect("valid configuration");

    let train_started = Instant::now();
    let mut policy = pipeline.build_policy(&train).expect("training succeeds");
    let training_seconds = train_started.elapsed().as_secs_f64();

    let (rs, rs_metrics) = evaluate_policy(&test, &mut policy, sim).unwrap();
    let planning_rounds = policy.planning_rounds();
    let compute_seconds = policy.compute_seconds();

    let mut adap = AdaptiveBackupPool::new(20.0);
    let (adap_result, adap_metrics) = evaluate_policy(&test, &mut adap, sim).unwrap();

    println!("\nNHPP training time: {training_seconds:.2} s");
    println!(
        "decision computation: {planning_rounds} planning rounds, {:.3} ms per round",
        1_000.0 * compute_seconds / planning_rounds.max(1) as f64
    );

    println!(
        "\n{:<22} {:>9} {:>9} {:>10} {:>14}",
        "policy", "hit_rate", "rt_avg", "rt_p99", "relative_cost"
    );
    for (result, metrics) in [(&rs, &rs_metrics), (&adap_result, &adap_metrics)] {
        let p99 = metrics.rt_quantiles(&[0.99]).unwrap()[0];
        println!(
            "{:<22} {:>9.3} {:>9.1} {:>10.1} {:>14.3}",
            result.policy, result.hit_rate, result.rt_avg, p99, result.relative_cost
        );
    }
    println!(
        "\nRobustScaler-RT keeps the mean response time near the 20 s processing\n\
         floor by pre-warming instances just ahead of the hourly surge, while the\n\
         adaptive pool reacts only after the surge has begun."
    );
}
