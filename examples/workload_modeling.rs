//! Workload modeling walk-through: use the lower layers directly —
//! periodicity detection, regularized NHPP fitting, forecasting and
//! goodness-of-fit — without the simulator. This is the "module 1-3 as a
//! general workload modeling technique" usage the paper points out in §IV.
//!
//! Run with: `cargo run --release --example workload_modeling`

use robustscaler::nhpp::{
    rescaled_ks_statistic, AdmmConfig, ForecastConfig, Forecaster, Intensity, NhppModel,
};
use robustscaler::timeseries::{detect_period, PeriodicityConfig, TimeSeries};
use robustscaler::traces::{alibaba_like, TraceConfig};

fn main() {
    // Three days of the Alibaba-like workload at reduced scale.
    let trace = alibaba_like(&TraceConfig {
        duration: 3.0 * 86_400.0,
        traffic_scale: 0.2,
        ..TraceConfig::alibaba_default()
    });
    println!("workload: {} jobs over 3 days", trace.len());

    // 1. Aggregate into a 60-second count series.
    let counts = TimeSeries::from_event_times(
        &trace.arrival_times(),
        trace.start(),
        trace.end() + 60.0,
        60.0,
    )
    .unwrap();
    println!("count series: {} buckets of 60 s", counts.len());

    // 2. Robust periodicity detection on the 5-minute aggregated series.
    let aggregated = counts.aggregate_mean(5).unwrap();
    let period = detect_period(&aggregated, &PeriodicityConfig::default())
        .unwrap()
        .map(|r| r.period * 5);
    match period {
        Some(p) => println!("detected period: {p} buckets (= {:.1} h)", p as f64 / 60.0),
        None => println!("no period detected"),
    }

    // 3. Fit the periodicity-regularized NHPP with ADMM.
    let model = NhppModel::fit(&counts, period, AdmmConfig::default()).unwrap();
    let report = model.report();
    println!(
        "ADMM: {} iterations, converged = {}, final loss = {:.1}",
        report.iterations, report.converged, report.final_loss
    );

    // 4. Goodness of fit via time-rescaling: under a well-specified model the
    //    rescaled inter-arrival times are Exp(1).
    let ks = rescaled_ks_statistic(
        &model.historical_intensity(),
        &trace.arrival_times(),
        trace.start(),
    );
    println!(
        "time-rescaling KS statistic: {ks:.4} (5% critical value ~ {:.4})",
        1.36 / (trace.len() as f64).sqrt()
    );

    // 5. Forecast the next six hours and report the expected arrivals.
    let forecaster = Forecaster::new(model.clone(), ForecastConfig::default()).unwrap();
    let forecast = forecaster.forecast(model.end(), 6.0 * 3_600.0).unwrap();
    println!(
        "expected arrivals in the next 6 h: {:.0} (recent observed rate {:.2} QPS)",
        forecast.total_mass(),
        forecaster.local_intensity(model.end()).unwrap()
    );
    for hour in 0..6 {
        let from = model.end() + hour as f64 * 3_600.0;
        println!(
            "  hour +{hour}: {:>7.1} expected arrivals",
            forecast.integrated(from, from + 3_600.0)
        );
    }
}
