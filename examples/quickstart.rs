//! Quickstart: train RobustScaler-HP on a synthetic diurnal workload and
//! compare it against the reactive strategy and a fixed Backup Pool.
//!
//! Run with: `cargo run --release --example quickstart`

use robustscaler::core::{
    evaluate_policy, RobustScalerConfig, RobustScalerPipeline, RobustScalerVariant,
};
use robustscaler::simulator::{BackupPool, PendingTimeDistribution, Reactive, SimulationConfig};
use robustscaler::traces::{google_like, TraceConfig};

fn main() {
    // A half-scale Google-like diurnal trace over 36 hours keeps the example
    // fast while still exhibiting the daily pattern RobustScaler exploits.
    let trace = google_like(&TraceConfig {
        duration: 36.0 * 3_600.0,
        traffic_scale: 0.5,
        ..TraceConfig::google_default()
    });
    println!(
        "workload: {} queries over {:.1} h (mean {:.3} QPS)",
        trace.len(),
        trace.duration() / 3_600.0,
        trace.mean_qps()
    );

    // Train on the first 24 hours, evaluate on the remaining 12.
    let (train, test) = trace.split_at(trace.start() + 24.0 * 3_600.0).unwrap();

    let mut config =
        RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target: 0.9 });
    config.mean_processing = 60.0;
    let pipeline = RobustScalerPipeline::new(config).expect("valid configuration");
    let trained = pipeline.train(&train).expect("training succeeds");
    match &trained.periodicity {
        Some(p) => println!(
            "detected period: {} buckets of {}s (ACF {:.2})",
            p.period,
            pipeline.config().bucket_width,
            p.acf
        ),
        None => println!("no periodicity detected"),
    }

    let sim = SimulationConfig {
        pending: PendingTimeDistribution::Deterministic(13.0),
        seed: 42,
        recent_history_window: 600.0,
    };

    let mut robustscaler = pipeline.build_policy(&train).expect("policy builds");
    let (rs, _) = evaluate_policy(&test, &mut robustscaler, sim).unwrap();

    let mut reactive = Reactive::new();
    let (reactive_result, _) = evaluate_policy(&test, &mut reactive, sim).unwrap();

    let mut pool = BackupPool::new(2);
    let (bp, _) = evaluate_policy(&test, &mut pool, sim).unwrap();

    println!(
        "\n{:<22} {:>9} {:>9} {:>14}",
        "policy", "hit_rate", "rt_avg", "relative_cost"
    );
    for r in [&reactive_result, &bp, &rs] {
        println!(
            "{:<22} {:>9.3} {:>9.1} {:>14.3}",
            r.policy, r.hit_rate, r.rt_avg, r.relative_cost
        );
    }
    println!(
        "\nRobustScaler-HP reached a {:.1}% hit rate at {:.2}x the reactive cost.",
        rs.hit_rate * 100.0,
        rs.relative_cost
    );
}
