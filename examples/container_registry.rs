//! Container-registry scenario (the paper's CRS motivation): very low,
//! noisy traffic with long image-build processing times, where keeping a
//! warm pool is wasteful but cold starts hurt the build latency.
//!
//! The example sweeps the Backup Pool size and the Adaptive Backup Pool
//! ratio, and contrasts them with RobustScaler-HP at two target levels,
//! printing a miniature version of the paper's Fig. 4(a) Pareto table.
//!
//! Run with: `cargo run --release --example container_registry`

use robustscaler::core::{
    evaluate_policy, EvaluationResult, RobustScalerConfig, RobustScalerPipeline,
    RobustScalerVariant,
};
use robustscaler::simulator::{
    AdaptiveBackupPool, BackupPool, PendingTimeDistribution, SimulationConfig,
};
use robustscaler::traces::{crs_like, ProcessingTimeModel, TraceConfig};

fn main() {
    // One week of CRS-like traffic at 3x scale keeps enough queries for a
    // stable comparison while running in seconds.
    let trace = crs_like(&TraceConfig {
        duration: 7.0 * 86_400.0,
        traffic_scale: 3.0,
        processing: ProcessingTimeModel::LogNormal {
            mean: 180.0,
            std_dev: 240.0,
        },
        seed: 11,
    });
    println!(
        "CRS-like workload: {} queries over {:.1} days",
        trace.len(),
        trace.duration() / 86_400.0
    );
    // Train on the first five days, evaluate on the last two.
    let (train, test) = trace.split_at(trace.start() + 5.0 * 86_400.0).unwrap();

    let sim = SimulationConfig {
        pending: PendingTimeDistribution::Deterministic(13.0),
        seed: 3,
        recent_history_window: 600.0,
    };

    let mut rows: Vec<EvaluationResult> = Vec::new();

    for &size in &[0usize, 1, 2, 4] {
        let mut policy = BackupPool::new(size);
        let (mut result, _) = evaluate_policy(&test, &mut policy, sim).unwrap();
        result.policy = format!("backup-pool(B={size})");
        rows.push(result);
    }
    for &ratio in &[50.0, 200.0] {
        let mut policy = AdaptiveBackupPool::new(ratio);
        let (mut result, _) = evaluate_policy(&test, &mut policy, sim).unwrap();
        result.policy = format!("adaptive-bp(r={ratio})");
        rows.push(result);
    }
    for &target in &[0.8, 0.95] {
        let mut config =
            RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability { target });
        config.mean_processing = 180.0;
        config.planning_interval = 60.0;
        config.monte_carlo_samples = 200;
        let pipeline = RobustScalerPipeline::new(config).expect("valid configuration");
        let mut policy = pipeline.build_policy(&train).expect("training succeeds");
        let (mut result, _) = evaluate_policy(&test, &mut policy, sim).unwrap();
        result.policy = format!("robustscaler-hp({target})");
        rows.push(result);
    }

    println!(
        "\n{:<24} {:>9} {:>9} {:>14}",
        "policy", "hit_rate", "rt_avg", "relative_cost"
    );
    for r in &rows {
        println!(
            "{:<24} {:>9.3} {:>9.1} {:>14.3}",
            r.policy, r.hit_rate, r.rt_avg, r.relative_cost
        );
    }
    println!(
        "\nReading the table as a Pareto plot: for a given relative cost, higher\n\
         hit_rate / lower rt_avg is better — RobustScaler-HP should sit above the\n\
         Backup Pool line, mirroring Fig. 4(a) of the paper."
    );
}
