//! # RobustScaler (reproduction)
//!
//! A from-scratch Rust reproduction of **"RobustScaler: QoS-Aware
//! Autoscaling for Complex Workloads"** (Qian et al., ICDE 2022,
//! arXiv:2204.07197) — a proactive autoscaler for the *scaling-per-query*
//! scenario built on non-homogeneous Poisson process (NHPP) modeling and
//! stochastically constrained optimization.
//!
//! This facade crate re-exports the individual subsystem crates:
//!
//! | Crate | What it provides |
//! |---|---|
//! | [`stats`] | distributions, quantiles, special functions, Monte Carlo |
//! | [`linalg`] | banded matrices, banded Cholesky, conjugate gradient, difference operators |
//! | [`timeseries`] | QPS series, robust filtering, periodicity detection, decomposition |
//! | [`nhpp`] | the regularized NHPP model, ADMM trainer, forecasting, exact samplers |
//! | [`parallel`] | std-only scoped-thread chunked parallel map (no crates.io, so no rayon) |
//! | [`scaling`] | HP/RT/cost-constrained decisions, sort-and-search, κ threshold, sequential planner |
//! | [`simulator`] | scaling-per-query event simulator, Backup Pool / AdapBP baselines, metrics |
//! | [`traces`] | synthetic CRS/Google/Alibaba-like traces and perturbation injectors |
//! | [`core`] | the end-to-end pipeline and the RobustScaler-HP/-RT/-cost policies |
//! | [`online`] | online serving: incremental ingestion, drift-triggered refits, multi-tenant fleet, closed-loop harness |
//!
//! ## Quickstart
//!
//! ```no_run
//! use robustscaler::core::{RobustScalerConfig, RobustScalerPipeline, RobustScalerVariant};
//! use robustscaler::core::evaluate_policy;
//! use robustscaler::simulator::SimulationConfig;
//! use robustscaler::traces::{google_like, TraceConfig};
//!
//! // 1. Generate (or load) a workload trace and split it into train / test.
//! let trace = google_like(&TraceConfig::google_default());
//! let (train, test) = trace.split_at(trace.start() + 0.75 * trace.duration()).unwrap();
//!
//! // 2. Train the NHPP pipeline and build the HP-constrained policy.
//! let config = RobustScalerConfig::for_variant(
//!     RobustScalerVariant::HittingProbability { target: 0.9 },
//! );
//! let pipeline = RobustScalerPipeline::new(config).unwrap();
//! let mut policy = pipeline.build_policy(&train).unwrap();
//!
//! // 3. Replay the test trace and inspect QoS/cost.
//! let (result, _metrics) =
//!     evaluate_policy(&test, &mut policy, SimulationConfig::default()).unwrap();
//! println!("hit rate {:.3}, relative cost {:.2}", result.hit_rate, result.relative_cost);
//! ```

#![warn(missing_docs)]

pub use robustscaler_core as core;
pub use robustscaler_linalg as linalg;
pub use robustscaler_nhpp as nhpp;
pub use robustscaler_online as online;
pub use robustscaler_parallel as parallel;
pub use robustscaler_scaling as scaling;
pub use robustscaler_simulator as simulator;
pub use robustscaler_stats as stats;
pub use robustscaler_timeseries as timeseries;
pub use robustscaler_traces as traces;
