//! Error type of the online serving layer.

use robustscaler_core::CoreError;
use robustscaler_scaling::ScalingError;
use robustscaler_simulator::SimulatorError;
use robustscaler_timeseries::TimeSeriesError;
use std::fmt;

/// Errors produced by the online serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineError {
    /// A configuration value was invalid.
    InvalidConfig(&'static str),
    /// A planning round was requested before the scaler accumulated enough
    /// complete buckets for its first model fit.
    NotTrained,
    /// The offline pipeline (training/forecasting) failed.
    Core(CoreError),
    /// The time-series layer failed.
    TimeSeries(TimeSeriesError),
    /// The scaling decision layer failed.
    Scaling(ScalingError),
    /// The simulator failed (closed-loop harness runs).
    Simulator(SimulatorError),
    /// A snapshot carries a format version this build does not understand.
    UnsupportedSnapshotVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// A checkpoint store operation failed. `shard` names the offending
    /// shard file when the failure is shard-local (a corrupt or truncated
    /// shard must be reported per shard, never silently zeroing a tenant).
    Checkpoint {
        /// The shard file the failure is scoped to, if any.
        shard: Option<String>,
        /// What went wrong.
        message: String,
    },
    /// A tenant's round worker panicked. The panic is caught at the tenant
    /// boundary (`catch_unwind` in the fleet's round worker) and converted
    /// into this per-tenant error so one panicking tenant never takes down
    /// the round for the hundreds sharing the process.
    TenantPanicked {
        /// The tenant whose round panicked.
        tenant: u64,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The tenant is hibernated (cold, possibly paged out to its
    /// checkpoint shard); planning is skipped until an arrival or its
    /// scheduled wake time brings it back.
    Hibernated {
        /// The hibernated tenant.
        tenant: u64,
    },
    /// The tenant is quarantined after repeated consecutive failures;
    /// planning is suspended until its next scheduled probe round.
    Quarantined {
        /// The quarantined tenant.
        tenant: u64,
        /// The fleet round at which the next recovery probe runs.
        until_round: u64,
    },
    /// A deterministically injected planning fault (chaos testing via
    /// [`crate::faults::FaultPlan`]).
    Injected {
        /// The fleet round the fault fired in.
        round: u64,
        /// The tenant the fault targeted.
        tenant: u64,
    },
    /// The whole planning round died: a worker thread panicked outside any
    /// tenant boundary (injected worker faults, pool bugs). Tenant state
    /// may be partially advanced; the caller should checkpoint/restore or
    /// retry the round.
    RoundPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A session trace could not be recorded or parsed. `line` names the
    /// offending 1-based trace line when the failure is line-local (a
    /// corrupt or truncated record must be reported by position, never as
    /// a bare parse error).
    Trace {
        /// The trace line the failure is scoped to, if any.
        line: Option<usize>,
        /// What went wrong.
        message: String,
    },
    /// Strict replay of a recorded trace regenerated a different value
    /// than the recording: the pointed diff names exactly where.
    ReplayDivergence {
        /// The planning round the divergence occurred in.
        round: u64,
        /// The tenant whose stream diverged.
        tenant: u64,
        /// The diverging field (e.g. `decisions[3].creation_time`).
        field: String,
        /// The recorded value.
        expected: String,
        /// The regenerated value.
        got: String,
    },
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            OnlineError::NotTrained => {
                write!(f, "scaler has not accumulated enough history for a model")
            }
            OnlineError::Core(e) => write!(f, "pipeline error: {e}"),
            OnlineError::TimeSeries(e) => write!(f, "time-series error: {e}"),
            OnlineError::Scaling(e) => write!(f, "scaling error: {e}"),
            OnlineError::Simulator(e) => write!(f, "simulator error: {e}"),
            OnlineError::UnsupportedSnapshotVersion { found, supported } => write!(
                f,
                "snapshot format version {found} not supported (this build reads <= {supported})"
            ),
            OnlineError::Checkpoint { shard, message } => match shard {
                Some(shard) => write!(f, "checkpoint shard `{shard}`: {message}"),
                None => write!(f, "checkpoint: {message}"),
            },
            OnlineError::TenantPanicked { tenant, message } => {
                write!(f, "tenant {tenant} panicked during its round: {message}")
            }
            OnlineError::Hibernated { tenant } => {
                write!(f, "tenant {tenant} is hibernated (cold)")
            }
            OnlineError::Quarantined {
                tenant,
                until_round,
            } => write!(
                f,
                "tenant {tenant} is quarantined until round {until_round}"
            ),
            OnlineError::Injected { round, tenant } => {
                write!(
                    f,
                    "injected planning fault (round {round}, tenant {tenant})"
                )
            }
            OnlineError::RoundPanicked { message } => {
                write!(f, "planning round panicked: {message}")
            }
            OnlineError::Trace { line, message } => match line {
                Some(line) => write!(f, "trace line {line}: {message}"),
                None => write!(f, "trace: {message}"),
            },
            OnlineError::ReplayDivergence {
                round,
                tenant,
                field,
                expected,
                got,
            } => write!(
                f,
                "replay diverged at round {round}, tenant {tenant}, field `{field}`: \
                 expected {expected}, got {got}"
            ),
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<CoreError> for OnlineError {
    fn from(e: CoreError) -> Self {
        OnlineError::Core(e)
    }
}

impl From<TimeSeriesError> for OnlineError {
    fn from(e: TimeSeriesError) -> Self {
        OnlineError::TimeSeries(e)
    }
}

impl From<ScalingError> for OnlineError {
    fn from(e: ScalingError) -> Self {
        OnlineError::Scaling(e)
    }
}

impl From<SimulatorError> for OnlineError {
    fn from(e: SimulatorError) -> Self {
        OnlineError::Simulator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: OnlineError = CoreError::InvalidConfig("x").into();
        assert!(e.to_string().contains("pipeline"));
        let e: OnlineError = TimeSeriesError::AllMissing.into();
        assert!(e.to_string().contains("time-series"));
        let e: OnlineError = ScalingError::InvalidParameter("x").into();
        assert!(e.to_string().contains("scaling"));
        let e: OnlineError = SimulatorError::EmptyMetrics.into();
        assert!(e.to_string().contains("simulator"));
        assert!(OnlineError::NotTrained.to_string().contains("history"));
        assert!(OnlineError::InvalidConfig("w").to_string().contains("w"));
        let e = OnlineError::Trace {
            line: Some(12),
            message: "bad record".to_string(),
        };
        assert!(e.to_string().contains("line 12"));
        let e = OnlineError::Trace {
            line: None,
            message: "io failure".to_string(),
        };
        assert!(e.to_string().contains("trace: io failure"));
        let e = OnlineError::TenantPanicked {
            tenant: 4,
            message: "boom".to_string(),
        };
        assert!(e.to_string().contains("tenant 4") && e.to_string().contains("boom"));
        let e = OnlineError::Hibernated { tenant: 7 };
        assert!(e.to_string().contains("tenant 7") && e.to_string().contains("hibernated"));
        let e = OnlineError::Quarantined {
            tenant: 2,
            until_round: 9,
        };
        assert!(e.to_string().contains("tenant 2") && e.to_string().contains("round 9"));
        let e = OnlineError::Injected {
            round: 5,
            tenant: 1,
        };
        assert!(e.to_string().contains("round 5") && e.to_string().contains("tenant 1"));
        let e = OnlineError::RoundPanicked {
            message: "worker died".to_string(),
        };
        assert!(e.to_string().contains("worker died"));
        let e = OnlineError::ReplayDivergence {
            round: 3,
            tenant: 1,
            field: "decisions[0].creation_time".to_string(),
            expected: "410.5".to_string(),
            got: "411.0".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("round 3"));
        assert!(text.contains("tenant 1"));
        assert!(text.contains("decisions[0].creation_time"));
        assert!(text.contains("410.5") && text.contains("411.0"));
    }
}
