//! Error type of the online serving layer.

use robustscaler_core::CoreError;
use robustscaler_scaling::ScalingError;
use robustscaler_simulator::SimulatorError;
use robustscaler_timeseries::TimeSeriesError;
use std::fmt;

/// Errors produced by the online serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineError {
    /// A configuration value was invalid.
    InvalidConfig(&'static str),
    /// A planning round was requested before the scaler accumulated enough
    /// complete buckets for its first model fit.
    NotTrained,
    /// The offline pipeline (training/forecasting) failed.
    Core(CoreError),
    /// The time-series layer failed.
    TimeSeries(TimeSeriesError),
    /// The scaling decision layer failed.
    Scaling(ScalingError),
    /// The simulator failed (closed-loop harness runs).
    Simulator(SimulatorError),
    /// A snapshot carries a format version this build does not understand.
    UnsupportedSnapshotVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// A checkpoint store operation failed. `shard` names the offending
    /// shard file when the failure is shard-local (a corrupt or truncated
    /// shard must be reported per shard, never silently zeroing a tenant).
    Checkpoint {
        /// The shard file the failure is scoped to, if any.
        shard: Option<String>,
        /// What went wrong.
        message: String,
    },
    /// A session trace could not be recorded or parsed. `line` names the
    /// offending 1-based trace line when the failure is line-local (a
    /// corrupt or truncated record must be reported by position, never as
    /// a bare parse error).
    Trace {
        /// The trace line the failure is scoped to, if any.
        line: Option<usize>,
        /// What went wrong.
        message: String,
    },
    /// Strict replay of a recorded trace regenerated a different value
    /// than the recording: the pointed diff names exactly where.
    ReplayDivergence {
        /// The planning round the divergence occurred in.
        round: u64,
        /// The tenant whose stream diverged.
        tenant: u64,
        /// The diverging field (e.g. `decisions[3].creation_time`).
        field: String,
        /// The recorded value.
        expected: String,
        /// The regenerated value.
        got: String,
    },
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            OnlineError::NotTrained => {
                write!(f, "scaler has not accumulated enough history for a model")
            }
            OnlineError::Core(e) => write!(f, "pipeline error: {e}"),
            OnlineError::TimeSeries(e) => write!(f, "time-series error: {e}"),
            OnlineError::Scaling(e) => write!(f, "scaling error: {e}"),
            OnlineError::Simulator(e) => write!(f, "simulator error: {e}"),
            OnlineError::UnsupportedSnapshotVersion { found, supported } => write!(
                f,
                "snapshot format version {found} not supported (this build reads <= {supported})"
            ),
            OnlineError::Checkpoint { shard, message } => match shard {
                Some(shard) => write!(f, "checkpoint shard `{shard}`: {message}"),
                None => write!(f, "checkpoint: {message}"),
            },
            OnlineError::Trace { line, message } => match line {
                Some(line) => write!(f, "trace line {line}: {message}"),
                None => write!(f, "trace: {message}"),
            },
            OnlineError::ReplayDivergence {
                round,
                tenant,
                field,
                expected,
                got,
            } => write!(
                f,
                "replay diverged at round {round}, tenant {tenant}, field `{field}`: \
                 expected {expected}, got {got}"
            ),
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<CoreError> for OnlineError {
    fn from(e: CoreError) -> Self {
        OnlineError::Core(e)
    }
}

impl From<TimeSeriesError> for OnlineError {
    fn from(e: TimeSeriesError) -> Self {
        OnlineError::TimeSeries(e)
    }
}

impl From<ScalingError> for OnlineError {
    fn from(e: ScalingError) -> Self {
        OnlineError::Scaling(e)
    }
}

impl From<SimulatorError> for OnlineError {
    fn from(e: SimulatorError) -> Self {
        OnlineError::Simulator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: OnlineError = CoreError::InvalidConfig("x").into();
        assert!(e.to_string().contains("pipeline"));
        let e: OnlineError = TimeSeriesError::AllMissing.into();
        assert!(e.to_string().contains("time-series"));
        let e: OnlineError = ScalingError::InvalidParameter("x").into();
        assert!(e.to_string().contains("scaling"));
        let e: OnlineError = SimulatorError::EmptyMetrics.into();
        assert!(e.to_string().contains("simulator"));
        assert!(OnlineError::NotTrained.to_string().contains("history"));
        assert!(OnlineError::InvalidConfig("w").to_string().contains("w"));
        let e = OnlineError::Trace {
            line: Some(12),
            message: "bad record".to_string(),
        };
        assert!(e.to_string().contains("line 12"));
        let e = OnlineError::Trace {
            line: None,
            message: "io failure".to_string(),
        };
        assert!(e.to_string().contains("trace: io failure"));
        let e = OnlineError::ReplayDivergence {
            round: 3,
            tenant: 1,
            field: "decisions[0].creation_time".to_string(),
            expected: "410.5".to_string(),
            got: "411.0".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("round 3"));
        assert!(text.contains("tenant 1"));
        assert!(text.contains("decisions[0].creation_time"));
        assert!(text.contains("410.5") && text.contains("411.0"));
    }
}
