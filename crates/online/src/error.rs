//! Error type of the online serving layer.

use robustscaler_core::CoreError;
use robustscaler_scaling::ScalingError;
use robustscaler_simulator::SimulatorError;
use robustscaler_timeseries::TimeSeriesError;
use std::fmt;

/// Errors produced by the online serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineError {
    /// A configuration value was invalid.
    InvalidConfig(&'static str),
    /// A planning round was requested before the scaler accumulated enough
    /// complete buckets for its first model fit.
    NotTrained,
    /// The offline pipeline (training/forecasting) failed.
    Core(CoreError),
    /// The time-series layer failed.
    TimeSeries(TimeSeriesError),
    /// The scaling decision layer failed.
    Scaling(ScalingError),
    /// The simulator failed (closed-loop harness runs).
    Simulator(SimulatorError),
    /// A snapshot carries a format version this build does not understand.
    UnsupportedSnapshotVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// A checkpoint store operation failed. `shard` names the offending
    /// shard file when the failure is shard-local (a corrupt or truncated
    /// shard must be reported per shard, never silently zeroing a tenant).
    Checkpoint {
        /// The shard file the failure is scoped to, if any.
        shard: Option<String>,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            OnlineError::NotTrained => {
                write!(f, "scaler has not accumulated enough history for a model")
            }
            OnlineError::Core(e) => write!(f, "pipeline error: {e}"),
            OnlineError::TimeSeries(e) => write!(f, "time-series error: {e}"),
            OnlineError::Scaling(e) => write!(f, "scaling error: {e}"),
            OnlineError::Simulator(e) => write!(f, "simulator error: {e}"),
            OnlineError::UnsupportedSnapshotVersion { found, supported } => write!(
                f,
                "snapshot format version {found} not supported (this build reads <= {supported})"
            ),
            OnlineError::Checkpoint { shard, message } => match shard {
                Some(shard) => write!(f, "checkpoint shard `{shard}`: {message}"),
                None => write!(f, "checkpoint: {message}"),
            },
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<CoreError> for OnlineError {
    fn from(e: CoreError) -> Self {
        OnlineError::Core(e)
    }
}

impl From<TimeSeriesError> for OnlineError {
    fn from(e: TimeSeriesError) -> Self {
        OnlineError::TimeSeries(e)
    }
}

impl From<ScalingError> for OnlineError {
    fn from(e: ScalingError) -> Self {
        OnlineError::Scaling(e)
    }
}

impl From<SimulatorError> for OnlineError {
    fn from(e: SimulatorError) -> Self {
        OnlineError::Simulator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: OnlineError = CoreError::InvalidConfig("x").into();
        assert!(e.to_string().contains("pipeline"));
        let e: OnlineError = TimeSeriesError::AllMissing.into();
        assert!(e.to_string().contains("time-series"));
        let e: OnlineError = ScalingError::InvalidParameter("x").into();
        assert!(e.to_string().contains("scaling"));
        let e: OnlineError = SimulatorError::EmptyMetrics.into();
        assert!(e.to_string().contains("simulator"));
        assert!(OnlineError::NotTrained.to_string().contains("history"));
        assert!(OnlineError::InvalidConfig("w").to_string().contains("w"));
    }
}
