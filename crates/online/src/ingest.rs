//! The event-driven ingestion runtime: bounded per-tenant arrival queues
//! drained at round boundaries.
//!
//! The PR 3 serving layer made the *caller* route every arrival through
//! `TenantFleet::ingest(index, arrival)` on the planning thread, so
//! ingestion and planning serialized: while a round ran, arrivals had
//! nowhere to go, and between rounds the planning thread burned its time
//! on per-arrival ring bookkeeping. [`ArrivalBus`] decouples the two:
//!
//! * **Producers** (request routers, the simulation harness, load
//!   generators) call [`ArrivalBus::push`]/[`ArrivalBus::push_batch`] from
//!   any thread, at any time — including *while the fleet is planning*.
//! * **Consumers** (the fleet's round workers) call
//!   [`ArrivalBus::drain_into`] once per tenant per round boundary, moving
//!   the queued timestamps out in one batch, in timestamp order, straight
//!   into the ring's bulk append.
//!
//! ## Queue shape and sharding
//!
//! Each tenant owns one bounded FIFO queue ([`BusConfig::capacity_per_tenant`]).
//! The intended discipline is SPSC per tenant — one producer stream (a
//! tenant's arrivals are naturally ordered) and one drainer (the round
//! worker that owns the tenant's shard) — but nothing unsafe rides on
//! that: queues are grouped into [`BusConfig::tenants_per_group`]-sized
//! groups, each behind its own mutex, so contention is confined to a
//! group and a fleet-wide burst never serializes on a single lock. A
//! drain swaps the queue's contents out under the group lock and sorts
//! outside it, so the lock is held O(queue length) for a memcpy, not for
//! the ingestion work.
//!
//! ## Back-pressure
//!
//! Queues are bounded: a push to a full queue is rejected (`push` returns
//! `false`) and counted in [`QueueStats::dropped_full`] — a slow tenant
//! sheds its own load instead of growing without bound or stalling the
//! producers of every other tenant. [`QueueStats::queued_peak`] records
//! the high-water mark so capacity can be provisioned from observed data.
//!
//! ## Determinism contract
//!
//! Plans remain a pure function of the queue state at each round
//! boundary: a drain hands the worker *everything enqueued before it, in
//! timestamp order*, and the ring's bulk append is bit-identical to
//! per-arrival ingestion (pinned in `tests/online_props.rs`). Producers
//! that quiesce at round boundaries — e.g. enqueue window `N+1` while the
//! fleet plans window `N` and join before round `N+1` starts — therefore
//! get bit-identical fleet output for any worker count and any
//! producer-thread interleaving *within* a round.

use crate::error::OnlineError;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default bound on each tenant's arrival queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 65_536;

/// Default number of tenant queues sharing one group lock.
pub const DEFAULT_TENANTS_PER_GROUP: usize = 64;

/// Shape of an [`ArrivalBus`]: per-tenant queue bound and lock sharding.
///
/// `Deserialize` is hand-written (below): the config persists in
/// checkpoint manifests and trace headers written before the
/// adaptive-capacity and drain-budget fields existed, so absent keys
/// must default to `0` (both features off) instead of erroring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BusConfig {
    /// Arrivals queued per tenant before pushes are rejected. With
    /// adaptive capacity ([`BusConfig::max_capacity_per_tenant`]) this is
    /// the *starting* bound each queue grows from on observed demand.
    pub capacity_per_tenant: usize,
    /// Tenant queues sharing one group mutex (lock sharding granularity).
    pub tenants_per_group: usize,
    /// Adaptive-capacity ceiling: when a push finds a queue full, its
    /// bound doubles (from [`BusConfig::capacity_per_tenant`]) until the
    /// demand fits or this ceiling is reached, so a tenant whose observed
    /// [`QueueStats::queued_peak`] outgrows the provisioned bound stops
    /// shedding load without every tenant paying for worst-case capacity.
    /// `0` (the default) disables growth — the bound stays fixed.
    /// Per-queue growth is driven only by that queue's push sequence, so
    /// determinism is unaffected. Not persisted per tenant: a restored
    /// bus regrows from the base bound on demand.
    pub max_capacity_per_tenant: usize,
    /// Per-round drain budget: a round's [`ArrivalBus::drain_into`] moves
    /// at most this many arrivals (oldest first, in enqueue order) and
    /// *spills* the remainder to the next round, counted in
    /// [`QueueStats::spilled`] — bounding each round's ingestion work
    /// after a burst instead of stalling the whole fleet on one tenant's
    /// backlog. Count-based rather than time-based on purpose: a count is
    /// a pure function of the queue state, so replay and worker-count
    /// invariance hold. `0` (the default) means unbounded.
    pub max_drain_per_round: usize,
}

impl Deserialize for BusConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let require = |key: &str| match v.get(key) {
            Some(value) => Deserialize::from_value(value),
            None => Err(serde::Error::msg(format!(
                "missing field `{key}` in BusConfig"
            ))),
        };
        let default_zero = |key: &str| match v.get(key) {
            Some(value) => Deserialize::from_value(value),
            None => Ok(0),
        };
        Ok(Self {
            capacity_per_tenant: require("capacity_per_tenant")?,
            tenants_per_group: require("tenants_per_group")?,
            max_capacity_per_tenant: default_zero("max_capacity_per_tenant")?,
            max_drain_per_round: default_zero("max_drain_per_round")?,
        })
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            capacity_per_tenant: DEFAULT_QUEUE_CAPACITY,
            tenants_per_group: DEFAULT_TENANTS_PER_GROUP,
            max_capacity_per_tenant: 0,
            max_drain_per_round: 0,
        }
    }
}

impl BusConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), OnlineError> {
        if self.capacity_per_tenant == 0 {
            return Err(OnlineError::InvalidConfig(
                "bus capacity_per_tenant must be >= 1",
            ));
        }
        if self.tenants_per_group == 0 {
            return Err(OnlineError::InvalidConfig(
                "bus tenants_per_group must be >= 1",
            ));
        }
        if self.max_capacity_per_tenant != 0
            && self.max_capacity_per_tenant < self.capacity_per_tenant
        {
            return Err(OnlineError::InvalidConfig(
                "bus max_capacity_per_tenant must be 0 (fixed) or >= capacity_per_tenant",
            ));
        }
        Ok(())
    }

    /// The hard per-tenant queue bound: the adaptive ceiling when growth
    /// is enabled, the fixed capacity otherwise.
    fn capacity_ceiling(&self) -> usize {
        if self.max_capacity_per_tenant == 0 {
            self.capacity_per_tenant
        } else {
            self.max_capacity_per_tenant
        }
    }
}

/// Back-pressure and drain accounting for one tenant's queue (or, via
/// [`QueueStats::merge`], an aggregate across tenants).
///
/// `Deserialize` is hand-written for the same reason as [`BusConfig`]'s:
/// persisted stats predating [`QueueStats::spilled`] must default it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct QueueStats {
    /// Arrivals accepted into the queue.
    pub enqueued: u64,
    /// Arrivals rejected because the queue was full (back-pressure).
    pub dropped_full: u64,
    /// High-water mark of the queue length (per tenant; aggregates take
    /// the max across tenants, not the sum — it answers "how big must a
    /// queue be", which a sum would not).
    pub queued_peak: u64,
    /// Arrivals moved out by drains.
    pub drained: u64,
    /// Drain calls (round boundaries observed by this queue); with
    /// [`QueueStats::drained`] this yields drained-per-round.
    pub drains: u64,
    /// Arrivals a budgeted drain left queued for the next round (see
    /// [`BusConfig::max_drain_per_round`]). Each spilled arrival is
    /// counted once per round it waits, so this doubles as a
    /// backlog-latency signal.
    pub spilled: u64,
}

impl Deserialize for QueueStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let require = |key: &str| match v.get(key) {
            Some(value) => Deserialize::from_value(value),
            None => Err(serde::Error::msg(format!(
                "missing field `{key}` in QueueStats"
            ))),
        };
        Ok(Self {
            enqueued: require("enqueued")?,
            dropped_full: require("dropped_full")?,
            queued_peak: require("queued_peak")?,
            drained: require("drained")?,
            drains: require("drains")?,
            spilled: match v.get("spilled") {
                Some(value) => Deserialize::from_value(value)?,
                None => 0,
            },
        })
    }
}

impl QueueStats {
    /// Fold another tenant's stats into an aggregate: counters sum,
    /// `queued_peak` takes the max.
    pub fn merge(&mut self, other: &QueueStats) {
        self.enqueued += other.enqueued;
        self.dropped_full += other.dropped_full;
        self.queued_peak = self.queued_peak.max(other.queued_peak);
        self.drained += other.drained;
        self.drains += other.drains;
        self.spilled += other.spilled;
    }

    /// Average arrivals moved per drain call, `0.0` before the first
    /// drain.
    pub fn drained_per_drain(&self) -> f64 {
        if self.drains == 0 {
            0.0
        } else {
            self.drained as f64 / self.drains as f64
        }
    }
}

/// One tenant's queue plus its accounting; lives inside a group mutex.
#[derive(Debug)]
struct TenantQueue {
    items: VecDeque<f64>,
    stats: QueueStats,
    /// This queue's current bound: starts at
    /// [`BusConfig::capacity_per_tenant`] and, with adaptive capacity
    /// enabled, doubles on demand up to the configured ceiling.
    capacity: usize,
    /// Monotonic mutation counter: bumped by every accepted push, rejected
    /// push, and non-empty drain. The fleet's incremental checkpointer
    /// compares it against the value captured at the previous checkpoint
    /// to decide whether a shard can be reused — a plain dirty flag would
    /// race with producers pushing between capture and flag reset.
    mutations: u64,
}

impl TenantQueue {
    fn new(capacity: usize) -> Self {
        Self {
            items: VecDeque::new(),
            stats: QueueStats::default(),
            capacity,
            mutations: 0,
        }
    }

    /// Double the bound until `demand` fits or `ceiling` is reached.
    fn grow_to(&mut self, demand: usize, ceiling: usize) {
        while self.capacity < demand && self.capacity < ceiling {
            self.capacity = self.capacity.saturating_mul(2).min(ceiling);
        }
    }
}

/// Everything the checkpointer needs about one tenant's queue, captured
/// atomically under the group lock.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueCheckpoint {
    /// Undrained arrivals, in queue (enqueue) order.
    pub queued: Vec<f64>,
    /// The queue's accounting at capture time.
    pub stats: QueueStats,
    /// The mutation counter at capture time (see
    /// [`ArrivalBus::checkpoint_queues`]).
    pub mutations: u64,
}

/// Bounded per-tenant arrival queues, sharded by tenant group — the
/// fleet's ingestion runtime (see the module docs for the design).
#[derive(Debug)]
pub struct ArrivalBus {
    config: BusConfig,
    tenant_count: usize,
    groups: Vec<Mutex<Vec<TenantQueue>>>,
    /// Per-group count of currently queued arrivals, maintained under the
    /// group lock but readable without it. This is the fleet's wake scan:
    /// with 100k registered tenants and a handful active, the per-round
    /// "who has arrivals?" question must not take 100k/64 mutexes — it
    /// reads one atomic per group and only locks groups that report work.
    pending: Vec<AtomicU64>,
}

impl ArrivalBus {
    /// Create a bus with one bounded queue per tenant.
    pub fn new(tenant_count: usize, config: BusConfig) -> Result<Self, OnlineError> {
        config.validate()?;
        if tenant_count == 0 {
            return Err(OnlineError::InvalidConfig(
                "an arrival bus needs at least one tenant",
            ));
        }
        let group_count = tenant_count.div_ceil(config.tenants_per_group);
        let groups = (0..group_count)
            .map(|g| {
                let start = g * config.tenants_per_group;
                let len = config.tenants_per_group.min(tenant_count - start);
                Mutex::new(
                    (0..len)
                        .map(|_| TenantQueue::new(config.capacity_per_tenant))
                        .collect(),
                )
            })
            .collect();
        let pending = (0..group_count).map(|_| AtomicU64::new(0)).collect();
        Ok(Self {
            config,
            tenant_count,
            groups,
            pending,
        })
    }

    /// The bus configuration.
    pub fn config(&self) -> BusConfig {
        self.config
    }

    /// Number of tenant queues.
    pub fn tenant_count(&self) -> usize {
        self.tenant_count
    }

    fn locate(&self, tenant: usize) -> Result<(usize, usize), OnlineError> {
        if tenant >= self.tenant_count {
            return Err(OnlineError::InvalidConfig("bus tenant index out of range"));
        }
        Ok((
            tenant / self.config.tenants_per_group,
            tenant % self.config.tenants_per_group,
        ))
    }

    /// Enqueue one arrival for `tenant`. Returns `Ok(true)` when queued,
    /// `Ok(false)` when rejected because the queue is full (the rejection
    /// is counted in [`QueueStats::dropped_full`]).
    pub fn push(&self, tenant: usize, arrival: f64) -> Result<bool, OnlineError> {
        self.push_batch(tenant, std::slice::from_ref(&arrival))
            .map(|accepted| accepted == 1)
    }

    /// Enqueue a batch of arrivals for `tenant` under one lock
    /// acquisition; returns how many were accepted before the queue
    /// filled (the rest are counted dropped).
    pub fn push_batch(&self, tenant: usize, arrivals: &[f64]) -> Result<usize, OnlineError> {
        let (group, slot) = self.locate(tenant)?;
        if arrivals.is_empty() {
            return Ok(0);
        }
        let mut queues = self.groups[group].lock().expect("bus group lock poisoned");
        let queue = &mut queues[slot];
        let demand = queue.items.len() + arrivals.len();
        if demand > queue.capacity {
            queue.grow_to(demand, self.config.capacity_ceiling());
        }
        let room = queue.capacity - queue.items.len();
        let accepted = arrivals.len().min(room);
        queue.items.extend(&arrivals[..accepted]);
        let dropped = (arrivals.len() - accepted) as u64;
        queue.stats.enqueued += accepted as u64;
        queue.stats.dropped_full += dropped;
        queue.stats.queued_peak = queue.stats.queued_peak.max(queue.items.len() as u64);
        queue.mutations += 1;
        if accepted > 0 {
            self.pending[group].fetch_add(accepted as u64, Ordering::Release);
        }
        Ok(accepted)
    }

    /// Whether `tenant`'s *group* might have queued arrivals — a cheap,
    /// lock-free over-approximation for the fleet's wake scan. `false` is
    /// authoritative (nothing queued anywhere in the group at some recent
    /// instant); `true` means "take the lock and check" via
    /// [`ArrivalBus::queued`].
    pub fn pending_hint(&self, tenant: usize) -> Result<bool, OnlineError> {
        let (group, _) = self.locate(tenant)?;
        Ok(self.pending[group].load(Ordering::Acquire) > 0)
    }

    /// Currently queued arrivals for `tenant`.
    pub fn queued(&self, tenant: usize) -> Result<usize, OnlineError> {
        let (group, slot) = self.locate(tenant)?;
        let queues = self.groups[group].lock().expect("bus group lock poisoned");
        Ok(queues[slot].items.len())
    }

    /// The current bound on `tenant`'s queue — the configured
    /// [`BusConfig::capacity_per_tenant`] until adaptive growth (if
    /// enabled) has raised it.
    pub fn tenant_capacity(&self, tenant: usize) -> Result<usize, OnlineError> {
        let (group, slot) = self.locate(tenant)?;
        let queues = self.groups[group].lock().expect("bus group lock poisoned");
        Ok(queues[slot].capacity)
    }

    /// Move what is queued for `tenant` into `buf` (cleared first), in
    /// timestamp order, and record the drain in the tenant's stats.
    /// Returns how many arrivals were moved.
    ///
    /// With [`BusConfig::max_drain_per_round`] set, at most that many
    /// arrivals move (oldest first, in enqueue order); the remainder stays
    /// queued — still counted in the pending hint, so the next round's
    /// wake scan sees it — and is recorded in [`QueueStats::spilled`].
    ///
    /// The group lock is held only for the queue swap; sorting happens on
    /// the caller's thread. The sort is stable, so arrivals sharing a
    /// timestamp keep their enqueue order and an already-ordered producer
    /// stream (the SPSC case) is returned exactly as enqueued.
    pub fn drain_into(&self, tenant: usize, buf: &mut Vec<f64>) -> Result<usize, OnlineError> {
        let (group, slot) = self.locate(tenant)?;
        buf.clear();
        {
            let mut queues = self.groups[group].lock().expect("bus group lock poisoned");
            let queue = &mut queues[slot];
            let budget = self.config.max_drain_per_round;
            let take = if budget == 0 {
                queue.items.len()
            } else {
                queue.items.len().min(budget)
            };
            buf.extend(queue.items.drain(..take));
            queue.stats.spilled += queue.items.len() as u64;
            queue.stats.drained += buf.len() as u64;
            queue.stats.drains += 1;
            // Even an empty drain changed persisted state (`stats.drains`),
            // so it must invalidate shard reuse — a stale counter in a
            // reused shard would break restore equivalence.
            queue.mutations += 1;
            if !buf.is_empty() {
                self.pending[group].fetch_sub(buf.len() as u64, Ordering::Release);
            }
        }
        // `total_cmp` keeps the comparator total even if a producer pushed
        // a NaN (the ring drops it downstream either way).
        buf.sort_by(f64::total_cmp);
        Ok(buf.len())
    }

    /// One tenant's queue accounting.
    pub fn tenant_stats(&self, tenant: usize) -> Result<QueueStats, OnlineError> {
        let (group, slot) = self.locate(tenant)?;
        let queues = self.groups[group].lock().expect("bus group lock poisoned");
        Ok(queues[slot].stats)
    }

    /// Aggregate queue health across all tenants (counters summed,
    /// `queued_peak` maxed — see [`QueueStats::merge`]).
    pub fn stats(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for group in &self.groups {
            let queues = group.lock().expect("bus group lock poisoned");
            for queue in queues.iter() {
                total.merge(&queue.stats);
            }
        }
        total
    }

    /// Capture every tenant's queue for a checkpoint: contents, stats and
    /// the mutation counter, each group captured atomically under its
    /// lock. The returned vector is indexed by tenant.
    ///
    /// The mutation counters are the incremental checkpointer's dirtiness
    /// oracle: a shard whose tenants' counters all match the values
    /// captured at the previous successful checkpoint (and whose scalers
    /// are untouched) holds bit-identical bytes and can be reused without
    /// reserializing. Producers pushing concurrently bump the counter
    /// *after* this capture, which simply marks the tenant dirty for the
    /// next generation — never a lost update.
    pub fn checkpoint_queues(&self) -> Vec<QueueCheckpoint> {
        let mut out = Vec::with_capacity(self.tenant_count);
        for group in &self.groups {
            let queues = group.lock().expect("bus group lock poisoned");
            for queue in queues.iter() {
                out.push(QueueCheckpoint {
                    queued: queue.items.iter().copied().collect(),
                    stats: queue.stats,
                    mutations: queue.mutations,
                });
            }
        }
        out
    }

    /// Refill one tenant's queue from persisted state (fleet restore):
    /// contents and stats are installed verbatim; the mutation counter
    /// restarts at zero (the first post-restore checkpoint rewrites every
    /// shard regardless, so no dirtiness information is lost). Queue
    /// capacity is not persisted, so a restored backlog that outgrew the
    /// base bound re-triggers adaptive growth here (up to the ceiling).
    pub fn restore_tenant(
        &self,
        tenant: usize,
        queued: Vec<f64>,
        stats: QueueStats,
    ) -> Result<(), OnlineError> {
        if queued.len() > self.config.capacity_ceiling() {
            return Err(OnlineError::InvalidConfig(
                "restored queue exceeds the bus capacity",
            ));
        }
        let (group, slot) = self.locate(tenant)?;
        let mut queues = self.groups[group].lock().expect("bus group lock poisoned");
        let queue = &mut queues[slot];
        queue.grow_to(queued.len(), self.config.capacity_ceiling());
        let before = queue.items.len() as u64;
        queue.items = VecDeque::from(queued);
        queue.stats = stats;
        queue.mutations = 0;
        let after = queue.items.len() as u64;
        if after > before {
            self.pending[group].fetch_add(after - before, Ordering::Release);
        } else if before > after {
            self.pending[group].fetch_sub(before - after, Ordering::Release);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_bus(tenants: usize) -> ArrivalBus {
        ArrivalBus::new(
            tenants,
            BusConfig {
                capacity_per_tenant: 4,
                tenants_per_group: 2,
                ..BusConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn config_and_index_validation() {
        assert!(ArrivalBus::new(0, BusConfig::default()).is_err());
        let bad = BusConfig {
            capacity_per_tenant: 0,
            tenants_per_group: 2,
            ..BusConfig::default()
        };
        assert!(ArrivalBus::new(3, bad).is_err());
        let bad = BusConfig {
            capacity_per_tenant: 2,
            tenants_per_group: 0,
            ..BusConfig::default()
        };
        assert!(ArrivalBus::new(3, bad).is_err());
        let bad = BusConfig {
            capacity_per_tenant: 8,
            max_capacity_per_tenant: 4,
            ..BusConfig::default()
        };
        assert!(ArrivalBus::new(3, bad).is_err());
        let bus = small_bus(3);
        assert_eq!(bus.tenant_count(), 3);
        assert!(bus.push(3, 1.0).is_err());
        assert!(bus.queued(9).is_err());
        let mut buf = Vec::new();
        assert!(bus.drain_into(7, &mut buf).is_err());
    }

    #[test]
    fn push_drain_round_trips_in_timestamp_order() {
        let bus = small_bus(2);
        assert!(bus.push(0, 3.0).unwrap());
        assert!(bus.push(0, 1.0).unwrap());
        assert!(bus.push(0, 2.0).unwrap());
        assert!(bus.push(1, 9.0).unwrap());
        let mut buf = vec![99.0];
        assert_eq!(bus.drain_into(0, &mut buf).unwrap(), 3);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
        assert_eq!(bus.queued(0).unwrap(), 0);
        assert_eq!(bus.queued(1).unwrap(), 1);
        // Draining an empty queue is a counted no-op.
        assert_eq!(bus.drain_into(0, &mut buf).unwrap(), 0);
        let stats = bus.tenant_stats(0).unwrap();
        assert_eq!(stats.enqueued, 3);
        assert_eq!(stats.drained, 3);
        assert_eq!(stats.drains, 2);
        assert_eq!(stats.queued_peak, 3);
    }

    #[test]
    fn full_queue_sheds_load_and_counts_it() {
        let bus = small_bus(1);
        for k in 0..4 {
            assert!(bus.push(0, k as f64).unwrap());
        }
        assert!(!bus.push(0, 4.0).unwrap());
        assert_eq!(bus.push_batch(0, &[5.0, 6.0]).unwrap(), 0);
        let stats = bus.tenant_stats(0).unwrap();
        assert_eq!(stats.enqueued, 4);
        assert_eq!(stats.dropped_full, 3);
        assert_eq!(stats.queued_peak, 4);
        // Draining frees the queue for new pushes.
        let mut buf = Vec::new();
        bus.drain_into(0, &mut buf).unwrap();
        assert!(bus.push(0, 7.0).unwrap());
    }

    #[test]
    fn push_batch_accepts_a_prefix_up_to_capacity() {
        let bus = small_bus(1);
        assert_eq!(
            bus.push_batch(0, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap(),
            4
        );
        let mut buf = Vec::new();
        bus.drain_into(0, &mut buf).unwrap();
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(bus.tenant_stats(0).unwrap().dropped_full, 2);
    }

    #[test]
    fn adaptive_capacity_grows_on_demand_up_to_the_ceiling() {
        let bus = ArrivalBus::new(
            2,
            BusConfig {
                capacity_per_tenant: 4,
                tenants_per_group: 2,
                max_capacity_per_tenant: 10,
                ..BusConfig::default()
            },
        )
        .unwrap();
        assert_eq!(bus.tenant_capacity(0).unwrap(), 4);
        // Fits within the base bound: no growth.
        assert_eq!(bus.push_batch(0, &[1.0, 2.0, 3.0]).unwrap(), 3);
        assert_eq!(bus.tenant_capacity(0).unwrap(), 4);
        // Demand of 3 + 4 = 7 doubles 4 -> 8.
        assert_eq!(bus.push_batch(0, &[4.0, 5.0, 6.0, 7.0]).unwrap(), 4);
        assert_eq!(bus.tenant_capacity(0).unwrap(), 8);
        // Demand beyond the ceiling clamps there and sheds the excess.
        assert_eq!(bus.push_batch(0, &[8.0, 9.0, 10.0, 11.0]).unwrap(), 3);
        assert_eq!(bus.tenant_capacity(0).unwrap(), 10);
        let stats = bus.tenant_stats(0).unwrap();
        assert_eq!(stats.enqueued, 10);
        assert_eq!(stats.dropped_full, 1);
        assert_eq!(stats.queued_peak, 10);
        // Growth is per tenant: the neighbour still has the base bound.
        assert_eq!(bus.tenant_capacity(1).unwrap(), 4);
        // Capacity stays grown after a drain (no shrink thrash).
        let mut buf = Vec::new();
        bus.drain_into(0, &mut buf).unwrap();
        assert_eq!(bus.tenant_capacity(0).unwrap(), 10);
    }

    #[test]
    fn drain_budget_spills_the_remainder_to_the_next_round() {
        let bus = ArrivalBus::new(
            1,
            BusConfig {
                capacity_per_tenant: 16,
                tenants_per_group: 1,
                max_drain_per_round: 3,
                ..BusConfig::default()
            },
        )
        .unwrap();
        // Enqueue out of timestamp order to pin that the budget takes the
        // oldest *enqueued*, not the smallest timestamps.
        bus.push_batch(0, &[5.0, 1.0, 4.0, 2.0, 3.0]).unwrap();
        let mut buf = Vec::new();
        assert_eq!(bus.drain_into(0, &mut buf).unwrap(), 3);
        assert_eq!(buf, vec![1.0, 4.0, 5.0]); // first three enqueued, sorted
        assert_eq!(bus.queued(0).unwrap(), 2);
        // Spilled arrivals still count as pending for the wake scan.
        assert!(bus.pending_hint(0).unwrap());
        let stats = bus.tenant_stats(0).unwrap();
        assert_eq!(stats.spilled, 2);
        assert_eq!(stats.drained, 3);
        // The next round picks up the remainder.
        assert_eq!(bus.drain_into(0, &mut buf).unwrap(), 2);
        assert_eq!(buf, vec![2.0, 3.0]);
        assert!(!bus.pending_hint(0).unwrap());
        let stats = bus.tenant_stats(0).unwrap();
        assert_eq!(stats.spilled, 2);
        assert_eq!(stats.drained, 5);
        assert_eq!(stats.drains, 2);
    }

    #[test]
    fn restored_backlog_regrows_adaptive_capacity() {
        let config = BusConfig {
            capacity_per_tenant: 4,
            tenants_per_group: 2,
            max_capacity_per_tenant: 16,
            ..BusConfig::default()
        };
        let bus = ArrivalBus::new(1, config).unwrap();
        // A backlog above the base bound (but under the ceiling) restores
        // and grows the queue to cover it.
        bus.restore_tenant(0, (0..9).map(f64::from).collect(), QueueStats::default())
            .unwrap();
        assert_eq!(bus.queued(0).unwrap(), 9);
        assert!(bus.tenant_capacity(0).unwrap() >= 9);
        // Beyond the ceiling is still rejected.
        assert!(bus
            .restore_tenant(0, vec![0.0; 17], QueueStats::default())
            .is_err());
    }

    #[test]
    fn aggregate_stats_sum_counters_and_max_the_peak() {
        let bus = small_bus(3);
        bus.push_batch(0, &[1.0, 2.0, 3.0]).unwrap();
        bus.push(2, 5.0).unwrap();
        let total = bus.stats();
        assert_eq!(total.enqueued, 4);
        assert_eq!(total.queued_peak, 3);
        assert_eq!(total.drains, 0);
        assert!(total.drained_per_drain() == 0.0);
    }

    #[test]
    fn checkpoint_capture_and_restore_round_trip() {
        let bus = small_bus(3);
        bus.push_batch(0, &[2.0, 1.0]).unwrap();
        bus.push(2, 7.0).unwrap();
        let captured = bus.checkpoint_queues();
        assert_eq!(captured.len(), 3);
        assert_eq!(captured[0].queued, vec![2.0, 1.0]); // enqueue order
        assert_eq!(captured[1].queued, Vec::<f64>::new());
        assert_eq!(captured[2].stats.enqueued, 1);
        assert!(captured[0].mutations > 0);

        let fresh = small_bus(3);
        for (tenant, cp) in captured.iter().enumerate() {
            fresh
                .restore_tenant(tenant, cp.queued.clone(), cp.stats)
                .unwrap();
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        bus.drain_into(0, &mut a).unwrap();
        fresh.drain_into(0, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(bus.tenant_stats(2).unwrap(), fresh.tenant_stats(2).unwrap());
        // A restored queue must respect the bus bound.
        assert!(fresh
            .restore_tenant(1, vec![0.0; 99], QueueStats::default())
            .is_err());
    }

    #[test]
    fn mutation_counter_tracks_pushes_drops_and_drains() {
        let bus = small_bus(1);
        let at = |bus: &ArrivalBus| bus.checkpoint_queues()[0].mutations;
        assert_eq!(at(&bus), 0);
        bus.push(0, 1.0).unwrap();
        let after_push = at(&bus);
        assert!(after_push > 0);
        let mut buf = Vec::new();
        bus.drain_into(0, &mut buf).unwrap();
        let after_drain = at(&bus);
        assert!(after_drain > after_push);
        // Even an empty drain mutates: it bumped the persisted `drains`
        // counter, so a reused shard would carry a stale value.
        bus.drain_into(0, &mut buf).unwrap();
        assert!(at(&bus) > after_drain);
        // A rejected push still mutates (the drop counter changed).
        for k in 0..4 {
            bus.push(0, k as f64).unwrap();
        }
        let full = at(&bus);
        bus.push(0, 9.0).unwrap();
        assert!(at(&bus) > full);
    }

    #[test]
    fn pending_hint_tracks_group_occupancy_locklessly() {
        let bus = small_bus(4); // groups of 2: {0,1}, {2,3}
        assert!(!bus.pending_hint(0).unwrap());
        assert!(!bus.pending_hint(2).unwrap());
        assert!(bus.pending_hint(9).is_err());
        bus.push(1, 5.0).unwrap();
        // The hint is group-granular: tenant 0 shares tenant 1's group.
        assert!(bus.pending_hint(0).unwrap());
        assert!(bus.pending_hint(1).unwrap());
        assert!(!bus.pending_hint(3).unwrap());
        let mut buf = Vec::new();
        bus.drain_into(1, &mut buf).unwrap();
        assert!(!bus.pending_hint(0).unwrap());
        // Rejected pushes never count as pending.
        for k in 0..9 {
            bus.push(2, k as f64).unwrap();
        }
        bus.drain_into(2, &mut buf).unwrap();
        assert!(!bus.pending_hint(2).unwrap());
        // Restore adjusts the counter in both directions.
        bus.restore_tenant(3, vec![1.0, 2.0], QueueStats::default())
            .unwrap();
        assert!(bus.pending_hint(2).unwrap());
        bus.restore_tenant(3, Vec::new(), QueueStats::default())
            .unwrap();
        assert!(!bus.pending_hint(2).unwrap());
    }

    #[test]
    fn concurrent_producers_land_every_arrival_exactly_once() {
        let bus = std::sync::Arc::new(
            ArrivalBus::new(
                8,
                BusConfig {
                    capacity_per_tenant: 10_000,
                    tenants_per_group: 3,
                    ..BusConfig::default()
                },
            )
            .unwrap(),
        );
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let bus = std::sync::Arc::clone(&bus);
                std::thread::spawn(move || {
                    for k in 0..500 {
                        let tenant = (p * 500 + k) % 8;
                        bus.push(tenant, (p * 500 + k) as f64).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut buf = Vec::new();
        let mut total = 0usize;
        for tenant in 0..8 {
            total += bus.drain_into(tenant, &mut buf).unwrap();
            assert!(buf.windows(2).all(|w| w[0] <= w[1]), "drain is sorted");
        }
        assert_eq!(total, 2_000);
        let stats = bus.stats();
        assert_eq!(stats.enqueued, 2_000);
        assert_eq!(stats.dropped_full, 0);
        assert_eq!(stats.drained, 2_000);
    }
}
