//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a seeded *schedule* of faults: every decision —
//! "does tenant 3's planning round error out in round 7?", "does the
//! second write of `gen-000002/shard-001.json` fail?" — is a pure
//! function of the plan's seed and the injection site's coordinates
//! (round, tenant, path tag, call count). No wall clock, no global
//! RNG, no thread identity enters the hash, so the same plan replays
//! the same faults bit-for-bit: across runs, across worker counts,
//! and across checkpoint directories (paths are reduced to their
//! generation-relative tail before hashing).
//!
//! The injector plugs into the existing seams rather than adding new
//! ones:
//!
//! * **planning** — [`FaultInjector::plan_fault`] makes a tenant's
//!   round return an [`Injected`](crate::OnlineError::Injected) error
//!   or panic inside the round worker (exercising the fleet's
//!   `catch_unwind` boundary);
//! * **ingestion** — [`FaultInjector::corrupt_arrivals`] flips a
//!   drained arrival to NaN and/or applies a clock skew to the batch,
//!   exercising the ring's rejection of non-finite and pre-origin
//!   timestamps;
//! * **checkpoint I/O** — [`FaultyStorage`] wraps the real filesystem
//!   behind [`CheckpointStorage`] and fails individual operations with
//!   injected [`std::io::ErrorKind`]s, exercising the retry loop, the
//!   hard-link → copy → full-rewrite fallback chain, and the
//!   scan-back-to-restorable-generation restore path;
//! * **workers** — [`FaultInjector::worker_panics`] kills a pool
//!   worker at a chunk boundary, outside any tenant, exercising the
//!   fleet-level round abort. Worker-panic faults hash the chunk
//!   start offset and are therefore the one fault class that *is*
//!   worker-count-dependent; they are excluded from the worker-count
//!   determinism contract and from recorded traces.
//!
//! One fault decision never consumes randomness another decision
//! depends on — each site mixes its own constant — so enabling one
//! fault class does not reshuffle the schedule of the others.

use crate::checkpoint::{CheckpointStorage, OsStorage};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// Probability-per-site fault schedule. All probabilities are in
/// `[0, 1]`; the default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed every fault decision is derived from.
    pub seed: u64,
    /// Per tenant-round probability that planning returns an
    /// [`Injected`](crate::OnlineError::Injected) error.
    pub plan_error: f64,
    /// Per tenant-round probability that planning panics inside the
    /// round worker.
    pub plan_panic: f64,
    /// Per tenant-round probability that one drained arrival is
    /// replaced with NaN before ingestion.
    pub arrival_nan: f64,
    /// Per tenant-round probability that the whole drained batch is
    /// shifted by [`clock_skew_secs`](Self::clock_skew_secs).
    pub clock_skew: f64,
    /// Signed clock-skew magnitude in seconds (applied when the
    /// `clock_skew` roll fires).
    pub clock_skew_secs: f64,
    /// Per-operation probability that a checkpoint *write-side* I/O
    /// call (write, rename, hard-link, copy) fails.
    pub checkpoint_io: f64,
    /// Per-operation probability that a checkpoint *read* fails.
    /// Kept separate from [`checkpoint_io`](Self::checkpoint_io) so
    /// restorability tests can fault writes without faulting the
    /// restore they are trying to prove.
    pub restore_io: f64,
    /// Per chunk-dispatch probability that a worker thread panics at
    /// the chunk boundary (outside any tenant).
    pub worker_panic: f64,
    /// When set, tenant-scoped faults (plan errors/panics, arrival
    /// corruption) fire only for this tenant — the knob isolation
    /// tests use to fault exactly one neighbor.
    pub target_tenant: Option<u64>,
}

impl FaultPlan {
    /// True when any fault class has a non-zero probability.
    pub fn enabled(&self) -> bool {
        self.plan_error > 0.0
            || self.plan_panic > 0.0
            || self.arrival_nan > 0.0
            || self.clock_skew > 0.0
            || self.checkpoint_io > 0.0
            || self.restore_io > 0.0
            || self.worker_panic > 0.0
    }
}

/// What a fired planning fault does to the tenant's round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanFault {
    /// Planning is skipped and the slot reports
    /// [`Injected`](crate::OnlineError::Injected).
    Error,
    /// The round worker panics at the tenant boundary.
    Panic,
}

/// Checkpoint I/O operations [`FaultyStorage`] can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// File create + write + fsync.
    Write,
    /// Atomic rename.
    Rename,
    /// Hard link (shard reuse fast path).
    Link,
    /// Copy (shard reuse fallback).
    Copy,
    /// File read (restore path).
    Read,
}

const SITE_PLAN: u64 = 0x706c_616e_2e66_6c74; // "plan.flt"
const SITE_ARRIVAL: u64 = 0x6172_7256_6e61_6e00; // "arrVnan"
const SITE_ARRIVAL_IDX: u64 = 0x6172_7256_6964_7800; // "arrVidx"
const SITE_SKEW: u64 = 0x636c_6f63_6b73_6b77; // "clockskw"
const SITE_WORKER: u64 = 0x776f_726b_6572_2e70; // "worker.p"
const SITE_IO: u64 = 0x696f_2e66_6175_6c74; // "io.fault"

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The generation-relative tail of a checkpoint path: the file name,
/// prefixed by its parent directory only when that parent is a
/// generation directory (`gen-NNNNNN`). Hashing this tag instead of
/// the absolute path keeps I/O fault schedules independent of the
/// (typically randomized) checkpoint directory location.
pub fn path_tag(path: &Path) -> String {
    let name = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    match path.parent().and_then(Path::file_name) {
        Some(parent) => {
            let parent = parent.to_string_lossy();
            if parent.starts_with("gen-") {
                format!("{parent}/{name}")
            } else {
                name
            }
        }
        None => name,
    }
}

/// Stateless decision engine over a [`FaultPlan`]. Cheap to copy;
/// every method is a pure function of the plan and its arguments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Build an injector over `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// The schedule this injector decides from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when the plan injects anything at all.
    pub fn enabled(&self) -> bool {
        self.plan.enabled()
    }

    fn targets(&self, tenant: u64) -> bool {
        match self.plan.target_tenant {
            Some(t) => t == tenant,
            None => true,
        }
    }

    /// Deterministic uniform draw in `[0, 1)` for one decision site.
    fn roll(&self, site: u64, a: u64, b: u64) -> f64 {
        let h = splitmix64(splitmix64(splitmix64(self.plan.seed ^ site) ^ a) ^ b);
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Does `tenant`'s planning fault in `round`, and how? A single
    /// draw decides both, so panic and error schedules never overlap.
    pub fn plan_fault(&self, round: u64, tenant: u64) -> Option<PlanFault> {
        if !self.targets(tenant) {
            return None;
        }
        let total = self.plan.plan_panic + self.plan.plan_error;
        if total <= 0.0 {
            return None;
        }
        let r = self.roll(SITE_PLAN, round, tenant);
        if r < self.plan.plan_panic {
            Some(PlanFault::Panic)
        } else if r < total {
            Some(PlanFault::Error)
        } else {
            None
        }
    }

    /// Corrupt a drained arrival batch in place: maybe one NaN, maybe
    /// a whole-batch clock skew. Returns true when anything changed.
    pub fn corrupt_arrivals(&self, round: u64, tenant: u64, arrivals: &mut [f64]) -> bool {
        if !self.targets(tenant) || arrivals.is_empty() {
            return false;
        }
        let mut changed = false;
        if self.plan.arrival_nan > 0.0
            && self.roll(SITE_ARRIVAL, round, tenant) < self.plan.arrival_nan
        {
            let pick = splitmix64(splitmix64(self.plan.seed ^ SITE_ARRIVAL_IDX ^ round) ^ tenant);
            let idx = (pick % arrivals.len() as u64) as usize;
            arrivals[idx] = f64::NAN;
            changed = true;
        }
        if self.plan.clock_skew > 0.0 && self.roll(SITE_SKEW, round, tenant) < self.plan.clock_skew
        {
            for t in arrivals.iter_mut() {
                *t += self.plan.clock_skew_secs;
            }
            changed = true;
        }
        changed
    }

    /// Does the worker chunk starting at `chunk_start` panic in
    /// `round`? Worker-count-dependent by construction (see module
    /// docs); never recorded in traces.
    pub fn worker_panics(&self, round: u64, chunk_start: usize) -> bool {
        self.plan.worker_panic > 0.0
            && self.roll(SITE_WORKER, round, chunk_start as u64) < self.plan.worker_panic
    }

    /// Does the `nth` call of `op` on the file tagged `tag` fail, and
    /// with what [`io::ErrorKind`]? The kind itself is drawn from the
    /// same hash so retries of the same call see the same failure.
    pub fn io_error(&self, op: IoOp, tag: &str, nth: u64) -> Option<io::ErrorKind> {
        let p = match op {
            IoOp::Read => self.plan.restore_io,
            _ => self.plan.checkpoint_io,
        };
        if p <= 0.0 {
            return None;
        }
        let site = SITE_IO ^ splitmix64(op as u64 + 1);
        if self.roll(site, hash_str(tag), nth) >= p {
            return None;
        }
        let kind = match splitmix64(site ^ hash_str(tag) ^ nth) % 3 {
            0 => io::ErrorKind::Other,
            1 => io::ErrorKind::Interrupted,
            _ => io::ErrorKind::PermissionDenied,
        };
        Some(kind)
    }
}

/// [`CheckpointStorage`] over the real filesystem with injected
/// per-operation failures. Each `(op, path tag)` pair keeps its own
/// call counter, so "the second write of `gen-000002/manifest.json`
/// fails" is a stable, thread-interleaving-independent statement.
/// Directory operations (create/remove/sync/list) always pass
/// through: they are shared infrastructure whose failure would mask
/// the per-file seams this storage exists to exercise.
#[derive(Debug)]
pub struct FaultyStorage {
    inner: OsStorage,
    injector: FaultInjector,
    calls: Mutex<HashMap<(IoOp, String), u64>>,
}

impl FaultyStorage {
    /// Wrap the real filesystem with `plan`'s I/O fault schedule.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            inner: OsStorage,
            injector: FaultInjector::new(plan),
            calls: Mutex::new(HashMap::new()),
        }
    }

    fn check(&self, op: IoOp, path: &Path) -> io::Result<()> {
        let tag = path_tag(path);
        let nth = {
            let mut calls = self.calls.lock().expect("fault counter lock poisoned");
            let counter = calls.entry((op, tag.clone())).or_insert(0);
            let nth = *counter;
            *counter += 1;
            nth
        };
        match self.injector.io_error(op, &tag, nth) {
            Some(kind) => Err(io::Error::new(
                kind,
                format!("injected {op:?} fault on `{tag}` (call {nth})"),
            )),
            None => Ok(()),
        }
    }
}

impl CheckpointStorage for FaultyStorage {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.check(IoOp::Write, path)?;
        self.inner.write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check(IoOp::Rename, to)?;
        self.inner.rename(from, to)
    }

    fn hard_link(&self, src: &Path, dst: &Path) -> io::Result<()> {
        self.check(IoOp::Link, dst)?;
        self.inner.hard_link(src, dst)
    }

    fn copy(&self, src: &Path, dst: &Path) -> io::Result<()> {
        self.check(IoOp::Copy, dst)?;
        self.inner.copy(src, dst)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.inner.sync_dir(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check(IoOp::Read, path)?;
        self.inner.read(path)
    }

    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        self.inner.read_dir_names(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn default_plan_is_silent() {
        let inj = FaultInjector::new(FaultPlan::default());
        assert!(!inj.enabled());
        for round in 0..64 {
            for tenant in 0..8 {
                assert_eq!(inj.plan_fault(round, tenant), None);
                let mut batch = vec![1.0, 2.0, 3.0];
                assert!(!inj.corrupt_arrivals(round, tenant, &mut batch));
                assert_eq!(batch, vec![1.0, 2.0, 3.0]);
                assert!(!inj.worker_panics(round, tenant as usize));
            }
            assert_eq!(inj.io_error(IoOp::Write, "manifest.json", round), None);
            assert_eq!(inj.io_error(IoOp::Read, "manifest.json", round), None);
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan {
            seed: 11,
            plan_error: 0.3,
            plan_panic: 0.1,
            arrival_nan: 0.4,
            clock_skew: 0.2,
            clock_skew_secs: 5.0,
            checkpoint_io: 0.25,
            restore_io: 0.25,
            worker_panic: 0.2,
            target_tenant: None,
        };
        let a = FaultInjector::new(plan);
        let b = FaultInjector::new(plan);
        let c = FaultInjector::new(FaultPlan { seed: 12, ..plan });
        let mut differs = false;
        for round in 0..64 {
            for tenant in 0..6 {
                assert_eq!(a.plan_fault(round, tenant), b.plan_fault(round, tenant));
                let mut batch_a = vec![10.0, 20.0, 30.0, 40.0];
                let mut batch_b = batch_a.clone();
                a.corrupt_arrivals(round, tenant, &mut batch_a);
                b.corrupt_arrivals(round, tenant, &mut batch_b);
                assert_eq!(
                    batch_a.iter().map(|t| t.to_bits()).collect::<Vec<_>>(),
                    batch_b.iter().map(|t| t.to_bits()).collect::<Vec<_>>(),
                );
                differs |= a.plan_fault(round, tenant) != c.plan_fault(round, tenant);
            }
            assert_eq!(
                a.io_error(IoOp::Write, "gen-000001/shard-000.json", round),
                b.io_error(IoOp::Write, "gen-000001/shard-000.json", round),
            );
        }
        assert!(differs, "seed 11 and 12 produced identical schedules");
    }

    #[test]
    fn full_probability_fires_every_time() {
        let always_err = FaultInjector::new(FaultPlan {
            seed: 3,
            plan_error: 1.0,
            ..FaultPlan::default()
        });
        let always_panic = FaultInjector::new(FaultPlan {
            seed: 3,
            plan_panic: 1.0,
            ..FaultPlan::default()
        });
        for round in 0..32 {
            assert_eq!(always_err.plan_fault(round, 0), Some(PlanFault::Error));
            assert_eq!(always_panic.plan_fault(round, 0), Some(PlanFault::Panic));
        }
    }

    #[test]
    fn target_tenant_scopes_tenant_faults() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 7,
            plan_error: 1.0,
            arrival_nan: 1.0,
            target_tenant: Some(2),
            ..FaultPlan::default()
        });
        for round in 0..16 {
            for tenant in 0..5 {
                let fault = inj.plan_fault(round, tenant);
                let mut batch = vec![5.0, 6.0];
                let corrupted = inj.corrupt_arrivals(round, tenant, &mut batch);
                if tenant == 2 {
                    assert_eq!(fault, Some(PlanFault::Error));
                    assert!(corrupted && batch.iter().any(|t| t.is_nan()));
                } else {
                    assert_eq!(fault, None);
                    assert!(!corrupted);
                    assert_eq!(batch, vec![5.0, 6.0]);
                }
            }
        }
    }

    #[test]
    fn arrival_corruption_flips_one_slot_and_skews_batches() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 9,
            arrival_nan: 1.0,
            ..FaultPlan::default()
        });
        let mut batch = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(inj.corrupt_arrivals(4, 1, &mut batch));
        assert_eq!(batch.iter().filter(|t| t.is_nan()).count(), 1);
        assert_eq!(batch.iter().filter(|t| t.is_finite()).count(), 4);

        let skew = FaultInjector::new(FaultPlan {
            seed: 9,
            clock_skew: 1.0,
            clock_skew_secs: -30.0,
            ..FaultPlan::default()
        });
        let mut batch = vec![100.0, 200.0];
        assert!(skew.corrupt_arrivals(0, 0, &mut batch));
        assert_eq!(batch, vec![70.0, 170.0]);

        let mut empty: Vec<f64> = Vec::new();
        assert!(!inj.corrupt_arrivals(0, 0, &mut empty));
    }

    #[test]
    fn path_tags_are_directory_independent() {
        let a = PathBuf::from("/tmp/ckpt-run-a/gen-000002/shard-001.json");
        let b = PathBuf::from("/var/other/place/gen-000002/shard-001.json");
        assert_eq!(path_tag(&a), path_tag(&b));
        assert_eq!(path_tag(&a), "gen-000002/shard-001.json");
        assert_eq!(
            path_tag(Path::new("/tmp/ckpt-a/manifest.json")),
            "manifest.json"
        );
        assert_eq!(
            path_tag(Path::new("/tmp/ckpt-a/manifest.json.tmp")),
            "manifest.json.tmp"
        );
    }

    #[test]
    fn faulty_storage_counts_calls_per_site() {
        // With p = 1 every checked op fails, and the error names the
        // per-site call number, which advances per (op, tag) pair.
        let storage = FaultyStorage::new(FaultPlan {
            seed: 5,
            checkpoint_io: 1.0,
            restore_io: 1.0,
            ..FaultPlan::default()
        });
        let path = PathBuf::from("/tmp/anywhere/gen-000001/shard-000.json");
        let e0 = storage.write(&path, b"x").unwrap_err();
        let e1 = storage.write(&path, b"x").unwrap_err();
        assert!(e0.to_string().contains("call 0"), "{e0}");
        assert!(e1.to_string().contains("call 1"), "{e1}");
        // A different op on the same path has its own counter.
        let r0 = storage.read(&path).unwrap_err();
        assert!(r0.to_string().contains("call 0"), "{r0}");
        // Directory ops are never faulted.
        assert!(storage.read_dir_names(Path::new("/")).is_ok());
    }

    #[test]
    fn fault_plan_round_trips_through_serde() {
        let plan = FaultPlan {
            seed: 42,
            plan_error: 0.125,
            plan_panic: 0.0625,
            arrival_nan: 0.5,
            clock_skew: 0.25,
            clock_skew_secs: -12.5,
            checkpoint_io: 0.1,
            restore_io: 0.2,
            worker_panic: 0.3,
            target_tenant: Some(7),
        };
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, plan);
    }
}
