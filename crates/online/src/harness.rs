//! Closed-loop simulation harness: replay a trace through an
//! [`OnlineScaler`] driving the discrete-event [`Simulator`], end to end.
//!
//! This validates the serving layer the way the paper validates the
//! offline pipeline (Section III, Algorithm 1): arrivals flow into the
//! scaler's *arrival queue* as they are simulated, planning ticks run the
//! full serving round (drain the queue in timestamp order → drift check →
//! optional refit → plan window), the planned creations feed back into
//! the simulated cluster, and the run is scored with the paper's metrics
//! — hit rate, `rt_avg`, total and relative cost — plus the queue's
//! back-pressure health.
//!
//! Routing arrivals through the [`ArrivalBus`] instead of per-arrival
//! `ingest` calls mirrors production (ingestion is decoupled from the
//! planning thread and batched at round boundaries) and is
//! **bit-identical** to the synchronous path: a tick drains exactly the
//! arrivals simulated before it, in timestamp order, into the ring's bulk
//! append.

use crate::checkpoint::{CheckpointStore, TenantSnapshot};
use crate::error::OnlineError;
use crate::faults::{FaultInjector, FaultPlan};
use crate::ingest::{ArrivalBus, BusConfig, QueueStats};
use crate::replay::{
    QosRecord, SessionKind, TraceHeader, TraceRecord, TraceRecorder, TraceSummary,
    TRACE_FORMAT_VERSION,
};
use crate::scaler::{OnlineConfig, OnlineScaler, OnlineStats};
use robustscaler_core::relative_cost;
use robustscaler_simulator::{
    Autoscaler, Reactive, ScalingCommand, SimulationConfig, SimulationMetrics, Simulator,
    SystemState, Trace,
};
use serde::{Deserialize, Serialize};

/// [`Autoscaler`] adapter that feeds the simulator's arrivals into an
/// [`OnlineScaler`]'s arrival queue — drained at each planning tick — and
/// turns the scaler's planning rounds into scaling commands.
pub struct OnlinePolicy {
    scaler: OnlineScaler,
    /// Single-tenant arrival queue between the simulated request path and
    /// the planning ticks.
    bus: ArrivalBus,
    /// Drain buffer reused across ticks.
    drain_buf: Vec<f64>,
    name: String,
    /// The session recorder, while a trace recording is active.
    recorder: Option<TraceRecorder>,
    /// First recording failure. `on_planning_tick` cannot propagate
    /// errors, so the driver checks this after the simulation run — a
    /// recording that silently stopped mid-session must fail the run.
    record_error: Option<OnlineError>,
    /// Deterministic fault injector, when chaos is enabled for the run.
    faults: Option<FaultInjector>,
    /// Planning-tick counter; matches the recorder's round index so
    /// injected faults replay on the same rounds.
    round: u64,
}

impl OnlinePolicy {
    /// Wrap a scaler for use with the simulator, with the default arrival
    /// queue bound.
    pub fn new(scaler: OnlineScaler) -> Self {
        Self::with_queue_capacity(scaler, crate::ingest::DEFAULT_QUEUE_CAPACITY)
    }

    /// [`OnlinePolicy::new`] with an explicit arrival-queue bound (smaller
    /// bounds exercise back-pressure shedding in tests).
    pub fn with_queue_capacity(scaler: OnlineScaler, capacity: usize) -> Self {
        let name = format!("online-{}", scaler.config().pipeline.variant.name());
        let bus = ArrivalBus::new(
            1,
            BusConfig {
                capacity_per_tenant: capacity.max(1),
                tenants_per_group: 1,
                ..BusConfig::default()
            },
        )
        .expect("a 1-tenant bus with capacity >= 1 is always valid");
        Self {
            scaler,
            bus,
            drain_buf: Vec::new(),
            name,
            recorder: None,
            record_error: None,
            faults: None,
            round: 0,
        }
    }

    /// Enable deterministic fault injection (arrival corruption, injected
    /// planning failures) on this policy's ticks. A disabled plan clears
    /// the injector.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = plan.enabled().then(|| FaultInjector::new(plan));
    }

    /// Borrow the wrapped scaler (stats, model inspection).
    pub fn scaler(&self) -> &OnlineScaler {
        &self.scaler
    }

    /// The arrival queue's back-pressure accounting.
    pub fn queue_stats(&self) -> QueueStats {
        self.bus.stats()
    }

    /// Unwrap the scaler (e.g. to keep serving after a replay).
    pub fn into_scaler(self) -> OnlineScaler {
        self.scaler
    }
}

impl Autoscaler for OnlinePolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn planning_interval(&self) -> Option<f64> {
        Some(self.scaler.config().pipeline.planning_interval)
    }

    fn on_planning_tick(&mut self, state: &SystemState) -> Vec<ScalingCommand> {
        // Round boundary: drain everything that arrived since the last
        // tick (one batched, timestamp-ordered append), then plan.
        let pre_events = if self.recorder.is_some() {
            vec![self.scaler.take_trace_events()]
        } else {
            Vec::new()
        };
        let mut buf = std::mem::take(&mut self.drain_buf);
        let drained = matches!(self.bus.drain_into(0, &mut buf), Ok(1..));
        // Record the *uncorrupted* drain: replay re-applies the same
        // injected corruption from the header's fault plan, so the trace
        // stores what actually arrived.
        let recorded_arrivals = if self.recorder.is_some() {
            Some(buf.clone())
        } else {
            None
        };
        if drained {
            if let Some(injector) = &self.faults {
                injector.corrupt_arrivals(self.round, 0, &mut buf);
            }
            self.scaler.ingest_batch(&buf);
        }
        let injected = self
            .faults
            .as_ref()
            .and_then(|injector| injector.plan_fault(self.round, 0))
            .is_some();
        let result = if injected {
            // Both flavours of injected plan fault (error and panic)
            // surface here as a planning error: a single-scaler policy has
            // no supervisor, so there is no catch boundary to distinguish
            // them — the round is simply counted as failed.
            Err(OnlineError::Injected {
                round: self.round,
                tenant: 0,
            })
        } else {
            self.scaler.plan_round(state.now, state.covered())
        };
        let commands = match &result {
            Ok(round) => round
                .decisions
                .iter()
                .map(|d| ScalingCommand::CreateAt(d.creation_time))
                .collect(),
            // Not trained yet (cold start) or a transient planning failure:
            // emit nothing and let reactive cold starts carry the tenant —
            // a serving process must not abort on one bad round. The
            // failure is counted so persistent breakage stays visible in
            // `OnlineStats::failed_rounds` / the harness report.
            Err(_) => {
                self.scaler.record_failed_round();
                Vec::new()
            }
        };
        if let Some(recorder) = &mut self.recorder {
            let post_events = vec![self.scaler.take_trace_events()];
            let outcome = recorder.record_round(
                state.now,
                &[state.covered()],
                pre_events,
                Some(vec![recorded_arrivals.unwrap_or_default()]),
                std::slice::from_ref(&result),
                post_events,
                &[],
                Some(self.bus.stats()),
            );
            if let Err(e) = outcome {
                self.record_error.get_or_insert(e);
            }
        }
        self.round += 1;
        self.drain_buf = buf;
        commands
    }

    fn on_query_arrival(&mut self, state: &SystemState) -> Vec<ScalingCommand> {
        // `state.now` is the arrival instant of the query just dispatched.
        // Enqueue only — the ring work happens batched at the next tick. A
        // full queue sheds the arrival (counted in `dropped_full`).
        let _ = self.bus.push(0, state.now);
        Vec::new()
    }

    fn cancel_scheduled_on_cold_start(&self) -> bool {
        true
    }
}

/// Configuration of a closed-loop harness run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HarnessConfig {
    /// The serving-layer configuration.
    pub online: OnlineConfig,
    /// The simulated cluster (pending-time distribution, seed).
    pub sim: SimulationConfig,
    /// Seconds of the trace's head ingested for warm-up (initial history +
    /// first fit) before the simulated replay starts on the remainder.
    pub warmup: f64,
    /// Deterministic fault injection for the live replay (`None` or a
    /// disabled plan runs clean). Warm-up ingestion and the boundary refit
    /// are never faulted — chaos starts with the first live planning tick.
    pub faults: Option<FaultPlan>,
    /// Layer 2 plan reuse for the serving scaler: `Some(quantization)` arms
    /// the round-over-round plan cache
    /// ([`OnlineScaler::enable_plan_reuse`]), so steady-state ticks whose
    /// planning inputs are unchanged within the quantization band serve a
    /// time-shifted cached plan instead of resampling. `None` (the
    /// default) plans every round. Recorded in the trace header so replay
    /// reproduces the same cache universe.
    pub plan_reuse: Option<f64>,
}

/// Metrics of one closed-loop run (the paper's headline numbers plus the
/// serving-loop counters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarnessReport {
    /// Policy name (`online-robustscaler-hp`, ...).
    pub policy: String,
    /// Fraction of replayed queries that found a ready instance.
    pub hit_rate: f64,
    /// Average response time in seconds.
    pub rt_avg: f64,
    /// Total cost (sum of instance lifecycle lengths, seconds).
    pub total_cost: f64,
    /// Cost of the purely reactive strategy on the same replay and seed.
    pub reactive_cost: f64,
    /// `total_cost / reactive_cost`.
    pub relative_cost: f64,
    /// Number of replayed queries.
    pub queries: usize,
    /// Serving-loop counters accumulated across warm-up and replay.
    pub stats: OnlineStats,
    /// Arrival-queue health over the live replay: enqueued / dropped-full
    /// / high-water mark / drained totals (`None` when parsed from a
    /// pre-ingestion-runtime report).
    pub queue: Option<QueueStats>,
    /// Average arrivals drained per planning tick over the live replay.
    pub drained_per_round: Option<f64>,
}

/// Replay `trace` through the full online loop and score it.
///
/// The first `config.warmup` seconds are ingested into the scaler and the
/// initial model is fitted at the warm-up boundary; the remainder of the
/// trace is then replayed through the simulator with the scaler planning
/// live (ingesting each simulated arrival, refitting on schedule/drift).
/// Returns the report plus the raw simulator metrics.
pub fn run_closed_loop(
    trace: &Trace,
    config: &HarnessConfig,
) -> Result<(HarnessReport, SimulationMetrics), OnlineError> {
    let (report, metrics, _) = run_closed_loop_inner(trace, config, None, None)?;
    Ok((report, metrics))
}

/// [`run_closed_loop`] with the whole session — warm-up arrivals, the
/// boundary refit, every live round's drained arrivals, plans and refits,
/// and the final QoS metrics — recorded as a replayable JSONL trace at
/// `record_path` (see [`crate::replay`]).
pub fn run_closed_loop_recorded(
    trace: &Trace,
    config: &HarnessConfig,
    record_path: impl AsRef<std::path::Path>,
) -> Result<(HarnessReport, SimulationMetrics, TraceSummary), OnlineError> {
    let (report, metrics, summary) =
        run_closed_loop_inner(trace, config, None, Some(record_path.as_ref()))?;
    Ok((
        report,
        metrics,
        summary.expect("a recorded run always produces a summary"),
    ))
}

/// Kill-and-restore replay: [`run_closed_loop`], except the serving process
/// "dies" at the warm-up boundary — the freshly trained scaler is
/// checkpointed to `checkpoint_dir`, dropped, and a new scaler is restored
/// from disk to serve the live replay.
///
/// Because a [`crate::scaler::ScalerSnapshot`] captures every piece of
/// hidden mutable state (ring, model, RNG position, counters, refit
/// deadline, forecast-cache anchor), the report and metrics are
/// **bit-identical** to the uninterrupted [`run_closed_loop`] on the same
/// trace and configuration — the equivalence the golden harness test pins.
pub fn run_closed_loop_with_restart(
    trace: &Trace,
    config: &HarnessConfig,
    checkpoint_dir: impl AsRef<std::path::Path>,
) -> Result<(HarnessReport, SimulationMetrics), OnlineError> {
    let (report, metrics, _) =
        run_closed_loop_inner(trace, config, Some(checkpoint_dir.as_ref()), None)?;
    Ok((report, metrics))
}

fn run_closed_loop_inner(
    trace: &Trace,
    config: &HarnessConfig,
    restart_via: Option<&std::path::Path>,
    record: Option<&std::path::Path>,
) -> Result<(HarnessReport, SimulationMetrics, Option<TraceSummary>), OnlineError> {
    config.online.validate()?;
    if !(config.warmup > 0.0) || config.warmup >= trace.duration() {
        return Err(OnlineError::InvalidConfig(
            "warmup must lie strictly inside the trace duration",
        ));
    }
    let boundary = trace.start() + config.warmup;
    let (warm, live) = trace.split_at(boundary)?;

    let simulator = Simulator::new(config.sim)?;
    let mut scaler = OnlineScaler::new(config.online, trace.start())?;
    if let Some(quantization) = config.plan_reuse {
        scaler.enable_plan_reuse(quantization)?;
    }
    let mut recorder = match record {
        Some(path) => {
            scaler.set_tracing(true);
            Some(TraceRecorder::to_file(
                path,
                &TraceHeader {
                    version: TRACE_FORMAT_VERSION,
                    session: SessionKind::Single,
                    seed: config.online.pipeline.seed,
                    tenants: 1,
                    origin: trace.start(),
                    online: config.online,
                    bus: Some(BusConfig {
                        capacity_per_tenant: crate::ingest::DEFAULT_QUEUE_CAPACITY,
                        tenants_per_group: 1,
                        ..BusConfig::default()
                    }),
                    faults: config.faults.filter(FaultPlan::enabled),
                    supervisor: None,
                    residency: None,
                    sharing: config
                        .plan_reuse
                        .map(|quantization| crate::sharing::SharingConfig {
                            enabled: false,
                            quantization,
                            decision_dedup: false,
                            plan_cache: true,
                        }),
                },
            )?)
        }
        None => None,
    };

    // Warm-up flows through an arrival bus, enqueued by a producer thread
    // *while* the reactive baseline replays on this thread — the two touch
    // disjoint state, so the overlap changes no result, only wall clock.
    // The drain at the warm-up boundary then feeds the scaler one batched,
    // timestamp-ordered append (bit-identical to per-arrival ingestion).
    let warm_times = warm.arrival_times();
    let warm_bus = ArrivalBus::new(
        1,
        BusConfig {
            capacity_per_tenant: warm_times.len().max(1),
            tenants_per_group: 1,
            ..BusConfig::default()
        },
    )?;
    let mut reactive = Reactive::new();
    let (reactive_metrics, enqueued) = std::thread::scope(|scope| {
        let producer = scope.spawn(|| warm_bus.push_batch(0, &warm_times));
        let metrics = simulator.run(&live, &mut reactive);
        let enqueued = producer.join().expect("warm-up producer thread panicked");
        (metrics, enqueued)
    });
    let reactive_metrics = reactive_metrics?;
    if enqueued? != warm_times.len() {
        return Err(OnlineError::InvalidConfig(
            "warm-up bus sized to the warm window cannot shed arrivals",
        ));
    }
    let mut warm_buf = Vec::new();
    warm_bus.drain_into(0, &mut warm_buf)?;
    scaler.ingest_batch(&warm_buf);
    scaler.refit_now(boundary)?;
    if let Some(recorder) = &mut recorder {
        // The warm window is one direct batched ingestion followed by the
        // boundary refit; recording both lets replay rebuild the training
        // window before validating any live round.
        recorder.record(&TraceRecord::Arrivals {
            round: 0,
            tenant: 0,
            direct: true,
            times: warm_buf.clone(),
        })?;
        recorder.flush_pending(vec![scaler.take_trace_events()])?;
    }

    if let Some(dir) = restart_via {
        // Simulated process death: persist, drop, restore from disk.
        let store = CheckpointStore::new(dir);
        store.write(&[TenantSnapshot::new(0, scaler.snapshot())], 1, 1)?;
        drop(scaler);
        let snapshots = store.load(1)?;
        let snapshot = snapshots
            .into_iter()
            .next()
            .ok_or(OnlineError::Checkpoint {
                shard: None,
                message: "harness checkpoint holds no tenant".to_string(),
            })?;
        scaler = OnlineScaler::restore(snapshot.scaler, config.online)?;
        // Tracing is runtime wiring, not scaler state, so it is deliberately
        // absent from snapshots — re-arm it on the restored instance. Plan
        // reuse is the same kind of wiring (the cache *contents* restored
        // with the snapshot; the enable switch did not), so re-arm it too.
        if recorder.is_some() {
            scaler.set_tracing(true);
        }
        if let Some(quantization) = config.plan_reuse {
            scaler.enable_plan_reuse(quantization)?;
        }
    }

    let mut policy = OnlinePolicy::new(scaler);
    policy.recorder = recorder;
    if let Some(plan) = config.faults {
        policy.set_faults(plan);
    }
    let metrics = simulator.run(&live, &mut policy)?;
    if let Some(e) = policy.record_error.take() {
        return Err(e);
    }

    let queue = policy.queue_stats();
    let report = HarnessReport {
        policy: policy.name().to_string(),
        hit_rate: metrics.hit_rate(),
        rt_avg: metrics.rt_avg(),
        total_cost: metrics.total_cost(),
        reactive_cost: reactive_metrics.total_cost(),
        relative_cost: relative_cost(metrics.total_cost(), reactive_metrics.total_cost()),
        queries: metrics.query_count(),
        stats: *policy.scaler().stats(),
        queue: Some(queue),
        drained_per_round: Some(queue.drained_per_drain()),
    };
    let summary = match policy.recorder.take() {
        Some(recorder) => Some(recorder.finish(QosRecord {
            stats: report.stats,
            queue: report.queue,
            hit_rate: Some(report.hit_rate),
            rt_avg: Some(report.rt_avg),
            relative_cost: Some(report.relative_cost),
            queries: Some(report.queries as u64),
        })?),
        None => None,
    };
    Ok((report, metrics, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustscaler_core::{RobustScalerConfig, RobustScalerVariant};
    use robustscaler_simulator::{PendingTimeDistribution, Query};

    fn uniform_trace(duration: f64, gap: f64, processing: f64) -> Trace {
        let n = (duration / gap) as usize;
        Trace::new(
            "uniform",
            (0..n)
                .map(|i| Query {
                    arrival: i as f64 * gap,
                    processing,
                })
                .collect(),
        )
        .unwrap()
    }

    fn harness_config() -> HarnessConfig {
        let mut pipeline =
            RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability {
                target: 0.9,
            });
        pipeline.bucket_width = 30.0;
        pipeline.periodicity_aggregation = 2;
        pipeline.admm.max_iterations = 40;
        pipeline.monte_carlo_samples = 120;
        pipeline.planning_interval = 20.0;
        pipeline.mean_processing = 5.0;
        pipeline.seed = 3;
        let mut online = OnlineConfig::new(pipeline);
        online.window_buckets = 480;
        online.min_training_buckets = 60;
        online.refit_interval = 1_800.0;
        HarnessConfig {
            online,
            sim: SimulationConfig {
                pending: PendingTimeDistribution::Deterministic(13.0),
                seed: 5,
                recent_history_window: 600.0,
            },
            warmup: 2.0 * 3_600.0,
            faults: None,
            plan_reuse: None,
        }
    }

    #[test]
    fn rejects_out_of_range_warmup() {
        let trace = uniform_trace(3_600.0, 30.0, 5.0);
        let mut config = harness_config();
        config.warmup = 0.0;
        assert!(run_closed_loop(&trace, &config).is_err());
        config.warmup = 2.0 * 3_600.0;
        assert!(run_closed_loop(&trace, &config).is_err());
    }

    #[test]
    fn closed_loop_on_steady_traffic_reaches_a_high_hit_rate() {
        // 4 h of steady traffic: 2 h warm-up, 2 h live replay.
        let trace = uniform_trace(4.0 * 3_600.0, 30.0, 5.0);
        let (report, metrics) = run_closed_loop(&trace, &harness_config()).unwrap();
        assert_eq!(report.queries, metrics.query_count());
        assert!(report.hit_rate > 0.8, "hit rate {}", report.hit_rate);
        assert!(report.rt_avg < 10.0, "rt_avg {}", report.rt_avg);
        assert!(report.relative_cost.is_finite());
        assert!(report.stats.refits >= 1);
        assert!(report.stats.planning_rounds > 0);
        // Live arrivals were ingested during the replay (on top of warm-up).
        assert!(report.stats.arrivals_ingested as usize > report.queries);
        // Every live arrival flowed through the queue; none were shed and
        // the round drains kept the backlog bounded.
        let queue = report.queue.expect("bus-fed harness reports queue health");
        assert_eq!(queue.enqueued as usize, report.queries);
        assert_eq!(queue.dropped_full, 0);
        assert!(queue.queued_peak >= 1);
        assert!(report.drained_per_round.unwrap() > 0.0);
    }

    /// The bus-fed serving loop must be bit-identical to per-arrival
    /// synchronous ingestion: drive the same scaler state through both
    /// paths and compare the planning outcomes.
    #[test]
    fn queued_ticks_match_synchronous_ingestion() {
        let config = harness_config();
        let arrivals: Vec<f64> = (0..500).map(|i| i as f64 * 17.0).collect();
        let ticks: Vec<f64> = (1..20).map(|k| 7_300.0 + 20.0 * k as f64).collect();

        // Synchronous reference: ingest each arrival the moment it happens.
        let mut sync = OnlineScaler::new(config.online, 0.0).unwrap();
        // Bus path: arrivals enqueue, ticks drain.
        let mut policy = OnlinePolicy::new(OnlineScaler::new(config.online, 0.0).unwrap());

        let mut next_arrival = 0usize;
        for (round, &tick) in ticks.iter().enumerate() {
            while next_arrival < arrivals.len() && arrivals[next_arrival] < tick {
                let t = arrivals[next_arrival];
                sync.ingest(t);
                assert!(policy.bus.push(0, t).unwrap());
                next_arrival += 1;
            }
            let expected = sync.plan_round(tick, round);
            let mut buf = Vec::new();
            if policy.bus.drain_into(0, &mut buf).unwrap() > 0 {
                policy.scaler.ingest_batch(&buf);
            }
            let got = policy.scaler.plan_round(tick, round);
            assert_eq!(expected, got, "diverged at tick {tick}");
        }
        assert_eq!(sync.stats(), policy.scaler().stats());
    }

    #[test]
    fn tiny_queue_sheds_load_but_keeps_serving() {
        let config = harness_config();
        let policy =
            OnlinePolicy::with_queue_capacity(OnlineScaler::new(config.online, 0.0).unwrap(), 2);
        for k in 0..10 {
            let _ = policy.bus.push(0, k as f64);
        }
        let stats = policy.queue_stats();
        assert_eq!(stats.enqueued, 2);
        assert_eq!(stats.dropped_full, 8);
        let mut buf = Vec::new();
        assert_eq!(policy.bus.drain_into(0, &mut buf).unwrap(), 2);
    }

    #[test]
    fn closed_loop_runs_are_deterministic_for_a_fixed_seed() {
        let trace = uniform_trace(3.0 * 3_600.0, 45.0, 5.0);
        let mut config = harness_config();
        config.warmup = 1.5 * 3_600.0;
        let (a, _) = run_closed_loop(&trace, &config).unwrap();
        let (b, _) = run_closed_loop(&trace, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn recorded_closed_loop_replays_strictly_and_matches_the_plain_run() {
        use crate::replay::{replay_path, PolicyBands, ReplayMode};
        let path = std::env::temp_dir().join(format!(
            "robustscaler-harness-trace-{}.jsonl",
            std::process::id()
        ));
        let trace = uniform_trace(3.0 * 3_600.0, 45.0, 5.0);
        let mut config = harness_config();
        config.warmup = 1.5 * 3_600.0;
        let (plain, plain_metrics) = run_closed_loop(&trace, &config).unwrap();
        let (report, metrics, summary) = run_closed_loop_recorded(&trace, &config, &path).unwrap();
        // Recording is observation only: the reported session is unchanged.
        assert_eq!(plain, report);
        assert_eq!(plain_metrics, metrics);
        assert_eq!(summary.path, path.display().to_string());
        assert!(summary.records > 0);
        assert!(summary.rounds > 0);

        let replay = replay_path(&path, ReplayMode::Strict, &PolicyBands::default()).unwrap();
        assert!(replay.passed(), "divergences: {:?}", replay.divergences);
        assert_eq!(replay.rounds, summary.rounds);
        assert!(replay.plans_checked > 0);
        assert!(replay.refits_checked >= 1, "boundary refit must be checked");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn plan_reuse_kill_and_restore_stays_bit_identical() {
        let dir = std::env::temp_dir().join(format!(
            "robustscaler-harness-reuse-ckpt-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let trace = uniform_trace(3.0 * 3_600.0, 45.0, 5.0);
        let mut config = harness_config();
        config.warmup = 1.5 * 3_600.0;
        config.plan_reuse = Some(0.05);
        let (continuous, continuous_metrics) = run_closed_loop(&trace, &config).unwrap();
        let (restarted, restarted_metrics) =
            run_closed_loop_with_restart(&trace, &config, &dir).unwrap();
        // The cache contents travel in the snapshot and the restart re-arms
        // reuse, so the interrupted session is bit-identical to the
        // continuous one even when hits consume no RNG.
        assert_eq!(continuous, restarted);
        assert_eq!(continuous_metrics, restarted_metrics);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_reuse_recorded_sessions_replay_strictly() {
        use crate::replay::{replay_path, PolicyBands, ReplayMode};
        let path = std::env::temp_dir().join(format!(
            "robustscaler-harness-reuse-trace-{}.jsonl",
            std::process::id()
        ));
        let trace = uniform_trace(3.0 * 3_600.0, 45.0, 5.0);
        let mut config = harness_config();
        config.warmup = 1.5 * 3_600.0;
        config.plan_reuse = Some(0.05);
        let (plain, _) = run_closed_loop(&trace, &config).unwrap();
        let (report, _, summary) = run_closed_loop_recorded(&trace, &config, &path).unwrap();
        assert_eq!(plain, report);
        // The header carries the reuse policy, so the replayer rebuilds the
        // same cache universe and every round validates bit-for-bit.
        let replay = replay_path(&path, ReplayMode::Strict, &PolicyBands::default()).unwrap();
        assert!(replay.passed(), "divergences: {:?}", replay.divergences);
        assert_eq!(replay.rounds, summary.rounds);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_and_restore_replay_is_bit_identical_to_uninterrupted() {
        let dir =
            std::env::temp_dir().join(format!("robustscaler-harness-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let trace = uniform_trace(3.0 * 3_600.0, 45.0, 5.0);
        let mut config = harness_config();
        config.warmup = 1.5 * 3_600.0;
        let (continuous, continuous_metrics) = run_closed_loop(&trace, &config).unwrap();
        let (restarted, restarted_metrics) =
            run_closed_loop_with_restart(&trace, &config, &dir).unwrap();
        assert_eq!(continuous, restarted);
        assert_eq!(continuous_metrics, restarted_metrics);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
