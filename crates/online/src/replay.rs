//! Recorded-trace replay: versioned JSONL session traces, deterministic
//! re-execution, and strict/lenient validation.
//!
//! Golden *scalars* (hit rate 0.9053, `rt_avg` 20.96 s) pin the end of a
//! run but not its path: a refactor can reshuffle per-round plans, refit
//! timing or queue behavior while the aggregates stay inside their bands.
//! This module records the *whole session* — every arrival batch, every
//! plan, every refit, every queue drain — as one JSONL trace, and replays
//! it by re-executing the session from the header (same seeds, same bus
//! drain boundaries) and comparing the regenerated stream field by field
//! against the recorded one.
//!
//! ## Trace format (v1)
//!
//! One [`TraceRecord`] per line. Line 1 is always [`TraceRecord::Header`]
//! (format version, session kind, seed, tenant count, ring origin, the
//! full [`OnlineConfig`] and — when an arrival bus was attached — its
//! [`BusConfig`]). After it, in session order:
//!
//! * [`TraceRecord::Install`] — an externally fitted model installed into
//!   a tenant (warm starts). Replay *executes* it.
//! * [`TraceRecord::Arrivals`] — one tenant's arrivals visible to a round:
//!   `direct: true` batches were ingested synchronously (replay ingests
//!   them), `direct: false` batches were drained from the arrival bus at
//!   the round boundary (replay enqueues them and lets the round drain).
//! * [`TraceRecord::Round`] — a planning round boundary (round index,
//!   wall-clock `now`, per-tenant `covered` counts). Replay runs the round.
//! * [`TraceRecord::Refit`] — a refit that ran. [`RefitTrigger::Explicit`]
//!   refits (driver-initiated, outside a round) are *executed* by replay;
//!   `First`/`Scheduled`/`Drift`/`Probe` refits fire inside rounds and are
//!   *validated* against the refits the replayed round regenerates.
//! * [`TraceRecord::Plan`] — one tenant's planning outcome for a round.
//!   Validated bit-for-bit (every decision field compared as f64 bits).
//! * [`TraceRecord::Queue`] — aggregate queue stats after a round.
//!   `drained`/`drains` are validated; the producer-side counters
//!   (`enqueued`, `dropped_full`, `queued_peak`) are recorded for audit
//!   but not re-derivable (replay enqueues only the *accepted* arrivals),
//!   so they are not compared.
//! * [`TraceRecord::Qos`] — final serving counters and (harness sessions)
//!   the QoS headline metrics. Counters are validated; the QoS scalars
//!   are checked against [`PolicyBands`].
//!
//! ## Strict vs lenient
//!
//! [`ReplayMode::Strict`] fails on the first divergence with a pointed
//! diff — [`OnlineError::ReplayDivergence`] names the round, tenant,
//! field, expected and got. [`ReplayMode::Lenient`] collects every
//! divergence into the [`ReplayReport`] and reports band violations
//! instead of failing, for auditing sessions recorded by *older* builds
//! whose bit-level behavior has intentionally changed.
//!
//! ## Recording order caveat
//!
//! Within one round gap, the recorder serializes scaler events (installs,
//! explicit refits) *before* directly ingested arrivals. Drivers that
//! interleave `ingest` with `refit_now` between two rounds and depend on
//! that order should route arrivals through the bus (bus batches are
//! drained at the boundary, after all between-round events, exactly as
//! recorded).

use crate::error::OnlineError;
use crate::fleet::TenantFleet;
use crate::ingest::{ArrivalBus, BusConfig, QueueStats};
use crate::scaler::{OnlineConfig, OnlineScaler, OnlineStats};
use robustscaler_nhpp::NhppModel;
use robustscaler_scaling::{PlanningRound, ScalingDecision};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Trace format version written by [`TraceRecorder`]; bump on any record
/// layout change and keep [`RecordedTrace::parse`] reading every version
/// still present in checked-in golden corpora.
///
/// v2 added the optional `faults` / `supervisor` header fields (chaos
/// sessions replay their injected faults and quarantine decisions); v1
/// traces parse as fault-free sessions under the default supervisor.
///
/// v3 added the optional `residency` header field and the
/// [`TraceRecord::Residency`] record (hibernate/wake transitions of
/// activity-tiered fleets replay and validate bit-for-bit); v1/v2 traces
/// parse as always-hot sessions.
///
/// v4 added the optional `sharing` header field: the cross-tenant
/// sharing / plan-reuse policy ([`crate::sharing::SharingConfig`]) the
/// session ran under, re-applied by replay so shared-sampling, decision
/// dedup and plan-cache universes reproduce bit-for-bit. Pre-v4 traces
/// parse as sharing-off sessions (which they were — the setting did not
/// exist).
pub const TRACE_FORMAT_VERSION: u32 = 4;

/// What kind of session a trace records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionKind {
    /// A multi-tenant [`TenantFleet`] session.
    Fleet,
    /// A single-scaler session (the closed-loop harness's `OnlinePolicy`).
    Single,
}

/// Why a refit ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefitTrigger {
    /// The first fit, once enough complete buckets accumulated.
    First,
    /// A scheduled rolling refit (`refit_interval` elapsed).
    Scheduled,
    /// An early refit forced by the drift detector.
    Drift,
    /// A driver-initiated refit ([`OnlineScaler::refit_now`]) outside a
    /// planning round; replay re-executes these rather than validating.
    Explicit,
    /// A supervised probe's forced recovery refit. Runs *inside* a fleet
    /// round, so replay regenerates and validates it like `Scheduled`.
    Probe,
}

/// One scaler-side event captured while tracing is enabled (refits with
/// their trigger, model installs) — harvested by the recorder at round
/// boundaries via [`OnlineScaler::take_trace_events`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScalerEvent {
    /// A refit ran at `at`.
    Refit {
        /// When the refit ran.
        at: f64,
        /// What triggered it.
        trigger: RefitTrigger,
        /// Fingerprint of the freshly fitted model.
        fingerprint: String,
    },
    /// An externally fitted model was installed at `at`.
    Install {
        /// The `now` passed to [`OnlineScaler::install_model`].
        at: f64,
        /// Fingerprint of the installed model.
        fingerprint: String,
        /// The installed model itself (replay re-installs it verbatim).
        model: NhppModel,
    },
}

/// Why a hibernated tenant woke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WakeReason {
    /// Arrivals landed on its queue.
    Arrival,
    /// Its scheduled wake time (from the quiescence forecast) passed.
    Due,
    /// The driver touched it directly (`tenant_mut` / `ingest`).
    Access,
}

/// One residency transition of an activity-tiered fleet (see
/// [`crate::fleet::ResidencyConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResidencyEvent {
    /// The tenant went cold: planning skipped until a wake trigger.
    Hibernate,
    /// The tenant came back hot.
    Wake {
        /// What woke it.
        reason: WakeReason,
    },
}

/// Trace line 1: everything replay needs to rebuild the session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Trace format version ([`TRACE_FORMAT_VERSION`]).
    pub version: u32,
    /// Fleet or single-scaler session.
    pub session: SessionKind,
    /// The base seed: the fleet seed per-tenant seeds are derived from,
    /// or the single scaler's pipeline seed.
    pub seed: u64,
    /// Number of tenants (always 1 for [`SessionKind::Single`]).
    pub tenants: usize,
    /// The bucket-grid origin every ring was anchored at.
    pub origin: f64,
    /// The full serving configuration.
    pub online: OnlineConfig,
    /// The arrival-bus configuration, when a bus was attached.
    pub bus: Option<BusConfig>,
    /// The fault plan active while recording, when chaos was enabled —
    /// replay re-applies it so every injected fault (and therefore every
    /// recovery action) reproduces. Absent in v1 traces and fault-free
    /// sessions.
    pub faults: Option<crate::faults::FaultPlan>,
    /// The fleet supervision policy the session ran under; absent in v1
    /// traces and single-scaler sessions (replay then uses the default).
    pub supervisor: Option<crate::fleet::SupervisorConfig>,
    /// The residency policy, when activity tiering was enabled — replay
    /// re-enables it (paging off: a resident-cold tenant is
    /// bit-equivalent to a paged one) so hibernation and wake decisions
    /// reproduce. Absent in pre-v3 traces and always-hot sessions.
    pub residency: Option<crate::fleet::ResidencyConfig>,
    /// The cross-tenant sharing / plan-reuse policy the session ran under
    /// — replay re-applies it so the shared-sampling, decision-dedup and
    /// plan-cache universes reproduce bit-for-bit. Absent in pre-v4
    /// traces (sharing-off sessions by construction).
    pub sharing: Option<crate::sharing::SharingConfig>,
}

/// One tenant's planning outcome for one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRecord {
    /// Round index.
    pub round: u64,
    /// Tenant index.
    pub tenant: u64,
    /// The error display string when the tenant's round errored (not
    /// trained yet, ...); `None` for successful plans.
    pub error: Option<String>,
    /// [`PlanningRound::expected_arrivals_in_window`] (compared as bits).
    pub expected_arrivals_in_window: f64,
    /// [`PlanningRound::decisions`] (every field compared, f64s as bits).
    pub decisions: Vec<ScalingDecision>,
}

/// A refit event: executed on replay when `trigger` is
/// [`RefitTrigger::Explicit`], validated against the regenerated refit
/// stream otherwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefitRecord {
    /// Round index the event was recorded under.
    pub round: u64,
    /// Tenant index.
    pub tenant: u64,
    /// When the refit ran.
    pub at: f64,
    /// What triggered it.
    pub trigger: RefitTrigger,
    /// Fingerprint of the resulting model (FNV-1a 64 over its JSON).
    pub fingerprint: String,
}

/// Final QoS and serving counters; last record of a complete trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosRecord {
    /// Aggregate serving counters (validated field by field on replay).
    pub stats: OnlineStats,
    /// Aggregate queue stats (`drained`/`drains` validated).
    pub queue: Option<QueueStats>,
    /// Harness sessions: fraction of queries that hit a ready instance.
    pub hit_rate: Option<f64>,
    /// Harness sessions: average response time (seconds).
    pub rt_avg: Option<f64>,
    /// Harness sessions: cost relative to the reactive baseline.
    pub relative_cost: Option<f64>,
    /// Harness sessions: number of replayed queries.
    pub queries: Option<u64>,
}

/// One line of a session trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)] // one Header per trace; boxing it would noise up every parse site
pub enum TraceRecord {
    /// Line 1: session identity and configuration.
    Header(TraceHeader),
    /// An externally fitted model installed into a tenant (executed on
    /// replay).
    Install {
        /// Round index the install was recorded under.
        round: u64,
        /// Tenant index.
        tenant: u64,
        /// The `now` passed to [`OnlineScaler::install_model`].
        at: f64,
        /// Fingerprint of `model` (consistency check).
        fingerprint: String,
        /// The installed model, verbatim.
        model: NhppModel,
    },
    /// One tenant's arrivals visible to round `round`.
    Arrivals {
        /// Round index the arrivals were recorded under.
        round: u64,
        /// Tenant index.
        tenant: u64,
        /// `true`: ingested synchronously (replay ingests directly);
        /// `false`: drained from the bus at the round boundary (replay
        /// enqueues, the round drains).
        direct: bool,
        /// The timestamps, in ingestion order (bus batches are stored in
        /// drain order, i.e. sorted by `f64::total_cmp`).
        times: Vec<f64>,
    },
    /// A planning round boundary (replay runs the round).
    Round {
        /// Round index (consecutive from 0).
        round: u64,
        /// The round's wall-clock `now`.
        now: f64,
        /// Per-tenant covered counts passed to the planner.
        covered: Vec<usize>,
    },
    /// A refit event (see [`RefitRecord`]).
    Refit(RefitRecord),
    /// One tenant's planning outcome (see [`PlanRecord`]).
    Plan(PlanRecord),
    /// One residency transition (hibernate or wake) observed by round
    /// `round` — validated against the regenerated transition stream on
    /// replay. Only present in v3+ traces of residency-enabled sessions.
    Residency {
        /// Round index the transition was recorded under.
        round: u64,
        /// Tenant id (equal to its index at fleet construction).
        tenant: u64,
        /// The transition.
        event: ResidencyEvent,
    },
    /// Aggregate queue stats after round `round`.
    Queue {
        /// Round index.
        round: u64,
        /// Aggregate queue stats at the end of the round.
        stats: QueueStats,
    },
    /// Final QoS metrics and counters (see [`QosRecord`]).
    Qos(QosRecord),
}

impl TraceRecord {
    /// The tenant index a record is scoped to, if any (bounds-checked
    /// against the header at parse time).
    fn tenant(&self) -> Option<u64> {
        match self {
            TraceRecord::Install { tenant, .. }
            | TraceRecord::Arrivals { tenant, .. }
            | TraceRecord::Residency { tenant, .. } => Some(*tenant),
            TraceRecord::Refit(r) => Some(r.tenant),
            TraceRecord::Plan(p) => Some(p.tenant),
            _ => None,
        }
    }
}

/// Fingerprint of a model: FNV-1a 64 over its JSON serialization,
/// lowercase hex — cheap, stable, and sensitive to any parameter change.
pub fn model_fingerprint(model: &NhppModel) -> String {
    let json = serde_json::to_string(model).expect("an NhppModel always serializes");
    format!("{:016x}", crate::checkpoint::fnv1a64(json.as_bytes()))
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

/// Destination for serialized trace lines. Implementations append lines in
/// order; [`TraceSink::flush`] must make everything written so far durable.
pub trait TraceSink: Send {
    /// Append one serialized record (no trailing newline).
    fn write_line(&mut self, line: &str) -> Result<(), OnlineError>;
    /// Flush buffered lines.
    fn flush(&mut self) -> Result<(), OnlineError>;
}

/// [`TraceSink`] writing JSONL to a buffered file.
#[derive(Debug)]
pub struct FileSink {
    writer: std::io::BufWriter<fs::File>,
    path: String,
}

impl FileSink {
    /// Create (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, OnlineError> {
        let path = path.as_ref();
        let file = fs::File::create(path).map_err(|e| OnlineError::Trace {
            line: None,
            message: format!("create {}: {e}", path.display()),
        })?;
        Ok(Self {
            writer: std::io::BufWriter::new(file),
            path: path.display().to_string(),
        })
    }
}

impl TraceSink for FileSink {
    fn write_line(&mut self, line: &str) -> Result<(), OnlineError> {
        writeln!(self.writer, "{line}").map_err(|e| OnlineError::Trace {
            line: None,
            message: format!("write {}: {e}", self.path),
        })
    }

    fn flush(&mut self) -> Result<(), OnlineError> {
        self.writer.flush().map_err(|e| OnlineError::Trace {
            line: None,
            message: format!("flush {}: {e}", self.path),
        })
    }
}

/// In-memory [`TraceSink`] for tests: lines land in a shared buffer that
/// stays readable after the recorder is finished.
#[derive(Debug, Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle to the recorded lines (clone before handing the sink to a
    /// recorder).
    pub fn lines(&self) -> Arc<Mutex<Vec<String>>> {
        Arc::clone(&self.lines)
    }
}

impl TraceSink for MemorySink {
    fn write_line(&mut self, line: &str) -> Result<(), OnlineError> {
        self.lines
            .lock()
            .expect("memory sink lock poisoned")
            .push(line.to_string());
        Ok(())
    }

    fn flush(&mut self) -> Result<(), OnlineError> {
        Ok(())
    }
}

/// Summary of a finished recording, for bench/CI reporting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Where the trace was written (`"<memory>"` for non-file sinks).
    pub path: String,
    /// Records written after the header.
    pub records: u64,
    /// Rounds recorded.
    pub rounds: u64,
}

/// Serializes session events into a [`TraceSink`], one JSONL line per
/// record, with the round counter and per-tenant direct-arrival buffers
/// the fleet/harness hooks need.
///
/// A recorder is detachable: [`TenantFleet::take_recorder`] hands it back
/// (e.g. across a kill + restore) and [`TenantFleet::start_recording`]
/// re-attaches it, continuing the same trace — warm-start installs are
/// only emitted for a recorder that has recorded nothing yet.
pub struct TraceRecorder {
    sink: Box<dyn TraceSink>,
    path: String,
    tenant_count: usize,
    round: u64,
    records: u64,
    pending_direct: Vec<Vec<f64>>,
}

impl fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("path", &self.path)
            .field("round", &self.round)
            .field("records", &self.records)
            .finish()
    }
}

impl TraceRecorder {
    /// Start a recording into `sink`: writes the header line immediately.
    pub fn new(mut sink: Box<dyn TraceSink>, header: &TraceHeader) -> Result<Self, OnlineError> {
        Self::write_record(&mut *sink, &TraceRecord::Header(header.clone()))?;
        Ok(Self {
            sink,
            path: "<memory>".to_string(),
            tenant_count: header.tenants,
            round: 0,
            records: 0,
            pending_direct: vec![Vec::new(); header.tenants],
        })
    }

    /// Start a recording into a fresh file at `path`.
    pub fn to_file(path: impl AsRef<Path>, header: &TraceHeader) -> Result<Self, OnlineError> {
        let display = path.as_ref().display().to_string();
        let mut recorder = Self::new(Box::new(FileSink::create(path)?), header)?;
        recorder.path = display;
        Ok(recorder)
    }

    /// Records written so far (header excluded).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The round index the next recorded round will carry.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Where this recording goes.
    pub fn path(&self) -> &str {
        &self.path
    }

    fn write_record(sink: &mut dyn TraceSink, record: &TraceRecord) -> Result<(), OnlineError> {
        let line = serde_json::to_string(record).map_err(|e| OnlineError::Trace {
            line: None,
            message: format!("record serialize failure: {e}"),
        })?;
        sink.write_line(&line)
    }

    /// Append one record.
    pub fn record(&mut self, record: &TraceRecord) -> Result<(), OnlineError> {
        Self::write_record(&mut *self.sink, record)?;
        self.records += 1;
        Ok(())
    }

    /// Buffer one directly ingested arrival; flushed as an
    /// [`TraceRecord::Arrivals`] batch at the next round (or on finish).
    pub(crate) fn pend_direct(&mut self, tenant: usize, arrival: f64) {
        self.pending_direct[tenant].push(arrival);
    }

    fn record_scaler_event(&mut self, tenant: u64, event: ScalerEvent) -> Result<(), OnlineError> {
        let round = self.round;
        match event {
            ScalerEvent::Refit {
                at,
                trigger,
                fingerprint,
            } => self.record(&TraceRecord::Refit(RefitRecord {
                round,
                tenant,
                at,
                trigger,
                fingerprint,
            })),
            ScalerEvent::Install {
                at,
                fingerprint,
                model,
            } => self.record(&TraceRecord::Install {
                round,
                tenant,
                at,
                fingerprint,
                model,
            }),
        }
    }

    /// Flush buffered direct arrivals and harvested between-round scaler
    /// events without running a round (detach, finish).
    pub(crate) fn flush_pending(
        &mut self,
        pre_events: Vec<Vec<ScalerEvent>>,
    ) -> Result<(), OnlineError> {
        for (tenant, events) in pre_events.into_iter().enumerate() {
            for event in events {
                self.record_scaler_event(tenant as u64, event)?;
            }
        }
        let pending = std::mem::take(&mut self.pending_direct);
        self.pending_direct = vec![Vec::new(); self.tenant_count];
        for (tenant, times) in pending.into_iter().enumerate() {
            if !times.is_empty() {
                self.record(&TraceRecord::Arrivals {
                    round: self.round,
                    tenant: tenant as u64,
                    direct: true,
                    times,
                })?;
            }
        }
        Ok(())
    }

    /// Record one completed round: between-round scaler events and direct
    /// arrivals first, then the bus batches the round drained, the round
    /// stamp itself, the round's residency transitions, the refits the
    /// round triggered, every tenant's plan, and the aggregate queue
    /// stats.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_round(
        &mut self,
        now: f64,
        covered: &[usize],
        pre_events: Vec<Vec<ScalerEvent>>,
        bus_arrivals: Option<Vec<Vec<f64>>>,
        results: &[Result<PlanningRound, OnlineError>],
        post_events: Vec<Vec<ScalerEvent>>,
        residency_events: &[(u64, ResidencyEvent)],
        queue: Option<QueueStats>,
    ) -> Result<(), OnlineError> {
        self.flush_pending(pre_events)?;
        let round = self.round;
        if let Some(per_tenant) = bus_arrivals {
            for (tenant, times) in per_tenant.into_iter().enumerate() {
                if !times.is_empty() {
                    self.record(&TraceRecord::Arrivals {
                        round,
                        tenant: tenant as u64,
                        direct: false,
                        times,
                    })?;
                }
            }
        }
        // Access wakes are driver-initiated and happened *before* this
        // round ran (they are why a cold tenant planned this round), so
        // they go before the Round record; the replayer re-applies them
        // like direct arrivals. Arrival/Due wakes and hibernations are
        // round outcomes and follow the Round record for validation.
        for &(tenant, event) in residency_events {
            if let ResidencyEvent::Wake {
                reason: WakeReason::Access,
            } = event
            {
                self.record(&TraceRecord::Residency {
                    round,
                    tenant,
                    event,
                })?;
            }
        }
        self.record(&TraceRecord::Round {
            round,
            now,
            covered: covered.to_vec(),
        })?;
        for &(tenant, event) in residency_events {
            if let ResidencyEvent::Wake {
                reason: WakeReason::Access,
            } = event
            {
                continue;
            }
            self.record(&TraceRecord::Residency {
                round,
                tenant,
                event,
            })?;
        }
        for (tenant, events) in post_events.into_iter().enumerate() {
            for event in events {
                self.record_scaler_event(tenant as u64, event)?;
            }
        }
        for (tenant, result) in results.iter().enumerate() {
            let plan = match result {
                Ok(round_plan) => PlanRecord {
                    round,
                    tenant: tenant as u64,
                    error: None,
                    expected_arrivals_in_window: round_plan.expected_arrivals_in_window,
                    decisions: round_plan.decisions.clone(),
                },
                Err(e) => PlanRecord {
                    round,
                    tenant: tenant as u64,
                    error: Some(e.to_string()),
                    expected_arrivals_in_window: 0.0,
                    decisions: Vec::new(),
                },
            };
            self.record(&TraceRecord::Plan(plan))?;
        }
        if let Some(stats) = queue {
            self.record(&TraceRecord::Queue { round, stats })?;
        }
        self.round += 1;
        Ok(())
    }

    /// Write the final [`TraceRecord::Qos`], flush the sink, and return
    /// the summary.
    pub fn finish(mut self, qos: QosRecord) -> Result<TraceSummary, OnlineError> {
        self.record(&TraceRecord::Qos(qos))?;
        self.sink.flush()?;
        Ok(TraceSummary {
            path: self.path,
            records: self.records,
            rounds: self.round,
        })
    }
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// A parsed trace: the header plus every following record, each tagged
/// with its 1-based line number for pointed error reporting.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    /// The session header (line 1).
    pub header: TraceHeader,
    /// Every record after the header, with its line number.
    pub records: Vec<(usize, TraceRecord)>,
}

fn trace_err(line: usize, message: impl Into<String>) -> OnlineError {
    OnlineError::Trace {
        line: Some(line),
        message: message.into(),
    }
}

impl RecordedTrace {
    /// Read and validate a trace file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, OnlineError> {
        let path = path.as_ref();
        let text = fs::read_to_string(path).map_err(|e| OnlineError::Trace {
            line: None,
            message: format!("read {}: {e}", path.display()),
        })?;
        Self::parse(&text)
    }

    /// Parse and validate trace text: line 1 must be a supported-version
    /// header, every record must parse, and tenant indices must be in
    /// range. Every failure names the offending line.
    pub fn parse(text: &str) -> Result<Self, OnlineError> {
        let mut lines = text.lines().enumerate();
        let Some((_, first)) = lines.next() else {
            return Err(trace_err(1, "empty trace (missing header)"));
        };
        let header = match serde_json::from_str::<TraceRecord>(first) {
            Ok(TraceRecord::Header(header)) => header,
            Ok(_) => return Err(trace_err(1, "first record is not a header")),
            Err(e) => return Err(trace_err(1, format!("header parse failure: {e}"))),
        };
        if header.version == 0 || header.version > TRACE_FORMAT_VERSION {
            return Err(trace_err(
                1,
                format!(
                    "unsupported trace format version {} (this build reads <= {})",
                    header.version, TRACE_FORMAT_VERSION
                ),
            ));
        }
        if header.tenants == 0 {
            return Err(trace_err(1, "header declares zero tenants"));
        }
        if header.session == SessionKind::Single && header.tenants != 1 {
            return Err(trace_err(
                1,
                format!(
                    "a Single session must have exactly one tenant, header declares {}",
                    header.tenants
                ),
            ));
        }
        let mut records = Vec::new();
        for (index, text_line) in lines {
            let line = index + 1;
            let record: TraceRecord = serde_json::from_str(text_line)
                .map_err(|e| trace_err(line, format!("record parse failure: {e}")))?;
            if matches!(record, TraceRecord::Header(_)) {
                return Err(trace_err(line, "unexpected second header"));
            }
            if let Some(tenant) = record.tenant() {
                if tenant >= header.tenants as u64 {
                    return Err(trace_err(
                        line,
                        format!(
                            "tenant {tenant} out of range (header declares {} tenants)",
                            header.tenants
                        ),
                    ));
                }
            }
            if let TraceRecord::Arrivals { direct: false, .. } = &record {
                if header.bus.is_none() {
                    return Err(trace_err(
                        line,
                        "bus arrivals recorded but the header declares no bus",
                    ));
                }
            }
            if matches!(record, TraceRecord::Residency { .. }) && header.residency.is_none() {
                return Err(trace_err(
                    line,
                    "residency transition recorded but the header declares no residency policy",
                ));
            }
            if let TraceRecord::Round { covered, .. } = &record {
                if covered.len() != header.tenants {
                    return Err(trace_err(
                        line,
                        format!(
                            "round covers {} tenants, header declares {}",
                            covered.len(),
                            header.tenants
                        ),
                    ));
                }
            }
            records.push((line, record));
        }
        Ok(Self { header, records })
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// How a replay validates the recorded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Bit-identical: fail on the first divergence with a pointed diff.
    Strict,
    /// Collect divergences, validate the recorded QoS against
    /// [`PolicyBands`], and report — never fail on a divergence.
    Lenient,
}

/// Acceptance bands for a recorded session's QoS metrics (`None` = not
/// checked). Violations land in [`ReplayReport::band_violations`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicyBands {
    /// Minimum acceptable hit rate.
    pub min_hit_rate: Option<f64>,
    /// Maximum acceptable average response time (seconds).
    pub max_rt_avg: Option<f64>,
    /// Maximum acceptable cost relative to the reactive baseline.
    pub max_relative_cost: Option<f64>,
}

/// Outcome of a replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The validation mode that ran.
    pub mode: ReplayMode,
    /// Fleet or single-scaler session.
    pub session: SessionKind,
    /// Tenants in the session.
    pub tenants: usize,
    /// Rounds re-executed.
    pub rounds: u64,
    /// Records processed (header excluded).
    pub records: u64,
    /// Plan records validated.
    pub plans_checked: u64,
    /// Refit records validated or re-executed.
    pub refits_checked: u64,
    /// Divergences found (lenient mode; strict mode fails on the first).
    pub divergences: Vec<String>,
    /// QoS values outside the [`PolicyBands`].
    pub band_violations: Vec<String>,
    /// The recorded final QoS, when the trace carries one.
    pub qos: Option<QosRecord>,
}

impl ReplayReport {
    /// Whether the replay found no divergences and no band violations.
    pub fn passed(&self) -> bool {
        self.divergences.is_empty() && self.band_violations.is_empty()
    }
}

#[allow(clippy::large_enum_variant)] // exactly one session per replay
enum ReplaySession {
    Fleet(TenantFleet),
    Single {
        scaler: Box<OnlineScaler>,
        bus: ArrivalBus,
        buf: Vec<f64>,
        faults: Option<crate::faults::FaultInjector>,
    },
}

struct Replayer {
    mode: ReplayMode,
    bands: PolicyBands,
    session: ReplaySession,
    report: ReplayReport,
    /// Regenerated plans of the last executed round, consumed by `Plan`
    /// records (one per tenant per round).
    pending_plans: Vec<Option<Result<PlanningRound, OnlineError>>>,
    /// Regenerated in-round refit events, consumed by `Refit` records.
    pending_events: Vec<std::collections::VecDeque<ScalerEvent>>,
    /// Regenerated aggregate queue stats after the last executed round.
    pending_queue: Option<QueueStats>,
    /// Regenerated residency transitions of the last executed round, in
    /// emission order, consumed by `Residency` records.
    pending_residency: std::collections::VecDeque<(u64, ResidencyEvent)>,
    next_round: u64,
    saw_qos: bool,
}

/// Format an f64 for a divergence diff: value plus exact bits, so
/// "looks equal, differs in the last ulp" cases stay diagnosable.
fn show_f64(v: f64) -> String {
    format!("{v} (bits {:#018x})", v.to_bits())
}

impl Replayer {
    fn new(
        header: &TraceHeader,
        mode: ReplayMode,
        bands: PolicyBands,
    ) -> Result<Self, OnlineError> {
        let session = match header.session {
            SessionKind::Fleet => {
                let mut fleet =
                    TenantFleet::new(&header.online, header.origin, header.tenants, header.seed)?;
                if let Some(bus) = header.bus {
                    fleet.attach_bus(bus)?;
                }
                // Chaos sessions: replay under the recorded fault plan and
                // supervision policy, so injected faults, quarantines and
                // recovery actions all reproduce bit-for-bit.
                if let Some(supervisor) = header.supervisor {
                    fleet.set_supervisor(supervisor);
                }
                if let Some(faults) = header.faults {
                    fleet.set_faults(faults);
                }
                // Residency sessions: re-enable tiering with the recorded
                // policy (including a recorded cold start) but *without*
                // paging — a resident-cold tenant plans bit-identically
                // to a paged one, so replay needs no page store.
                if let Some(residency) = header.residency {
                    fleet.enable_residency(residency)?;
                }
                // Sharing / plan-reuse sessions (v4+): re-apply the recorded
                // policy so shared sampling, decision dedup and plan-cache
                // hits reproduce bit-for-bit.
                if let Some(sharing) = header.sharing {
                    fleet.set_sharing(sharing)?;
                }
                fleet.set_tracing(true);
                ReplaySession::Fleet(fleet)
            }
            SessionKind::Single => {
                let mut scaler =
                    OnlineScaler::with_seed(header.online, header.origin, header.seed)?;
                // A single-scaler session has no cross-tenant clustering;
                // the recorded sharing policy matters only for its Layer 2
                // plan cache.
                if let Some(sharing) = header.sharing {
                    if sharing.plan_cache {
                        scaler.enable_plan_reuse(sharing.quantization)?;
                    }
                }
                scaler.set_tracing(true);
                let bus = ArrivalBus::new(1, header.bus.unwrap_or_default())?;
                ReplaySession::Single {
                    scaler: Box::new(scaler),
                    bus,
                    buf: Vec::new(),
                    faults: header
                        .faults
                        .filter(crate::faults::FaultPlan::enabled)
                        .map(crate::faults::FaultInjector::new),
                }
            }
        };
        Ok(Self {
            mode,
            bands,
            session,
            report: ReplayReport {
                mode,
                session: header.session,
                tenants: header.tenants,
                rounds: 0,
                records: 0,
                plans_checked: 0,
                refits_checked: 0,
                divergences: Vec::new(),
                band_violations: Vec::new(),
                qos: None,
            },
            pending_plans: (0..header.tenants).map(|_| None).collect(),
            pending_events: vec![std::collections::VecDeque::new(); header.tenants],
            pending_queue: None,
            pending_residency: std::collections::VecDeque::new(),
            next_round: 0,
            saw_qos: false,
        })
    }

    fn diverge(
        &mut self,
        round: u64,
        tenant: u64,
        field: &str,
        expected: String,
        got: String,
    ) -> Result<(), OnlineError> {
        match self.mode {
            ReplayMode::Strict => Err(OnlineError::ReplayDivergence {
                round,
                tenant,
                field: field.to_string(),
                expected,
                got,
            }),
            ReplayMode::Lenient => {
                self.report.divergences.push(format!(
                    "round {round} tenant {tenant} `{field}`: expected {expected}, got {got}"
                ));
                Ok(())
            }
        }
    }

    fn check_f64(
        &mut self,
        round: u64,
        tenant: u64,
        field: &str,
        expected: f64,
        got: f64,
    ) -> Result<(), OnlineError> {
        if expected.to_bits() != got.to_bits() {
            self.diverge(round, tenant, field, show_f64(expected), show_f64(got))?;
        }
        Ok(())
    }

    fn check_u64(
        &mut self,
        round: u64,
        tenant: u64,
        field: &str,
        expected: u64,
        got: u64,
    ) -> Result<(), OnlineError> {
        if expected != got {
            self.diverge(round, tenant, field, expected.to_string(), got.to_string())?;
        }
        Ok(())
    }

    fn scaler_mut(&mut self, tenant: u64) -> &mut OnlineScaler {
        match &mut self.session {
            ReplaySession::Fleet(fleet) => {
                &mut fleet
                    .tenant_mut(tenant as usize)
                    .expect("tenant indices are validated at parse time")
                    .scaler
            }
            ReplaySession::Single { scaler, .. } => scaler,
        }
    }

    /// Leftover regenerated state that recorded records never consumed —
    /// the replayed session produced plans/refits the recording did not
    /// contain. Checked at every round boundary and at the final QoS.
    fn settle_round(&mut self, upcoming: u64) -> Result<(), OnlineError> {
        let round = self.next_round.saturating_sub(1);
        for tenant in 0..self.pending_events.len() {
            while let Some(event) = self.pending_events[tenant].pop_front() {
                let got = match event {
                    ScalerEvent::Refit { trigger, .. } => format!("refit ({trigger:?})"),
                    ScalerEvent::Install { .. } => "install".to_string(),
                };
                self.diverge(
                    round,
                    tenant as u64,
                    "refit.unrecorded",
                    "no refit".to_string(),
                    got,
                )?;
            }
            if let Some(plan) = self.pending_plans[tenant].take() {
                let got = match plan {
                    Ok(_) => "a plan".to_string(),
                    Err(e) => format!("a failed plan ({e})"),
                };
                self.diverge(
                    round,
                    tenant as u64,
                    "plan.unrecorded",
                    format!("a Plan record for round {round} before round {upcoming}"),
                    got,
                )?;
            }
        }
        while let Some((tenant, event)) = self.pending_residency.pop_front() {
            self.diverge(
                round,
                tenant,
                "residency.unrecorded",
                "no residency transition".to_string(),
                format!("{event:?}"),
            )?;
        }
        self.pending_queue = None;
        Ok(())
    }

    fn execute_round(
        &mut self,
        line: usize,
        round: u64,
        now: f64,
        covered: &[usize],
    ) -> Result<(), OnlineError> {
        if round != self.next_round {
            return Err(trace_err(
                line,
                format!("round {round} out of order (expected {})", self.next_round),
            ));
        }
        self.settle_round(round)?;
        let (results, events, queue, residency) = match &mut self.session {
            ReplaySession::Fleet(fleet) => {
                let results = fleet.run_round(now, covered)?;
                // Harvest without `tenant_mut`: the marking accessor
                // would register direct driver activity (blocking cold
                // entry) and wake cold tenants — perturbing the very
                // residency stream we are validating.
                let events = fleet.harvest_trace_events();
                let queue = fleet.queue_stats();
                let residency = fleet.take_residency_events();
                (results, events, queue, residency)
            }
            ReplaySession::Single {
                scaler,
                bus,
                buf,
                faults,
            } => {
                // Mirror `OnlinePolicy::on_planning_tick` exactly: drain,
                // corrupt (when chaos is enabled), batch-ingest, plan; a
                // failed plan is swallowed but counted.
                let drained = bus.drain_into(0, buf)?;
                if drained > 0 {
                    if let Some(injector) = faults {
                        injector.corrupt_arrivals(round, 0, buf);
                    }
                    scaler.ingest_batch(buf);
                }
                let injected = faults
                    .as_ref()
                    .and_then(|injector| injector.plan_fault(round, 0))
                    .is_some();
                let result = if injected {
                    Err(OnlineError::Injected { round, tenant: 0 })
                } else {
                    scaler.plan_round(now, covered[0])
                };
                if result.is_err() {
                    scaler.record_failed_round();
                }
                (
                    vec![result],
                    vec![scaler.take_trace_events()],
                    Some(bus.stats()),
                    Vec::new(),
                )
            }
        };
        for (tenant, result) in results.into_iter().enumerate() {
            self.pending_plans[tenant] = Some(result);
        }
        for (tenant, tenant_events) in events.into_iter().enumerate() {
            self.pending_events[tenant].extend(tenant_events);
        }
        self.pending_queue = queue;
        self.pending_residency.extend(residency);
        self.next_round = round + 1;
        self.report.rounds += 1;
        Ok(())
    }

    fn check_refit(
        &mut self,
        record: &RefitRecord,
        executed: ScalerEvent,
    ) -> Result<(), OnlineError> {
        match executed {
            ScalerEvent::Refit {
                at,
                trigger,
                fingerprint,
            } => {
                if trigger != record.trigger {
                    self.diverge(
                        record.round,
                        record.tenant,
                        "refit.trigger",
                        format!("{:?}", record.trigger),
                        format!("{trigger:?}"),
                    )?;
                }
                self.check_f64(record.round, record.tenant, "refit.at", record.at, at)?;
                if fingerprint != record.fingerprint {
                    self.diverge(
                        record.round,
                        record.tenant,
                        "refit.fingerprint",
                        record.fingerprint.clone(),
                        fingerprint,
                    )?;
                }
            }
            ScalerEvent::Install { .. } => {
                self.diverge(
                    record.round,
                    record.tenant,
                    "refit.kind",
                    "a refit".to_string(),
                    "an install".to_string(),
                )?;
            }
        }
        self.report.refits_checked += 1;
        Ok(())
    }

    fn process(&mut self, line: usize, record: &TraceRecord) -> Result<(), OnlineError> {
        self.report.records += 1;
        match record {
            TraceRecord::Header(_) => unreachable!("parse rejects second headers"),
            TraceRecord::Install {
                round,
                tenant,
                at,
                fingerprint,
                model,
            } => {
                let computed = model_fingerprint(model);
                if &computed != fingerprint {
                    self.diverge(
                        *round,
                        *tenant,
                        "install.fingerprint",
                        fingerprint.clone(),
                        computed,
                    )?;
                }
                let scaler = self.scaler_mut(*tenant);
                scaler.install_model(model.clone(), *at)?;
                // Discard the event the install itself regenerated.
                let _ = scaler.take_trace_events();
            }
            TraceRecord::Arrivals {
                round,
                tenant,
                direct,
                times,
            } => {
                if *direct {
                    self.scaler_mut(*tenant).ingest_batch(times);
                } else {
                    let accepted = match &self.session {
                        ReplaySession::Fleet(fleet) => fleet
                            .bus()
                            .ok_or(trace_err(line, "bus arrivals but no bus in session"))?
                            .push_batch(*tenant as usize, times)?,
                        ReplaySession::Single { bus, .. } => {
                            bus.push_batch(*tenant as usize, times)?
                        }
                    };
                    self.check_u64(
                        *round,
                        *tenant,
                        "arrivals.accepted",
                        times.len() as u64,
                        accepted as u64,
                    )?;
                }
            }
            TraceRecord::Round {
                round,
                now,
                covered,
            } => self.execute_round(line, *round, *now, covered)?,
            TraceRecord::Refit(record) => {
                if record.trigger == RefitTrigger::Explicit {
                    // Driver-initiated: execute it now, then compare.
                    let scaler = self.scaler_mut(record.tenant);
                    scaler.refit_now(record.at)?;
                    let mut events = scaler.take_trace_events();
                    let executed = events.pop().ok_or_else(|| {
                        trace_err(line, "explicit refit regenerated no trace event")
                    })?;
                    self.check_refit(record, executed)?;
                } else {
                    let regenerated = self.pending_events[record.tenant as usize].pop_front();
                    match regenerated {
                        Some(event) => self.check_refit(record, event)?,
                        None => self.diverge(
                            record.round,
                            record.tenant,
                            "refit.missing",
                            format!("a {:?} refit at {}", record.trigger, record.at),
                            "no refit".to_string(),
                        )?,
                    }
                }
            }
            TraceRecord::Plan(plan) => {
                let regenerated = self.pending_plans[plan.tenant as usize].take();
                let Some(result) = regenerated else {
                    return self.diverge(
                        plan.round,
                        plan.tenant,
                        "plan.missing",
                        "a regenerated plan for this round".to_string(),
                        "none (Plan record without a preceding Round?)".to_string(),
                    );
                };
                self.check_plan(plan, &result)?;
                self.report.plans_checked += 1;
            }
            TraceRecord::Residency {
                round,
                tenant,
                event,
            } => {
                if let ResidencyEvent::Wake {
                    reason: WakeReason::Access,
                } = event
                {
                    // Driver-initiated, like a direct arrival: re-apply
                    // the access (waking the cold tenant), then validate
                    // the wake it regenerated below.
                    match &mut self.session {
                        ReplaySession::Fleet(fleet) => {
                            let _ = fleet.tenant_mut(*tenant as usize);
                            let woken = fleet.take_pending_wakes();
                            self.pending_residency.extend(woken);
                        }
                        ReplaySession::Single { .. } => {
                            return Err(trace_err(
                                line,
                                "residency record in a single-scaler session",
                            ));
                        }
                    }
                }
                match self.pending_residency.pop_front() {
                    Some((got_tenant, got_event)) => {
                        if (got_tenant, got_event) != (*tenant, *event) {
                            self.diverge(
                                *round,
                                *tenant,
                                "residency.event",
                                format!("tenant {tenant} {event:?}"),
                                format!("tenant {got_tenant} {got_event:?}"),
                            )?;
                        }
                    }
                    None => self.diverge(
                        *round,
                        *tenant,
                        "residency.missing",
                        format!("tenant {tenant} {event:?}"),
                        "no residency transition".to_string(),
                    )?,
                }
            }
            TraceRecord::Queue { round, stats } => {
                let Some(got) = self.pending_queue else {
                    return self.diverge(
                        *round,
                        0,
                        "queue.missing",
                        "regenerated queue stats".to_string(),
                        "none (Queue record without a bus round?)".to_string(),
                    );
                };
                self.check_u64(*round, 0, "queue.drained", stats.drained, got.drained)?;
                self.check_u64(*round, 0, "queue.drains", stats.drains, got.drains)?;
            }
            TraceRecord::Qos(qos) => {
                self.settle_round(self.next_round)?;
                self.check_qos(qos)?;
                self.report.qos = Some(qos.clone());
                self.saw_qos = true;
            }
        }
        Ok(())
    }

    fn check_plan(
        &mut self,
        plan: &PlanRecord,
        result: &Result<PlanningRound, OnlineError>,
    ) -> Result<(), OnlineError> {
        let (round, tenant) = (plan.round, plan.tenant);
        let got_error = result.as_ref().err().map(|e| e.to_string());
        if plan.error != got_error {
            let show = |e: &Option<String>| e.clone().unwrap_or_else(|| "ok".to_string());
            self.diverge(round, tenant, "error", show(&plan.error), show(&got_error))?;
        }
        let Ok(regenerated) = result else {
            return Ok(());
        };
        self.check_f64(
            round,
            tenant,
            "expected_arrivals_in_window",
            plan.expected_arrivals_in_window,
            regenerated.expected_arrivals_in_window,
        )?;
        self.check_u64(
            round,
            tenant,
            "decisions.len",
            plan.decisions.len() as u64,
            regenerated.decisions.len() as u64,
        )?;
        for (i, (want, got)) in plan
            .decisions
            .iter()
            .zip(regenerated.decisions.iter())
            .enumerate()
        {
            self.check_u64(
                round,
                tenant,
                &format!("decisions[{i}].arrival_index"),
                want.arrival_index as u64,
                got.arrival_index as u64,
            )?;
            self.check_f64(
                round,
                tenant,
                &format!("decisions[{i}].unconstrained_creation_time"),
                want.unconstrained_creation_time,
                got.unconstrained_creation_time,
            )?;
            self.check_f64(
                round,
                tenant,
                &format!("decisions[{i}].creation_time"),
                want.creation_time,
                got.creation_time,
            )?;
            if want.clamped != got.clamped {
                self.diverge(
                    round,
                    tenant,
                    &format!("decisions[{i}].clamped"),
                    want.clamped.to_string(),
                    got.clamped.to_string(),
                )?;
            }
        }
        Ok(())
    }

    fn check_qos(&mut self, qos: &QosRecord) -> Result<(), OnlineError> {
        let round = self.next_round.saturating_sub(1);
        let got = match &self.session {
            ReplaySession::Fleet(fleet) => fleet.aggregate_stats(),
            ReplaySession::Single { scaler, .. } => *scaler.stats(),
        };
        let want = qos.stats;
        for (field, w, g) in [
            (
                "qos.stats.arrivals_ingested",
                want.arrivals_ingested,
                got.arrivals_ingested,
            ),
            (
                "qos.stats.arrivals_dropped",
                want.arrivals_dropped,
                got.arrivals_dropped,
            ),
            ("qos.stats.refits", want.refits, got.refits),
            (
                "qos.stats.drift_refits",
                want.drift_refits,
                got.drift_refits,
            ),
            (
                "qos.stats.planning_rounds",
                want.planning_rounds,
                got.planning_rounds,
            ),
            (
                "qos.stats.skipped_rounds",
                want.skipped_rounds,
                got.skipped_rounds,
            ),
            (
                "qos.stats.failed_rounds",
                want.failed_rounds,
                got.failed_rounds,
            ),
        ] {
            self.check_u64(round, 0, field, w, g)?;
        }
        if let Some(want_queue) = qos.queue {
            let got_queue = match &self.session {
                ReplaySession::Fleet(fleet) => fleet.queue_stats(),
                ReplaySession::Single { bus, .. } => Some(bus.stats()),
            };
            if let Some(got_queue) = got_queue {
                self.check_u64(
                    round,
                    0,
                    "qos.queue.drained",
                    want_queue.drained,
                    got_queue.drained,
                )?;
                self.check_u64(
                    round,
                    0,
                    "qos.queue.drains",
                    want_queue.drains,
                    got_queue.drains,
                )?;
            }
        }
        // Policy bands judge the *recorded* QoS scalars (harness sessions).
        if let (Some(min), Some(hit)) = (self.bands.min_hit_rate, qos.hit_rate) {
            if hit < min {
                self.report
                    .band_violations
                    .push(format!("hit_rate {hit} below the {min} band"));
            }
        }
        if let (Some(max), Some(rt)) = (self.bands.max_rt_avg, qos.rt_avg) {
            if rt > max {
                self.report
                    .band_violations
                    .push(format!("rt_avg {rt} above the {max} band"));
            }
        }
        if let (Some(max), Some(cost)) = (self.bands.max_relative_cost, qos.relative_cost) {
            if cost > max {
                self.report
                    .band_violations
                    .push(format!("relative_cost {cost} above the {max} band"));
            }
        }
        Ok(())
    }
}

/// Replay a parsed trace: rebuild the session from the header, re-execute
/// every record in order, and validate per [`ReplayMode`].
pub fn replay_trace(
    trace: &RecordedTrace,
    mode: ReplayMode,
    bands: &PolicyBands,
) -> Result<ReplayReport, OnlineError> {
    let mut replayer = Replayer::new(&trace.header, mode, *bands)?;
    for (line, record) in &trace.records {
        replayer.process(*line, record)?;
    }
    if !replayer.saw_qos {
        return Err(OnlineError::Trace {
            line: None,
            message: format!(
                "trace ends without a final QoS record after {} records (truncated?)",
                trace.records.len()
            ),
        });
    }
    Ok(replayer.report)
}

/// [`RecordedTrace::load`] + [`replay_trace`] in one call.
pub fn replay_path(
    path: impl AsRef<Path>,
    mode: ReplayMode,
    bands: &PolicyBands,
) -> Result<ReplayReport, OnlineError> {
    let trace = RecordedTrace::load(path)?;
    replay_trace(&trace, mode, bands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaler::tests::fast_config;

    fn fleet_with_bus(seed: u64) -> (TenantFleet, TraceHeader) {
        let config = fast_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 3, seed).unwrap();
        let bus = BusConfig {
            capacity_per_tenant: 4_096,
            tenants_per_group: 2,
            ..BusConfig::default()
        };
        fleet.attach_bus(bus).unwrap();
        let header = fleet.trace_header(seed);
        (fleet, header)
    }

    fn drive(fleet: &mut TenantFleet, rounds: std::ops::Range<usize>) {
        for round in rounds {
            for index in 0..fleet.len() {
                let gap = 4.0 + index as f64;
                let (lo, hi) = if round == 0 {
                    (0.0, 400.0)
                } else {
                    (
                        400.0 + 20.0 * (round as f64 - 1.0),
                        400.0 + 20.0 * round as f64,
                    )
                };
                let first = (lo / gap).ceil() as usize;
                for k in first.. {
                    let t = k as f64 * gap;
                    if t >= hi {
                        break;
                    }
                    assert!(fleet.enqueue(index, t).unwrap());
                }
            }
            let now = 400.0 + 20.0 * round as f64;
            fleet.run_round_uniform(now, round).unwrap();
        }
    }

    fn record_session(seed: u64, rounds: usize) -> String {
        let (mut fleet, header) = fleet_with_bus(seed);
        let sink = MemorySink::new();
        let lines = sink.lines();
        let recorder = TraceRecorder::new(Box::new(sink), &header).unwrap();
        fleet.start_recording(recorder).unwrap();
        drive(&mut fleet, 0..rounds);
        let summary = fleet.finish_recording().unwrap().unwrap();
        assert!(summary.records > 0);
        assert_eq!(summary.rounds, rounds as u64);
        let lines = lines.lock().unwrap();
        lines.join("\n")
    }

    #[test]
    fn fresh_recordings_replay_strictly() {
        let text = record_session(17, 3);
        let trace = RecordedTrace::parse(&text).unwrap();
        assert_eq!(trace.header.version, TRACE_FORMAT_VERSION);
        assert_eq!(trace.header.session, SessionKind::Fleet);
        let report = replay_trace(&trace, ReplayMode::Strict, &PolicyBands::default()).unwrap();
        assert!(report.passed());
        assert_eq!(report.rounds, 3);
        assert!(report.plans_checked >= 9);
    }

    #[test]
    fn recording_is_identical_across_worker_counts() {
        let run = |workers: usize| {
            let (mut fleet, header) = fleet_with_bus(23);
            fleet.set_workers(workers);
            let sink = MemorySink::new();
            let lines = sink.lines();
            let recorder = TraceRecorder::new(Box::new(sink), &header).unwrap();
            fleet.start_recording(recorder).unwrap();
            drive(&mut fleet, 0..2);
            fleet.finish_recording().unwrap();
            let lines = lines.lock().unwrap();
            lines.join("\n")
        };
        let serial = run(1);
        assert_eq!(serial, run(3));
        assert_eq!(serial, run(8));
    }

    #[test]
    fn direct_ingestion_and_installs_record_and_replay() {
        let config = fast_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 2, 5).unwrap();
        let model = NhppModel::from_log_rates(0.0, 10.0, vec![(0.4_f64).ln(); 60], None).unwrap();
        fleet
            .tenant_mut(0)
            .unwrap()
            .scaler
            .install_model(model, 0.0)
            .unwrap();
        let header = fleet.trace_header(5);
        let sink = MemorySink::new();
        let lines = sink.lines();
        let recorder = TraceRecorder::new(Box::new(sink), &header).unwrap();
        // Warm-start install is emitted at attach time.
        fleet.start_recording(recorder).unwrap();
        for index in 0..2 {
            for k in 0..120 {
                fleet
                    .ingest(index, k as f64 * (3.0 + index as f64))
                    .unwrap();
            }
        }
        fleet.run_round_uniform(400.0, 0).unwrap();
        fleet.finish_recording().unwrap();
        let text = lines.lock().unwrap().join("\n");
        assert!(text.contains("\"Install\""));
        let trace = RecordedTrace::parse(&text).unwrap();
        let report = replay_trace(&trace, ReplayMode::Strict, &PolicyBands::default()).unwrap();
        assert!(report.passed());
    }

    #[test]
    fn lenient_mode_collects_divergences_and_checks_bands() {
        let text = record_session(31, 2);
        // Flip one plan's expected_arrivals_in_window.
        let mutated: Vec<String> = text
            .lines()
            .map(|line| {
                if line.contains("\"Plan\"") && line.contains("\"error\":null") {
                    line.replacen(
                        "\"expected_arrivals_in_window\":",
                        "\"expected_arrivals_in_window\":9999.0,\"was\":",
                        1,
                    )
                } else {
                    line.to_string()
                }
            })
            .collect();
        let trace = RecordedTrace::parse(&mutated.join("\n")).unwrap();
        let err = replay_trace(&trace, ReplayMode::Strict, &PolicyBands::default()).unwrap_err();
        match &err {
            OnlineError::ReplayDivergence { field, .. } => {
                assert_eq!(field, "expected_arrivals_in_window");
            }
            other => panic!("expected a divergence, got {other:?}"),
        }
        let report = replay_trace(&trace, ReplayMode::Lenient, &PolicyBands::default()).unwrap();
        assert!(!report.passed());
        assert!(!report.divergences.is_empty());
    }

    #[test]
    fn parse_errors_name_the_line() {
        let text = record_session(7, 2);
        // Corrupt a middle line.
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let victim = lines.len() / 2;
        lines[victim] = "{ garbage".to_string();
        let err = RecordedTrace::parse(&lines.join("\n")).unwrap_err();
        assert!(
            err.to_string().contains(&format!("line {}", victim + 1)),
            "{err}"
        );
    }

    #[test]
    fn unknown_versions_and_missing_headers_are_rejected() {
        assert!(matches!(
            RecordedTrace::parse(""),
            Err(OnlineError::Trace { line: Some(1), .. })
        ));
        let text = record_session(3, 1);
        let current = format!("\"version\":{TRACE_FORMAT_VERSION}");
        assert!(
            text.contains(&current),
            "header no longer carries {current}"
        );
        let bumped = text.replacen(&current, "\"version\":99", 1);
        let err = RecordedTrace::parse(&bumped).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn take_recorder_and_reattach_continue_one_trace() {
        let (mut fleet, header) = fleet_with_bus(41);
        let sink = MemorySink::new();
        let lines = sink.lines();
        let recorder = TraceRecorder::new(Box::new(sink), &header).unwrap();
        fleet.start_recording(recorder).unwrap();
        drive(&mut fleet, 0..2);
        let recorder = fleet.take_recorder().unwrap().unwrap();
        // Simulated handoff (kill + restore keeps the recorder alive).
        let mut resumed = fleet.clone();
        resumed.start_recording(recorder).unwrap();
        drive(&mut resumed, 2..3);
        resumed.finish_recording().unwrap();
        let text = lines.lock().unwrap().join("\n");
        let trace = RecordedTrace::parse(&text).unwrap();
        let report = replay_trace(&trace, ReplayMode::Strict, &PolicyBands::default()).unwrap();
        assert!(report.passed());
        assert_eq!(report.rounds, 3);
    }
}
