//! The per-tenant online scaler: continuous ingestion, drift-triggered
//! rolling refits, and per-round scaling plans.
//!
//! [`OnlineScaler`] is the serving-loop counterpart of the offline
//! `RobustScalerPolicy`: instead of training once on a frozen trace, it
//! ingests arrivals incrementally into a bounded
//! [`CountRing`], refits the NHPP from
//! ring snapshots — on a schedule, or early when the observed traffic
//! drifts away from the forecast — and emits one scaling plan per round
//! through the zero-copy `plan_window_with` machinery.
//!
//! Determinism contract: all Monte Carlo randomness is drawn from the
//! scaler's own seeded RNG, so a fixed (seed, ingestion sequence, round
//! sequence) produces bit-identical plans regardless of how many worker
//! threads the surrounding fleet uses.

use crate::error::OnlineError;
use crate::replay::{model_fingerprint, RefitTrigger, ScalerEvent};
use crate::sharing::{ClusterKey, PlanCacheKey, SharingConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use robustscaler_core::{RobustScalerConfig, RobustScalerPipeline};
use robustscaler_nhpp::{
    Forecaster, ForecasterSnapshot, Intensity, NhppModel, PiecewiseConstantIntensity,
};
use robustscaler_scaling::{
    ArrivalSampler, DecisionConfig, PlannerConfig, PlannerScratch, PlannerState, PlanningRound,
    SequentialPlanner,
};
use robustscaler_timeseries::{CountRing, RingSnapshot};
use serde::{Deserialize, Serialize};

/// Configuration of an [`OnlineScaler`] on top of the offline pipeline
/// configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// The underlying pipeline configuration (bucket width, variant, ADMM,
    /// forecast, planner and Monte Carlo settings).
    pub pipeline: RobustScalerConfig,
    /// Ring capacity: how many Δt buckets of history are retained and used
    /// for refits (the rolling training window).
    pub window_buckets: usize,
    /// Complete buckets required before the first model fit.
    pub min_training_buckets: usize,
    /// Seconds between scheduled rolling refits.
    pub refit_interval: f64,
    /// Relative deviation between observed and forecast arrivals (over
    /// [`OnlineConfig::drift_window`]) that triggers an early refit.
    pub drift_threshold: f64,
    /// Seconds of recent history the drift detector compares against the
    /// forecast.
    pub drift_window: f64,
}

impl OnlineConfig {
    /// Serving defaults on top of a pipeline configuration: a 2-day rolling
    /// window, first fit after one hour of complete buckets, scheduled
    /// refits every 30 minutes, drift checked over the trailing 10 minutes.
    pub fn new(pipeline: RobustScalerConfig) -> Self {
        Self {
            pipeline,
            window_buckets: 2_880,
            min_training_buckets: 60,
            refit_interval: 1_800.0,
            drift_threshold: 0.5,
            drift_window: 600.0,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), OnlineError> {
        self.pipeline.validate()?;
        if self.min_training_buckets < 10 {
            return Err(OnlineError::InvalidConfig(
                "min_training_buckets must be >= 10 (the pipeline's training floor)",
            ));
        }
        if self.window_buckets < self.min_training_buckets {
            return Err(OnlineError::InvalidConfig(
                "window_buckets must be >= min_training_buckets",
            ));
        }
        if !(self.refit_interval > 0.0) || !self.refit_interval.is_finite() {
            return Err(OnlineError::InvalidConfig(
                "refit_interval must be finite and > 0",
            ));
        }
        if !(self.drift_threshold > 0.0) || !self.drift_threshold.is_finite() {
            return Err(OnlineError::InvalidConfig(
                "drift_threshold must be finite and > 0",
            ));
        }
        if !(self.drift_window > 0.0) || !self.drift_window.is_finite() {
            return Err(OnlineError::InvalidConfig(
                "drift_window must be finite and > 0",
            ));
        }
        Ok(())
    }
}

/// Serving-loop counters exposed for observability and tests.
///
/// `Deserialize` is hand-written: the counters persist inside
/// [`ScalerSnapshot`]s, and snapshots written before
/// [`OnlineStats::shared_planning_rounds`] or
/// [`OnlineStats::plan_cache_hits`] existed must load with those counters
/// at zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct OnlineStats {
    /// Arrivals accepted into the ring.
    pub arrivals_ingested: u64,
    /// Arrivals dropped (before the retained window).
    pub arrivals_dropped: u64,
    /// Model refits, total (first fit included).
    pub refits: u64,
    /// Refits triggered early by drift detection.
    pub drift_refits: u64,
    /// Planning rounds that ran the Monte Carlo optimizer.
    pub planning_rounds: u64,
    /// Planning rounds skipped by the cheap sufficiency check.
    pub skipped_rounds: u64,
    /// Planning rounds that errored (recorded by serving adapters such as
    /// `OnlinePolicy`, which swallow the error to keep serving but must not
    /// leave persistent failure invisible).
    pub failed_rounds: u64,
    /// Planning rounds (a subset of [`OnlineStats::planning_rounds`]) that
    /// planned against a cluster-shared arrival-sample matrix instead of
    /// sampling privately — the observability hook proving cross-tenant
    /// sharing actually engaged (see [`crate::sharing`]).
    pub shared_planning_rounds: u64,
    /// Rounds served by time-shifting the memoized previous plan instead of
    /// re-running Monte Carlo (Layer 2 plan reuse, see
    /// [`crate::sharing::PlanCacheKey`]). Deliberately *not* counted into
    /// [`OnlineStats::planning_rounds`]: a cache hit runs no optimizer and
    /// consumes no RNG.
    pub plan_cache_hits: u64,
}

impl Deserialize for OnlineStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let require = |key: &str| match v.get(key) {
            Some(value) => Deserialize::from_value(value),
            None => Err(serde::Error::msg(format!(
                "missing field `{key}` in OnlineStats"
            ))),
        };
        Ok(Self {
            arrivals_ingested: require("arrivals_ingested")?,
            arrivals_dropped: require("arrivals_dropped")?,
            refits: require("refits")?,
            drift_refits: require("drift_refits")?,
            planning_rounds: require("planning_rounds")?,
            skipped_rounds: require("skipped_rounds")?,
            failed_rounds: require("failed_rounds")?,
            shared_planning_rounds: match v.get("shared_planning_rounds") {
                Some(value) => Deserialize::from_value(value)?,
                None => 0,
            },
            plan_cache_hits: match v.get("plan_cache_hits") {
                Some(value) => Deserialize::from_value(value)?,
                None => 0,
            },
        })
    }
}

/// Format version written by [`OnlineScaler::snapshot`]; bump on any layout
/// change and keep [`OnlineScaler::restore`] reading versions still present
/// in fleet checkpoints.
pub const SCALER_SNAPSHOT_VERSION: u32 = 1;

/// A serializable, version-tagged copy of everything that makes an
/// [`OnlineScaler`] resume bit-identically: the ingestion ring, the
/// installed model (with its forecast configuration), the RNG's exact
/// position in its stream, the serving counters, the refit schedule, and
/// the forecast-cache anchor.
///
/// The forecast cache itself is *not* stored: it is a pure function of
/// (model, `cached_forecast_from`, horizon), so [`OnlineScaler::restore`]
/// recomputes it bit-identically from the anchor. Everything else the
/// scaler holds (pipeline, planner, scratch buffers) is either derived from
/// the configuration passed to `restore` or has no observable effect on
/// plans (scratch reuse is pinned bit-identical by the PR 2 proptests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalerSnapshot {
    /// Snapshot format version ([`SCALER_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The tenant's RNG seed (`config.pipeline.seed` at snapshot time), so
    /// a restored scaler re-snapshots identically.
    pub seed: u64,
    /// The ingestion ring.
    pub ring: RingSnapshot,
    /// The installed model and forecast configuration, if fitted.
    pub forecaster: Option<ForecasterSnapshot>,
    /// The RNG's full state — the Monte Carlo stream resumes exactly where
    /// the snapshotted scaler left it.
    pub rng_state: [u64; 4],
    /// Serving-loop counters.
    pub stats: OnlineStats,
    /// When the last refit ran; `None` encodes "never" (the in-memory
    /// sentinel is `-inf`, which JSON cannot carry).
    pub last_refit_at: Option<f64>,
    /// Start time of the cached forecast, if one was live; the cache is
    /// recomputed from this anchor on restore.
    pub cached_forecast_from: Option<f64>,
    /// The memoized last planning round (Layer 2 plan reuse), if one was
    /// live. Persisted — not rebuilt — because a cache hit consumes no RNG:
    /// a restored scaler that re-planned where the original would have hit
    /// would advance its Monte Carlo stream differently and diverge.
    /// Absent in snapshots written before plan reuse existed (they load
    /// with an empty cache, which is exact: those scalers never hit).
    pub plan_cache: Option<PlanCacheEntry>,
}

/// One memoized planning round: the content key it was planned under, the
/// planning instant it is anchored at, and the round itself (see
/// [`crate::sharing::PlanCacheKey`] for the reuse contract).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanCacheEntry {
    /// The content fingerprint of the round's planning inputs.
    pub key: PlanCacheKey,
    /// The planning instant the cached round was computed at. Hits shift
    /// the cached decisions by `now - this` — always from the original
    /// anchor, never hit-over-hit, so repeated hits stay bit-deterministic.
    pub now: f64,
    /// The cached planning round.
    pub round: PlanningRound,
}

/// Outcome of the first half of a planning round (see
/// [`OnlineScaler::prepare_round`]).
#[derive(Debug)]
pub(crate) enum RoundPrep {
    /// The sufficiency check skipped the Monte Carlo stage — the round is
    /// already finished.
    Skip(PlanningRound),
    /// The plan cache served the round (Layer 2 reuse): the memoized
    /// previous plan, time-shifted to this instant. No Monte Carlo ran and
    /// no RNG was consumed.
    Cached(PlanningRound),
    /// The Monte Carlo stage still has to run (privately via
    /// [`OnlineScaler::plan_prepared`], or against a shared cluster sampler
    /// via [`OnlineScaler::plan_shared`]).
    Plan,
}

/// A continuously serving, incrementally refitting scaler for one tenant.
#[derive(Debug, Clone)]
pub struct OnlineScaler {
    config: OnlineConfig,
    pipeline: RobustScalerPipeline,
    planner: SequentialPlanner,
    ring: CountRing,
    rng: StdRng,
    scratch: PlannerScratch,
    forecaster: Option<Forecaster>,
    cached_forecast: Option<PiecewiseConstantIntensity>,
    /// Anchor of the cached forecast (what `refresh_forecast` passed as
    /// `from`). Tracked explicitly — not derivable from `cached_until`
    /// without floating-point error — so snapshots can rebuild the cache
    /// bit-identically.
    cached_from: Option<f64>,
    cached_until: f64,
    last_refit_at: f64,
    stats: OnlineStats,
    /// Whether refits and installs are captured as trace events. Not part
    /// of snapshots: a restored scaler starts with tracing off and the
    /// recording driver re-enables it.
    tracing: bool,
    trace_events: Vec<ScalerEvent>,
    /// Layer 2 plan reuse: `Some(quantization)` when the round-over-round
    /// plan cache is armed. Runtime wiring like `tracing` — not persisted;
    /// a restored scaler starts with reuse off (its cache intact but
    /// unreachable) until the driver re-arms it.
    plan_reuse: Option<f64>,
    /// The memoized last planning round, when one is live.
    plan_cache: Option<PlanCacheEntry>,
    /// The key computed by the last [`OnlineScaler::prepare_round`] that
    /// missed, waiting for the planned round to populate the cache.
    plan_cache_pending: Option<(PlanCacheKey, f64)>,
    /// FNV-1a 64 fingerprint of the installed model (what
    /// [`PlanCacheKey`] pins); refreshed on every refit/install.
    model_print: Option<u64>,
}

impl OnlineScaler {
    /// Create a scaler whose bucket grid is anchored at `origin` (the
    /// tenant's serving start time). RNG seeding comes from the pipeline
    /// configuration's `seed`.
    pub fn new(config: OnlineConfig, origin: f64) -> Result<Self, OnlineError> {
        config.validate()?;
        let pipeline = RobustScalerPipeline::new(config.pipeline)?;
        let rule = config.pipeline.variant.to_rule(
            config.pipeline.mean_processing,
            config.pipeline.pending.mean(),
        )?;
        let planner = SequentialPlanner::new(PlannerConfig {
            decision: DecisionConfig {
                rule,
                pending: config.pipeline.pending,
                monte_carlo_samples: config.pipeline.monte_carlo_samples,
            },
            planning_interval: config.pipeline.planning_interval,
            max_decisions_per_round: config.pipeline.max_decisions_per_round,
        })?;
        let ring = CountRing::new(origin, config.pipeline.bucket_width, config.window_buckets)?;
        Ok(Self {
            rng: StdRng::seed_from_u64(config.pipeline.seed),
            config,
            pipeline,
            planner,
            ring,
            scratch: PlannerScratch::new(),
            forecaster: None,
            cached_forecast: None,
            cached_from: None,
            cached_until: f64::NEG_INFINITY,
            last_refit_at: f64::NEG_INFINITY,
            stats: OnlineStats::default(),
            tracing: false,
            trace_events: Vec::new(),
            plan_reuse: None,
            plan_cache: None,
            plan_cache_pending: None,
            model_print: None,
        })
    }

    /// [`OnlineScaler::new`] with an explicit RNG seed (the fleet derives a
    /// distinct deterministic seed per tenant).
    pub fn with_seed(
        mut config: OnlineConfig,
        origin: f64,
        seed: u64,
    ) -> Result<Self, OnlineError> {
        config.pipeline.seed = seed;
        Self::new(config, origin)
    }

    /// The configuration in use.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Serving-loop counters.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Record that a serving round errored and was skipped by the caller
    /// (adapters that swallow [`OnlineScaler::plan_round`] errors to keep
    /// serving call this so the failure stays observable).
    pub fn record_failed_round(&mut self) {
        self.stats.failed_rounds += 1;
    }

    /// The ingestion ring (observability: retained window, drop counters).
    pub fn ring(&self) -> &CountRing {
        &self.ring
    }

    /// Whether a model has been fitted yet.
    pub fn has_model(&self) -> bool {
        self.forecaster.is_some()
    }

    /// The current fitted model, if any.
    pub fn model(&self) -> Option<&NhppModel> {
        self.forecaster.as_ref().map(Forecaster::model)
    }

    /// When the last refit (or model install) ran; `None` before the first.
    pub fn last_refit_at(&self) -> Option<f64> {
        self.last_refit_at.is_finite().then_some(self.last_refit_at)
    }

    /// Enable or disable trace-event capture. Enabling clears any stale
    /// events; disabling leaves buffered events intact so a recorder being
    /// detached can still flush them.
    pub fn set_tracing(&mut self, on: bool) {
        if on && !self.tracing {
            self.trace_events.clear();
        }
        self.tracing = on;
    }

    /// Drain the trace events (refits with their trigger, model installs)
    /// captured since the last call. Empty unless tracing is enabled.
    pub fn take_trace_events(&mut self) -> Vec<ScalerEvent> {
        std::mem::take(&mut self.trace_events)
    }

    /// Arm Layer 2 plan reuse (the round-over-round plan cache) at the
    /// given geometric forecast tolerance — see
    /// [`crate::sharing::PlanCacheKey`] for the contract.
    ///
    /// Runtime wiring like tracing: not persisted in snapshots. Arming
    /// keeps any cache loaded by [`OnlineScaler::restore`], so a restored
    /// and re-armed scaler continues bit-identically to one that never
    /// stopped.
    pub fn enable_plan_reuse(&mut self, quantization: f64) -> Result<(), OnlineError> {
        if !quantization.is_finite() || quantization <= 0.0 {
            return Err(OnlineError::InvalidConfig(
                "plan reuse quantization must be finite and > 0",
            ));
        }
        self.plan_reuse = Some(quantization);
        Ok(())
    }

    /// Disarm plan reuse and drop the memoized round: after this call no
    /// cached plan is reachable, by construction.
    pub fn disable_plan_reuse(&mut self) {
        self.plan_reuse = None;
        self.plan_cache = None;
        self.plan_cache_pending = None;
    }

    /// The armed plan-reuse tolerance, if any.
    pub fn plan_reuse(&self) -> Option<f64> {
        self.plan_reuse
    }

    /// Ingest one arrival timestamp.
    pub fn ingest(&mut self, arrival: f64) {
        if self.ring.observe(arrival) {
            self.stats.arrivals_ingested += 1;
        } else {
            self.stats.arrivals_dropped += 1;
        }
    }

    /// Ingest a batch of arrival timestamps through the ring's bulk append.
    ///
    /// This is the serving fast path the arrival queues drain into: one
    /// [`CountRing::observe_batch`] call per batch instead of a per-arrival
    /// `observe`, with the acceptance/drop accounting amortized to two
    /// counter updates. The outcome — ring contents, counters, and every
    /// drift/refit decision taken at the next round boundary — is
    /// bit-identical to calling [`OnlineScaler::ingest`] on each element in
    /// order (the per-arrival loop is kept as the reference implementation
    /// in the tests, and the equivalence is proptest-pinned in
    /// `tests/online_props.rs`).
    pub fn ingest_batch(&mut self, arrivals: &[f64]) {
        let accepted = self.ring.observe_batch(arrivals);
        self.stats.arrivals_ingested += accepted as u64;
        self.stats.arrivals_dropped += (arrivals.len() - accepted) as u64;
    }

    /// Install an externally fitted model (warm start from persisted state,
    /// or synthetic models in benches) without consuming ring history.
    pub fn install_model(&mut self, model: NhppModel, now: f64) -> Result<(), OnlineError> {
        if self.tracing {
            self.trace_events.push(ScalerEvent::Install {
                at: now,
                fingerprint: model_fingerprint(&model),
                model: model.clone(),
            });
        }
        let print = fingerprint64(&model);
        match &mut self.forecaster {
            Some(f) => f.refresh(model),
            None => {
                self.forecaster = Some(
                    Forecaster::new(model, self.config.pipeline.forecast)
                        .map_err(robustscaler_core::CoreError::from)?,
                );
            }
        }
        self.cached_forecast = None;
        self.cached_from = None;
        self.cached_until = f64::NEG_INFINITY;
        self.invalidate_plan_cache(print);
        self.last_refit_at = now;
        Ok(())
    }

    /// Refit the NHPP from the ring's complete buckets at `now` and swap it
    /// into the forecaster.
    pub fn refit_now(&mut self, now: f64) -> Result<(), OnlineError> {
        self.refit_with_trigger(now, RefitTrigger::Explicit)
    }

    /// Forced refit as a supervised probe's recovery action. Identical to
    /// [`OnlineScaler::refit_now`] except the trace event carries the
    /// `Probe` trigger, so replay validates it in-round instead of
    /// re-executing it as a driver action.
    pub(crate) fn probe_refit(&mut self, now: f64) -> Result<(), OnlineError> {
        self.refit_with_trigger(now, RefitTrigger::Probe)
    }

    fn refit_with_trigger(&mut self, now: f64, trigger: RefitTrigger) -> Result<(), OnlineError> {
        self.ring.advance_to(now);
        let snapshot = self.ring.series_complete(now)?;
        let trained = self.pipeline.train_on_counts(snapshot)?;
        if self.tracing {
            self.trace_events.push(ScalerEvent::Refit {
                at: now,
                trigger,
                fingerprint: model_fingerprint(&trained.model),
            });
        }
        let print = fingerprint64(&trained.model);
        match &mut self.forecaster {
            Some(f) => f.refresh(trained.model),
            None => self.forecaster = Some(trained.forecaster(self.pipeline.config())?),
        }
        self.cached_forecast = None;
        self.cached_from = None;
        self.cached_until = f64::NEG_INFINITY;
        self.invalidate_plan_cache(print);
        self.last_refit_at = now;
        self.stats.refits += 1;
        Ok(())
    }

    /// Model changed (refit, drift refit, install, restore): the memoized
    /// plan and any pending key are stale by definition — drop them and pin
    /// the new model fingerprint future keys are built from.
    fn invalidate_plan_cache(&mut self, print: u64) {
        self.plan_cache = None;
        self.plan_cache_pending = None;
        self.model_print = Some(print);
    }

    /// Refit if due: first fit once enough complete buckets exist, then on
    /// the refit schedule, then early when drift is detected. Returns
    /// whether a refit ran.
    pub fn maybe_refit(&mut self, now: f64) -> Result<bool, OnlineError> {
        self.ring.advance_to(now);
        let complete = self.ring.complete_len(now);
        if self.forecaster.is_none() {
            if complete >= self.config.min_training_buckets {
                self.refit_with_trigger(now, RefitTrigger::First)?;
                return Ok(true);
            }
            return Ok(false);
        }
        if complete >= self.config.min_training_buckets.max(10) {
            if now - self.last_refit_at >= self.config.refit_interval {
                self.refit_with_trigger(now, RefitTrigger::Scheduled)?;
                return Ok(true);
            }
            if self.drift_detected(now) {
                self.refit_with_trigger(now, RefitTrigger::Drift)?;
                self.stats.drift_refits += 1;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Compare observed arrivals over the trailing drift window against the
    /// forecast's expectation; Poisson noise gets a 3σ allowance so quiet
    /// tenants don't refit on every planning tick.
    fn drift_detected(&self, now: f64) -> bool {
        let Some(forecaster) = &self.forecaster else {
            return false;
        };
        let dt = self.config.pipeline.bucket_width;
        let hi = self.ring.start() + self.ring.complete_len(now) as f64 * dt;
        let lo = (now - self.config.drift_window)
            .max(self.ring.start())
            .max(forecaster.model().start());
        if hi - lo < 2.0 * dt {
            return false;
        }
        let observed = self.ring.count_between(lo, hi);
        let Ok(forecast) = forecaster.forecast(lo, hi - lo) else {
            return false;
        };
        let expected = forecast.integrated(lo, hi);
        (observed - expected).abs()
            > self.config.drift_threshold * expected + 3.0 * (expected + 1.0).sqrt()
    }

    fn refresh_forecast(&mut self, now: f64) -> Result<(), OnlineError> {
        let forecaster = self.forecaster.as_ref().ok_or(OnlineError::NotTrained)?;
        let needs_refresh = self.cached_forecast.is_none()
            || now + self.config.pipeline.planning_interval > self.cached_until;
        if needs_refresh {
            let from = now.max(forecaster.model().start());
            let forecast = forecaster
                .forecast(from, self.config.pipeline.forecast_horizon)
                .map_err(robustscaler_core::CoreError::from)?;
            self.cached_from = Some(from);
            self.cached_until = from + self.config.pipeline.forecast_horizon;
            self.cached_forecast = Some(forecast);
        }
        Ok(())
    }

    /// Cheap sufficiency check mirroring the offline policy: skip the Monte
    /// Carlo planning when the instances already on the way clearly cover
    /// everything the forecast expects within the window plus startup lead.
    fn clearly_covered(&self, now: f64, covered: usize) -> bool {
        let Some(forecast) = &self.cached_forecast else {
            return false;
        };
        let lead = self.config.pipeline.pending.mean().max(1.0);
        let horizon_end = now + self.config.pipeline.planning_interval + 2.0 * lead;
        let expected = forecast.integrated(now, horizon_end);
        let slack = 4.0 * (expected + 1.0).sqrt() + 2.0;
        (covered as f64) >= expected + slack
    }

    /// How long this scaler can sleep from `now` before anything about its
    /// rounds could change — the quiescence predicate behind the fleet's
    /// hot/cold residency tiers.
    ///
    /// Returns `Some(wake_at)` when the tenant is quiescent: the forecast
    /// expects no arrivals (≤ `epsilon` per planning window, with startup
    /// lead) until `wake_at`, and no refit is due before it either. The
    /// fleet may skip this tenant's rounds entirely until `wake_at` (or an
    /// actual arrival, whichever is first) without changing any future
    /// output. `Some(f64::INFINITY)` means nothing will ever happen without
    /// external input — the untrained, never-fed case. `None` means the
    /// tenant is active now (expected arrivals in the upcoming window, a
    /// forecast failure, or a wake deadline that has already passed).
    ///
    /// The method is `&self` and touches no mutable state: calling it never
    /// perturbs the determinism contract.
    pub fn quiescence_horizon(&self, now: f64, epsilon: f64) -> Option<f64> {
        let Some(forecaster) = &self.forecaster else {
            // No model: nothing to plan with. A tenant that has never seen
            // an arrival stays NotTrained forever without input; one with
            // buffered history may still reach its first fit as time passes.
            return (self.stats.arrivals_ingested == 0).then_some(f64::INFINITY);
        };
        // The scheduled refit is a state change even with an empty ring, so
        // quiescence can never outlast it.
        let refit_due = self.last_refit_at + self.config.refit_interval;
        if refit_due <= now {
            return None;
        }
        let lead = self.config.pipeline.pending.mean().max(1.0);
        let window = self.config.pipeline.planning_interval + 2.0 * lead;
        let from = now.max(forecaster.model().start());
        let Ok(forecast) = forecaster.forecast(from, self.config.pipeline.forecast_horizon) else {
            return None;
        };
        let horizon_end = from + self.config.pipeline.forecast_horizon;
        // Scan forward window by window for the first expected activity;
        // wake one window early so the tenant is resident (forecast warm,
        // coverage planned) before the arrivals land.
        let mut k: u64 = 0;
        loop {
            let lo = now + k as f64 * window;
            if lo >= horizon_end {
                // Nothing expected within the whole forecast horizon; sleep
                // until the scheduled refit extends it.
                return Some(refit_due);
            }
            let clipped_lo = lo.max(from);
            let hi = (lo + window).min(horizon_end);
            let expected = if hi > clipped_lo {
                forecast.integrated(clipped_lo, hi)
            } else {
                0.0
            };
            if expected > epsilon {
                if k == 0 {
                    return None;
                }
                let wake_at = (now + (k - 1) as f64 * window).min(refit_due);
                return (wake_at > now).then_some(wake_at);
            }
            k += 1;
        }
    }

    /// Run one serving round at `now`: advance the ring, refit if due,
    /// refresh the forecast, and plan the creations that must start within
    /// the next planning window. `covered` is the number of upcoming
    /// arrivals already covered by scheduled/pending/ready instances.
    pub fn plan_round(&mut self, now: f64, covered: usize) -> Result<PlanningRound, OnlineError> {
        match self.prepare_round(now, covered)? {
            RoundPrep::Skip(round) | RoundPrep::Cached(round) => Ok(round),
            RoundPrep::Plan => self.plan_prepared(now, covered),
        }
    }

    /// First half of [`OnlineScaler::plan_round`]: advance the ring, refit
    /// if due, refresh the forecast, and run the cheap sufficiency check.
    ///
    /// Returns [`RoundPrep::Skip`] with the finished (empty) round when the
    /// Monte Carlo stage can be skipped, or [`RoundPrep::Plan`] when the
    /// caller must follow up with [`OnlineScaler::plan_prepared`] (or the
    /// shared-sampler pair [`OnlineScaler::cluster_key`] +
    /// [`OnlineScaler::plan_shared`]). `prepare_round` followed immediately
    /// by `plan_prepared` is bit-identical to `plan_round`; the split exists
    /// so a fleet can interleave the phases across tenants and batch the
    /// expensive sampling by forecast cluster.
    pub(crate) fn prepare_round(
        &mut self,
        now: f64,
        covered: usize,
    ) -> Result<RoundPrep, OnlineError> {
        self.maybe_refit(now)?;
        self.refresh_forecast(now)?;
        let forecast = self
            .cached_forecast
            .as_ref()
            .expect("refresh_forecast populated the cache");
        if self.clearly_covered(now, covered) {
            self.stats.skipped_rounds += 1;
            let window_end = now + self.config.pipeline.planning_interval;
            return Ok(RoundPrep::Skip(PlanningRound {
                decisions: Vec::new(),
                expected_arrivals_in_window: forecast.integrated(now, window_end),
            }));
        }
        // Layer 2 plan reuse: when the content key of this round's inputs
        // matches the memoized round's, serve the cached plan time-shifted
        // to `now` (no Monte Carlo, no RNG). A miss leaves the key pending
        // so the planned round populates the cache.
        self.plan_cache_pending = None;
        if let Some(quantization) = self.plan_reuse {
            if let Some(key) = self.plan_cache_key(now, covered, quantization) {
                let hit = self.plan_cache.as_ref().filter(|e| e.key == key).map(|e| {
                    let forecast = self
                        .cached_forecast
                        .as_ref()
                        .expect("refresh_forecast populated the cache");
                    let window_end = now + self.config.pipeline.planning_interval;
                    e.round
                        .shifted_by(now - e.now, forecast.integrated(now, window_end))
                });
                if let Some(round) = hit {
                    self.stats.plan_cache_hits += 1;
                    return Ok(RoundPrep::Cached(round));
                }
                self.plan_cache_pending = Some((key, now));
            }
        }
        Ok(RoundPrep::Plan)
    }

    /// The Layer 2 content key of a round's planning inputs; `None` when no
    /// forecast/model is live or the probe geometry degenerates (the round
    /// then plans normally and caches nothing).
    fn plan_cache_key(&self, now: f64, covered: usize, quantization: f64) -> Option<PlanCacheKey> {
        let forecast = self.cached_forecast.as_ref()?;
        let model = self.model_print?;
        let decision = &self.planner.config().decision;
        PlanCacheKey::from_forecast(
            forecast,
            model,
            now,
            self.config.pipeline.planning_interval,
            &decision.rule,
            &decision.pending,
            decision.monte_carlo_samples,
            covered,
            quantization,
        )
    }

    /// Populate the plan cache from a just-planned round when a key is
    /// pending (reuse armed and this round's `prepare_round` missed).
    fn store_plan_cache(&mut self, round: &PlanningRound) {
        if self.plan_reuse.is_some() {
            if let Some((key, at)) = self.plan_cache_pending.take() {
                self.plan_cache = Some(PlanCacheEntry {
                    key,
                    now: at,
                    round: round.clone(),
                });
            }
        }
    }

    /// Second half of [`OnlineScaler::plan_round`]: the private Monte Carlo
    /// planning stage. Must follow a [`RoundPrep::Plan`] from
    /// [`OnlineScaler::prepare_round`] at the same `now`.
    pub(crate) fn plan_prepared(
        &mut self,
        now: f64,
        covered: usize,
    ) -> Result<PlanningRound, OnlineError> {
        let forecast = self
            .cached_forecast
            .as_ref()
            .expect("prepare_round refreshed the forecast");
        let round = self.planner.plan_window_with(
            forecast,
            now,
            PlannerState { covered },
            &mut self.rng,
            &mut self.scratch,
        )?;
        self.stats.planning_rounds += 1;
        self.store_plan_cache(&round);
        Ok(round)
    }

    /// Fingerprint this tenant's current forecast for cross-tenant shared
    /// sampling. `None` when sharing is disabled, no forecast is cached, or
    /// the probe geometry degenerates — the tenant then plans privately.
    pub(crate) fn cluster_key(&self, now: f64, sharing: &SharingConfig) -> Option<ClusterKey> {
        if !sharing.enabled {
            return None;
        }
        let forecast = self.cached_forecast.as_ref()?;
        let decision = &self.planner.config().decision;
        ClusterKey::from_forecast(
            forecast,
            now,
            self.config.pipeline.planning_interval,
            &decision.rule,
            &decision.pending,
            decision.monte_carlo_samples,
            sharing.quantization,
        )
    }

    /// How many arrival rows this tenant wants from a shared cluster matrix
    /// at `now`.
    ///
    /// Deliberately more generous than the private planner's initial
    /// horizon guess (30% headroom plus a constant, against 5% plus a
    /// constant): a shared matrix cannot be extended per tenant, and a
    /// shortfall forces a full private replan instead of a cheap
    /// `extend_horizon`. Never exceeds the hard per-round decision ceiling.
    pub(crate) fn shared_sampling_demand(&self, now: f64, covered: usize) -> usize {
        let config = self.planner.config();
        let cap = covered + config.max_decisions_per_round;
        let lead = config.decision.pending.mean();
        let window_end = now + config.planning_interval;
        let expected = self
            .cached_forecast
            .as_ref()
            .map(|forecast| forecast.integrated(now, window_end + lead))
            .unwrap_or(0.0);
        (covered + (1.3 * expected).ceil() as usize + 8).min(cap)
    }

    /// Attempt the second half of a round against a shared cluster sampler.
    ///
    /// `Ok(Some(round))` completes the round (counted as a planning round);
    /// `Ok(None)` means the shared matrix could not serve this tenant
    /// (origin/replication mismatch or horizon shortfall) and the caller
    /// must fall back to [`OnlineScaler::plan_prepared`].
    pub(crate) fn plan_shared(
        &mut self,
        now: f64,
        covered: usize,
        sampler: &ArrivalSampler,
    ) -> Result<Option<PlanningRound>, OnlineError> {
        let forecast = self
            .cached_forecast
            .as_ref()
            .expect("prepare_round refreshed the forecast");
        let round = self.planner.plan_window_shared(
            forecast,
            sampler,
            now,
            PlannerState { covered },
            &mut self.rng,
            &mut self.scratch,
        )?;
        if let Some(round) = &round {
            self.stats.planning_rounds += 1;
            self.stats.shared_planning_rounds += 1;
            self.store_plan_cache(round);
        }
        Ok(round)
    }

    /// Adopt a plan-group leader's decision schedule (Layer 1 decision
    /// dedup). Must follow a [`RoundPrep::Plan`] from
    /// [`OnlineScaler::prepare_round`] at the same `now`, and is only sound
    /// when this tenant shares the leader's [`crate::sharing::PlanKey`]
    /// under a deterministic pending model: the decision loop then consumes
    /// no RNG and its output depends only on (shared sampler, rule,
    /// pending, covered), all pinned equal by the key — so adopting is
    /// bit-identical to running [`OnlineScaler::plan_shared`] ourselves,
    /// and the bookkeeping (counters, plan-cache population) mirrors it
    /// exactly. Only `expected_arrivals_in_window` is ours: it comes from
    /// this tenant's own forecast, which the plan key deliberately does not
    /// pin.
    pub(crate) fn adopt_shared(&mut self, now: f64, leader: &PlanningRound) -> PlanningRound {
        let forecast = self
            .cached_forecast
            .as_ref()
            .expect("prepare_round refreshed the forecast");
        let window_end = now + self.config.pipeline.planning_interval;
        let round = leader.adopted_with_expected(forecast.integrated(now, window_end));
        self.stats.planning_rounds += 1;
        self.stats.shared_planning_rounds += 1;
        self.store_plan_cache(&round);
        round
    }

    /// Capture the scaler's full serving state as a serializable,
    /// version-tagged [`ScalerSnapshot`].
    ///
    /// The contract (pinned by the persistence proptests): restoring the
    /// snapshot with the same configuration and continuing — any
    /// interleaving of `ingest`/`plan_round` — produces bit-identical
    /// results to the scaler that never stopped.
    pub fn snapshot(&self) -> ScalerSnapshot {
        ScalerSnapshot {
            version: SCALER_SNAPSHOT_VERSION,
            seed: self.config.pipeline.seed,
            ring: self.ring.snapshot(),
            forecaster: self.forecaster.as_ref().map(Forecaster::snapshot),
            rng_state: self.rng.state(),
            stats: self.stats,
            last_refit_at: self.last_refit_at.is_finite().then_some(self.last_refit_at),
            cached_forecast_from: self.cached_from,
            plan_cache: self.plan_cache.clone(),
        }
    }

    /// Rebuild a scaler from a [`ScalerSnapshot`] and the (shared, static)
    /// configuration.
    ///
    /// The snapshot carries all per-tenant mutable state — ring, model, RNG
    /// position, counters, refit deadline, forecast-cache anchor — while
    /// `config` carries everything reconstructable: pipeline, planner and
    /// scratch buffers are rebuilt from it. The snapshot's grid must match
    /// the configuration (bucket width, window capacity); a mismatch is
    /// rejected rather than silently re-binning history.
    pub fn restore(snapshot: ScalerSnapshot, config: OnlineConfig) -> Result<Self, OnlineError> {
        if snapshot.version != SCALER_SNAPSHOT_VERSION {
            return Err(OnlineError::UnsupportedSnapshotVersion {
                found: snapshot.version,
                supported: SCALER_SNAPSHOT_VERSION,
            });
        }
        let mut scaler = Self::with_seed(config, snapshot.ring.origin, snapshot.seed)?;
        let ring = snapshot.ring.restore()?;
        if ring.bucket_width() != scaler.config.pipeline.bucket_width {
            return Err(OnlineError::InvalidConfig(
                "snapshot ring bucket width differs from the configuration",
            ));
        }
        if ring.capacity() != scaler.config.window_buckets {
            return Err(OnlineError::InvalidConfig(
                "snapshot ring capacity differs from the configured window",
            ));
        }
        scaler.ring = ring;
        scaler.forecaster = match snapshot.forecaster {
            Some(envelope) => Some(
                envelope
                    .restore()
                    .map_err(robustscaler_core::CoreError::from)?,
            ),
            None => None,
        };
        scaler.rng = StdRng::from_state(snapshot.rng_state);
        scaler.stats = snapshot.stats;
        scaler.last_refit_at = snapshot.last_refit_at.unwrap_or(f64::NEG_INFINITY);
        if let Some(from) = snapshot.cached_forecast_from {
            let forecaster = scaler
                .forecaster
                .as_ref()
                .ok_or(OnlineError::InvalidConfig(
                    "snapshot has a cached forecast anchor but no model",
                ))?;
            let forecast = forecaster
                .forecast(from, scaler.config.pipeline.forecast_horizon)
                .map_err(robustscaler_core::CoreError::from)?;
            scaler.cached_from = Some(from);
            scaler.cached_until = from + scaler.config.pipeline.forecast_horizon;
            scaler.cached_forecast = Some(forecast);
        }
        // The model fingerprint is recomputed rather than persisted: the
        // restored model is bit-identical to the snapshotted one (the
        // persistence proptests pin this), so its serialization — and hence
        // the fingerprint every future plan-cache key embeds — matches what
        // the uninterrupted scaler would use. The memoized round itself is
        // restored verbatim; it stays unreachable until the driver re-arms
        // plan reuse.
        scaler.model_print = scaler.forecaster.as_ref().map(|f| fingerprint64(f.model()));
        scaler.plan_cache = snapshot.plan_cache;
        Ok(scaler)
    }
}

/// FNV-1a 64 over a model's JSON — the raw form of
/// [`crate::replay::model_fingerprint`], kept numeric for
/// [`PlanCacheKey`]'s fixed-width fields.
fn fingerprint64(model: &NhppModel) -> u64 {
    let json = serde_json::to_string(model).expect("an NhppModel always serializes");
    crate::checkpoint::fnv1a64(json.as_bytes())
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use robustscaler_core::RobustScalerVariant;

    pub(crate) fn fast_config() -> OnlineConfig {
        let mut pipeline =
            RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability {
                target: 0.9,
            });
        pipeline.bucket_width = 10.0;
        pipeline.periodicity_aggregation = 2;
        pipeline.admm.max_iterations = 40;
        pipeline.monte_carlo_samples = 120;
        pipeline.planning_interval = 20.0;
        pipeline.mean_processing = 5.0;
        pipeline.forecast_horizon = 600.0;
        pipeline.seed = 11;
        let mut config = OnlineConfig::new(pipeline);
        config.window_buckets = 360;
        config.min_training_buckets = 30;
        config.refit_interval = 600.0;
        config
    }

    /// One arrival every `gap` seconds over `[0, duration)`.
    fn uniform_arrivals(duration: f64, gap: f64) -> Vec<f64> {
        let n = (duration / gap) as usize;
        (0..n).map(|i| i as f64 * gap).collect()
    }

    /// Reference ingestion: the per-arrival loop `ingest_batch` replaced.
    /// Kept only as the ground truth the bulk path is checked against.
    pub(crate) fn ingest_reference(scaler: &mut OnlineScaler, arrivals: &[f64]) {
        for &t in arrivals {
            scaler.ingest(t);
        }
    }

    #[test]
    fn ingest_batch_is_bit_identical_to_the_per_arrival_loop() {
        let config = fast_config();
        let mut bulk = OnlineScaler::with_seed(config, 0.0, 3).unwrap();
        let mut reference = OnlineScaler::with_seed(config, 0.0, 3).unwrap();
        // Sorted traffic, a duplicate burst, an out-of-order straggler, a
        // pre-origin drop and a corrupt timestamp.
        let mut arrivals = uniform_arrivals(900.0, 4.0);
        arrivals.extend_from_slice(&[650.0, 650.0, 650.0, 10.0, -5.0, f64::INFINITY, 901.0]);
        bulk.ingest_batch(&arrivals);
        ingest_reference(&mut reference, &arrivals);
        assert_eq!(bulk.stats(), reference.stats());
        assert_eq!(bulk.ring(), reference.ring());
        assert_eq!(
            bulk.plan_round(910.0, 0).unwrap(),
            reference.plan_round(910.0, 0).unwrap()
        );
    }

    #[test]
    fn config_validation_catches_bad_fields() {
        let base = fast_config();
        assert!(base.validate().is_ok());
        let mut c = base;
        c.min_training_buckets = 5;
        assert!(c.validate().is_err());
        let mut c = base;
        c.window_buckets = c.min_training_buckets - 1;
        assert!(c.validate().is_err());
        let mut c = base;
        c.refit_interval = 0.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.drift_threshold = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = base;
        c.drift_window = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn plans_fail_until_enough_history_then_succeed() {
        let config = fast_config();
        let mut scaler = OnlineScaler::new(config, 0.0).unwrap();
        assert!(!scaler.has_model());
        assert!(matches!(
            scaler.plan_round(50.0, 0),
            Err(OnlineError::NotTrained)
        ));
        // Ingest 10 minutes of steady traffic (1 query / 5 s): enough for
        // the 30-bucket (300 s) first fit.
        scaler.ingest_batch(&uniform_arrivals(600.0, 5.0));
        let round = scaler.plan_round(600.0, 0).unwrap();
        assert!(scaler.has_model());
        assert_eq!(scaler.stats().refits, 1);
        // 0.2 QPS over a 20 s window: ~4 expected arrivals, all needing
        // creations (13 s pending lead).
        assert!((round.expected_arrivals_in_window - 4.0).abs() < 1.0);
        assert!(!round.decisions.is_empty());
        assert_eq!(scaler.stats().planning_rounds, 1);
    }

    #[test]
    fn scheduled_refits_follow_the_interval() {
        let config = fast_config();
        let mut scaler = OnlineScaler::new(config, 0.0).unwrap();
        scaler.ingest_batch(&uniform_arrivals(2_000.0, 5.0));
        scaler.plan_round(400.0, 0).unwrap();
        assert_eq!(scaler.stats().refits, 1);
        // Within the refit interval: no refit.
        scaler.plan_round(500.0, 0).unwrap();
        assert_eq!(scaler.stats().refits, 1);
        // Past the 600 s interval: scheduled refit.
        scaler.plan_round(1_100.0, 0).unwrap();
        assert_eq!(scaler.stats().refits, 2);
        assert_eq!(scaler.stats().drift_refits, 0);
    }

    #[test]
    fn drift_triggers_an_early_refit() {
        let mut config = fast_config();
        config.refit_interval = 1e9; // disable scheduled refits
        config.drift_window = 200.0;
        let mut scaler = OnlineScaler::new(config, 0.0).unwrap();
        // Train on quiet traffic (0.2 QPS)...
        scaler.ingest_batch(&uniform_arrivals(600.0, 5.0));
        scaler.plan_round(600.0, 0).unwrap();
        assert_eq!(scaler.stats().refits, 1);
        // ...then a 10× surge. The drift detector must force a refit.
        let surge: Vec<f64> = (0..1_000).map(|i| 600.0 + i as f64 * 0.5).collect();
        scaler.ingest_batch(&surge);
        scaler.plan_round(1_100.0, 0).unwrap();
        assert_eq!(scaler.stats().refits, 2);
        assert_eq!(scaler.stats().drift_refits, 1);
        // The refreshed forecast tracks the surge level (2 QPS), not the
        // trained 0.2 QPS.
        let round = scaler.plan_round(1_120.0, 0).unwrap();
        assert!(
            round.expected_arrivals_in_window > 20.0,
            "expected {} arrivals",
            round.expected_arrivals_in_window
        );
    }

    #[test]
    fn steady_traffic_does_not_drift_refit() {
        let mut config = fast_config();
        config.refit_interval = 1e9;
        let mut scaler = OnlineScaler::new(config, 0.0).unwrap();
        scaler.ingest_batch(&uniform_arrivals(3_000.0, 5.0));
        for round in 0..20 {
            scaler.plan_round(600.0 + 20.0 * round as f64, 3).unwrap();
        }
        assert_eq!(scaler.stats().refits, 1);
        assert_eq!(scaler.stats().drift_refits, 0);
    }

    #[test]
    fn clearly_covered_rounds_skip_the_optimizer() {
        let config = fast_config();
        let mut scaler = OnlineScaler::new(config, 0.0).unwrap();
        scaler.ingest_batch(&uniform_arrivals(600.0, 5.0));
        // ~12 expected arrivals to the lead horizon; 1000 covered is clearly
        // enough.
        let round = scaler.plan_round(600.0, 1_000).unwrap();
        assert!(round.decisions.is_empty());
        assert_eq!(scaler.stats().skipped_rounds, 1);
        assert_eq!(scaler.stats().planning_rounds, 0);
    }

    #[test]
    fn fixed_seed_runs_are_deterministic() {
        let run = || {
            let mut scaler = OnlineScaler::with_seed(fast_config(), 0.0, 99).unwrap();
            scaler.ingest_batch(&uniform_arrivals(900.0, 4.0));
            let mut rounds = Vec::new();
            for i in 0..5 {
                rounds.push(scaler.plan_round(900.0 + 20.0 * i as f64, i).unwrap());
            }
            rounds
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let config = fast_config();
        let mut live = OnlineScaler::with_seed(config, 0.0, 77).unwrap();
        live.ingest_batch(&uniform_arrivals(900.0, 4.0));
        live.plan_round(900.0, 0).unwrap();
        // Mid-run snapshot, through JSON like a real checkpoint.
        let json = serde_json::to_string(&live.snapshot()).unwrap();
        let snap: ScalerSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = OnlineScaler::restore(snap, config).unwrap();
        assert_eq!(restored.stats(), live.stats());
        // Continue both with the same ingestion + rounds: identical output.
        for i in 0..4 {
            let now = 920.0 + 20.0 * i as f64;
            let extra: Vec<f64> = (0..10).map(|k| now - 20.0 + 2.0 * k as f64).collect();
            live.ingest_batch(&extra);
            restored.ingest_batch(&extra);
            assert_eq!(
                live.plan_round(now, i).unwrap(),
                restored.plan_round(now, i).unwrap()
            );
        }
        assert_eq!(live.stats(), restored.stats());
    }

    #[test]
    fn snapshot_before_first_fit_restores_cold_state() {
        let config = fast_config();
        let mut scaler = OnlineScaler::new(config, 0.0).unwrap();
        scaler.ingest_batch(&uniform_arrivals(100.0, 5.0));
        let snap = scaler.snapshot();
        assert!(snap.forecaster.is_none());
        assert!(snap.last_refit_at.is_none());
        assert!(snap.cached_forecast_from.is_none());
        let mut restored = OnlineScaler::restore(snap, config).unwrap();
        assert!(!restored.has_model());
        assert!(matches!(
            restored.plan_round(100.0, 0),
            Err(OnlineError::NotTrained)
        ));
        // Both reach the first fit at the same instant with the same model.
        scaler.ingest_batch(&uniform_arrivals(600.0, 5.0));
        restored.ingest_batch(&uniform_arrivals(600.0, 5.0));
        assert_eq!(
            scaler.plan_round(600.0, 0).unwrap(),
            restored.plan_round(600.0, 0).unwrap()
        );
    }

    #[test]
    fn restore_rejects_version_and_config_mismatches() {
        let config = fast_config();
        let mut scaler = OnlineScaler::new(config, 0.0).unwrap();
        scaler.ingest_batch(&uniform_arrivals(600.0, 5.0));
        scaler.plan_round(600.0, 0).unwrap();
        let snap = scaler.snapshot();
        let mut bad = snap.clone();
        bad.version += 1;
        assert!(matches!(
            OnlineScaler::restore(bad, config),
            Err(OnlineError::UnsupportedSnapshotVersion { .. })
        ));
        // Bucket-width mismatch: restoring under a different grid would
        // silently re-bin history; it must be rejected.
        let mut other = config;
        other.pipeline.bucket_width = config.pipeline.bucket_width * 2.0;
        assert!(OnlineScaler::restore(snap.clone(), other).is_err());
        let mut other = config;
        other.window_buckets = config.window_buckets + 1;
        assert!(OnlineScaler::restore(snap, other).is_err());
    }

    fn flat_model(rate: f64) -> NhppModel {
        NhppModel::from_log_rates(0.0, 10.0, vec![rate.ln(); 60], None).unwrap()
    }

    #[test]
    fn plan_cache_hits_shift_plans_in_steady_state() {
        let config = fast_config();
        let mut reuse = OnlineScaler::with_seed(config, 0.0, 21).unwrap();
        reuse.install_model(flat_model(0.5), 600.0).unwrap();
        reuse.enable_plan_reuse(0.05).unwrap();
        let first = reuse.plan_round(600.0, 0).unwrap();
        assert!(!first.decisions.is_empty());
        assert_eq!(reuse.stats().planning_rounds, 1);
        assert_eq!(reuse.stats().plan_cache_hits, 0);
        // Steady state: same model, same covered count, flat forecast — the
        // next rounds hit and are the first plan translated by the spacing.
        for i in 1..4u64 {
            let dt = 20.0 * i as f64;
            let round = reuse.plan_round(600.0 + dt, 0).unwrap();
            assert_eq!(reuse.stats().planning_rounds, 1, "round {i} must hit");
            assert_eq!(reuse.stats().plan_cache_hits, i);
            assert_eq!(round.decisions.len(), first.decisions.len());
            for (a, b) in first.decisions.iter().zip(&round.decisions) {
                assert_eq!(b.arrival_index, a.arrival_index);
                assert_eq!(b.creation_time.to_bits(), (a.creation_time + dt).to_bits());
            }
        }
    }

    #[test]
    fn plan_cache_misses_on_covered_change_and_invalidates_on_model_change() {
        let config = fast_config();
        let mut scaler = OnlineScaler::with_seed(config, 0.0, 22).unwrap();
        scaler.install_model(flat_model(0.5), 600.0).unwrap();
        scaler.enable_plan_reuse(0.05).unwrap();
        scaler.plan_round(600.0, 0).unwrap();
        assert_eq!(scaler.stats().planning_rounds, 1);
        // A different covered count is a different key: full replan.
        scaler.plan_round(620.0, 2).unwrap();
        assert_eq!(scaler.stats().planning_rounds, 2);
        assert_eq!(scaler.stats().plan_cache_hits, 0);
        // Steady state again...
        scaler.plan_round(640.0, 2).unwrap();
        assert_eq!(scaler.stats().plan_cache_hits, 1);
        // ...until the model changes: install clears the memoized round and
        // repins the fingerprint, so the next round replans even though the
        // new model forecasts identically.
        scaler.install_model(flat_model(0.5), 650.0).unwrap();
        scaler.plan_round(660.0, 2).unwrap();
        assert_eq!(scaler.stats().planning_rounds, 3);
        assert_eq!(scaler.stats().plan_cache_hits, 1);
        // Disarming drops the cache: re-arming does not resurrect it.
        scaler.plan_round(680.0, 2).unwrap();
        assert_eq!(scaler.stats().plan_cache_hits, 2);
        scaler.disable_plan_reuse();
        scaler.enable_plan_reuse(0.05).unwrap();
        scaler.plan_round(700.0, 2).unwrap();
        assert_eq!(scaler.stats().plan_cache_hits, 2);
        assert_eq!(scaler.stats().planning_rounds, 4);
    }

    #[test]
    fn refit_invalidates_the_plan_cache() {
        let mut config = fast_config();
        config.refit_interval = 1e9; // only explicit refits
        let mut scaler = OnlineScaler::with_seed(config, 0.0, 23).unwrap();
        scaler.ingest_batch(&uniform_arrivals(900.0, 5.0));
        // Coarse tolerance: the fitted forecast is only near-flat, and this
        // test is about invalidation, not about the band's width.
        scaler.enable_plan_reuse(0.5).unwrap();
        scaler.plan_round(900.0, 0).unwrap(); // first fit + plan
        scaler.plan_round(920.0, 0).unwrap();
        let hits = scaler.stats().plan_cache_hits;
        assert!(hits >= 1, "steady state must hit, got {hits}");
        scaler.refit_now(930.0).unwrap();
        // The refit dropped the memoized round: the next round replans.
        let planned_before = scaler.stats().planning_rounds;
        scaler.plan_round(940.0, 0).unwrap();
        assert_eq!(scaler.stats().planning_rounds, planned_before + 1);
        assert_eq!(scaler.stats().plan_cache_hits, hits);
    }

    #[test]
    fn plan_cache_survives_snapshot_restore_and_rearm() {
        let config = fast_config();
        let mut live = OnlineScaler::with_seed(config, 0.0, 24).unwrap();
        live.install_model(flat_model(0.5), 600.0).unwrap();
        live.enable_plan_reuse(0.05).unwrap();
        live.plan_round(600.0, 0).unwrap(); // populates the cache
        let json = serde_json::to_string(&live.snapshot()).unwrap();
        let snap: ScalerSnapshot = serde_json::from_str(&json).unwrap();
        assert!(snap.plan_cache.is_some());
        let mut restored = OnlineScaler::restore(snap, config).unwrap();
        // Reuse is runtime wiring: off after restore, cache intact.
        assert!(restored.plan_reuse().is_none());
        restored.enable_plan_reuse(0.05).unwrap();
        // Both continue bit-identically — including the restored scaler
        // *hitting* where the uninterrupted one hits (an emptied cache
        // would replan and diverge).
        for i in 1..5 {
            let now = 600.0 + 20.0 * i as f64;
            assert_eq!(
                live.plan_round(now, 0).unwrap(),
                restored.plan_round(now, 0).unwrap(),
                "round {i}"
            );
        }
        assert_eq!(live.stats(), restored.stats());
        assert!(live.stats().plan_cache_hits >= 4);
    }

    #[test]
    fn install_model_warm_starts_without_history() {
        let config = fast_config();
        let mut scaler = OnlineScaler::new(config, 0.0).unwrap();
        let model = NhppModel::from_log_rates(0.0, 10.0, vec![(0.5_f64).ln(); 60], None).unwrap();
        scaler.install_model(model, 600.0).unwrap();
        assert!(scaler.has_model());
        let round = scaler.plan_round(600.0, 0).unwrap();
        // 0.5 QPS × 20 s window.
        assert!((round.expected_arrivals_in_window - 10.0).abs() < 1e-9);
        assert!(!round.decisions.is_empty());
        // No ring history was consumed and no counted refit ran.
        assert_eq!(scaler.stats().refits, 0);
    }
}
