//! Cross-tenant forecast clustering for shared arrival sampling.
//!
//! Monte Carlo arrival sampling dominates a fleet planning round: every
//! tenant samples `monte_carlo_samples` arrival paths over its forecast each
//! round, and at 1000 tenants that is millions of exponential draws whose
//! results are statistically interchangeable whenever the forecasts are
//! (near-)identical. Multi-tenant fleets are full of such structure — tenants
//! provisioned from the same template, or whose diurnal profiles fit to the
//! same intensity within noise.
//!
//! This module exploits it. Each tenant's live forecast is *fingerprinted*
//! into a [`ClusterKey`]: the forecast mass over a fixed grid of probe
//! windows covering the planning horizon, quantized geometrically (ratio
//! `1 + quantization`), together with every decision parameter that affects
//! planning (rule, pending-time model, replication count, planning instant).
//! Tenants with equal keys plan against one shared arrival-sample matrix
//! built from the key's [`representative_intensity`] — sampled once per
//! cluster, borrowed zero-copy by every member.
//!
//! # Determinism contract
//!
//! * **Sharing off** (the default) is bit-identical to a fleet without this
//!   module, at any worker count.
//! * **Sharing on** is itself deterministic: the shared matrix is seeded from
//!   the cluster key's content and the round counter ([`ClusterKey::seed`]),
//!   never from any tenant's RNG, so results do not depend on worker count,
//!   tenant order within a cluster, or which tenants happen to co-cluster.
//!   It is *not* bit-identical to sharing off — it is a controlled
//!   approximation whose error is bounded by the quantization ratio, traded
//!   for sampling cost that scales with distinct clusters instead of
//!   tenants.
//!
//! [`representative_intensity`]: ClusterKey::representative_intensity

use robustscaler_nhpp::{NhppError, PiecewiseConstantIntensity};
use robustscaler_scaling::{DecisionRule, PendingTimeModel};
use serde::{Deserialize, Serialize};

use crate::error::OnlineError;

/// Number of probe windows a forecast is fingerprinted over.
///
/// The probe grid spans the planning window plus four pending leads — the
/// range whose forecast mass can influence this round's decisions. Eight
/// buckets keeps the key `Copy`-small while still separating forecasts whose
/// shape differs inside the horizon.
pub const SHARING_PROBE_BUCKETS: usize = 8;

/// Forecast mass below this is binned as "empty" rather than quantized on
/// the log grid (log-quantizing a true zero is undefined, and masses this
/// small cannot move a creation time).
const EMPTY_MASS: f64 = 1e-12;

/// Fleet-level switch and tuning for cross-tenant shared sampling.
///
/// Runtime-only, like tracing: the setting is **not** persisted in
/// checkpoints, and a restored fleet starts with sharing off. Re-apply it
/// after restore if wanted — sharing changes no tenant state, only how the
/// next rounds compute their plans.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharingConfig {
    /// Master switch. Off (the default) keeps rounds bit-identical to a
    /// build without sharing, at any worker count.
    pub enabled: bool,
    /// Geometric quantization ratio for forecast-mass fingerprints: probe
    /// masses within a multiplicative `1 + quantization` band land in the
    /// same bin. Larger values cluster more aggressively (fewer samplers,
    /// coarser approximation). Must be finite and positive.
    pub quantization: f64,
    /// Layer 1 plan reuse: cluster-level decision dedup. Within a sampling
    /// cluster, members whose *exact* planning inputs match under a
    /// [`PlanKey`] (same covered count on top of the shared sampler's
    /// rule/pending/replications — valid only for deterministic pending
    /// models, whose decision loop consumes no caller RNG) provably compute
    /// identical decision vectors; one leader runs the loop and the others
    /// adopt its decisions. Bit-identical to running every member
    /// individually (dedup on ≡ dedup off, given `enabled`), so this is
    /// pure win whenever it applies. Inert while `enabled` is false.
    pub decision_dedup: bool,
    /// Layer 2 plan reuse: the per-scaler round-over-round plan cache.
    /// Each scaler memoizes its last planned round under a
    /// [`PlanCacheKey`]; an unchanged key time-shifts the cached plan
    /// instead of resampling. Like sharing itself this is a deterministic,
    /// worker-invariant *approximation* universe (a hit consumes no RNG, so
    /// downstream draws differ from a resampling run); it is invalidated on
    /// refit, drift, model install, and disable, and the cache state is
    /// persisted in snapshots so kill-and-restore stays bit-equivalent.
    /// Unlike `decision_dedup` this layer is honored even when `enabled` is
    /// false (it needs no cross-tenant clustering).
    pub plan_cache: bool,
}

impl Default for SharingConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            quantization: 0.05,
            decision_dedup: false,
            plan_cache: false,
        }
    }
}

impl SharingConfig {
    /// Every layer enabled at the default quantization: cross-tenant shared
    /// sampling plus both plan-reuse layers (decision dedup and the
    /// round-over-round plan cache) — the production configuration for
    /// large fleets.
    pub fn on() -> Self {
        Self {
            enabled: true,
            decision_dedup: true,
            plan_cache: true,
            ..Self::default()
        }
    }

    /// Only cross-tenant shared sampling, both plan-reuse layers off —
    /// the PR 9 configuration, kept for isolating the sampling win in
    /// benchmarks and for fleets that want sharing without reuse.
    pub fn sharing_only() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), OnlineError> {
        if !self.quantization.is_finite() || self.quantization <= 0.0 {
            return Err(OnlineError::InvalidConfig(
                "sharing quantization must be finite and > 0",
            ));
        }
        Ok(())
    }
}

/// A tenant's planning fingerprint for one round.
///
/// Two tenants receive the same key exactly when every input that shapes
/// their plan matches: the planning instant, the full decision configuration
/// (rule, pending model, replication count), the probe-grid geometry, the
/// quantization in force, and the quantized forecast mass in every probe
/// window. Keys are compared structurally (`Eq`), never by hash alone, so
/// hash collisions cannot merge distinct clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterKey {
    now_bits: u64,
    step_bits: u64,
    quant_bits: u64,
    samples: usize,
    rule: (u8, u64),
    pending: (u8, u64, u64),
    bins: [i64; SHARING_PROBE_BUCKETS],
}

impl ClusterKey {
    /// Fingerprint a forecast at planning instant `now`.
    ///
    /// `interval` is the planning window Δ; `rule`, `pending` and `samples`
    /// are the decision configuration in force. Returns `None` when the
    /// geometry degenerates (non-finite instant or probe step), in which
    /// case the tenant simply plans privately.
    pub fn from_forecast<I>(
        forecast: &I,
        now: f64,
        interval: f64,
        rule: &DecisionRule,
        pending: &PendingTimeModel,
        samples: usize,
        quantization: f64,
    ) -> Option<Self>
    where
        I: robustscaler_nhpp::Intensity + ?Sized,
    {
        let lead = pending.mean();
        let span = interval + 4.0 * lead.max(1.0);
        let step = span / SHARING_PROBE_BUCKETS as f64;
        if !now.is_finite() || !step.is_finite() || step <= 0.0 {
            return None;
        }
        let log_ratio = (1.0 + quantization).ln();
        let mut bins = [i64::MIN; SHARING_PROBE_BUCKETS];
        for (j, bin) in bins.iter_mut().enumerate() {
            let from = now + j as f64 * step;
            let mass = forecast.integrated(from, from + step);
            if !mass.is_finite() {
                return None;
            }
            if mass > EMPTY_MASS {
                *bin = (mass.ln() / log_ratio).floor() as i64;
            }
        }
        Some(Self {
            now_bits: now.to_bits(),
            step_bits: step.to_bits(),
            quant_bits: quantization.to_bits(),
            samples,
            rule: match *rule {
                DecisionRule::HittingProbability { alpha } => (0, alpha.to_bits()),
                DecisionRule::ResponseTime { target_waiting } => (1, target_waiting.to_bits()),
                DecisionRule::CostBudget { target_idle } => (2, target_idle.to_bits()),
            },
            pending: match *pending {
                PendingTimeModel::Deterministic(delay) => (0, delay.to_bits(), 0),
                PendingTimeModel::LogNormal { mean, std_dev } => {
                    (1, mean.to_bits(), std_dev.to_bits())
                }
            },
            bins,
        })
    }

    /// The planning instant this key was taken at.
    pub fn now(&self) -> f64 {
        f64::from_bits(self.now_bits)
    }

    /// The replication count members of this cluster plan with.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Rebuild the cluster's representative intensity from the fingerprint.
    ///
    /// Each probe bin is decoded to the geometric midpoint of its
    /// quantization band (empty bins to rate zero), yielding a piecewise
    /// constant intensity over the probe grid. Beyond the grid the last
    /// bucket's rate extends as the tail, matching how the probe span was
    /// chosen to cover everything the round can consume. The representative
    /// depends only on the key, never on which member tenant built it.
    pub fn representative_intensity(&self) -> Result<PiecewiseConstantIntensity, NhppError> {
        let step = f64::from_bits(self.step_bits);
        let log_ratio = (1.0 + f64::from_bits(self.quant_bits)).ln();
        let rates: Vec<f64> = self
            .bins
            .iter()
            .map(|&bin| {
                if bin == i64::MIN {
                    0.0
                } else {
                    ((bin as f64 + 0.5) * log_ratio).exp() / step
                }
            })
            .collect();
        PiecewiseConstantIntensity::new(self.now(), step, rates)
    }

    /// Deterministic seed for the cluster's shared sampler in `round`.
    ///
    /// Folded from the key's own content with a SplitMix64 chain, so the
    /// shared arrival matrix is identical no matter how many workers run the
    /// round, which tenants belong to the cluster, or in what order they
    /// were discovered — and differs between rounds and between clusters.
    pub fn seed(&self, round: u64) -> u64 {
        let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ round;
        let mut fold = |value: u64| {
            state = splitmix64(state ^ value);
        };
        fold(self.now_bits);
        fold(self.step_bits);
        fold(self.quant_bits);
        fold(self.samples as u64);
        fold(self.rule.0 as u64);
        fold(self.rule.1);
        fold(self.pending.0 as u64);
        fold(self.pending.1);
        fold(self.pending.2);
        for &bin in &self.bins {
            fold(bin as u64);
        }
        state
    }
}

/// Layer 1 dedup key: a [`ClusterKey`] made strict enough that the *full
/// decision schedule* — not just the arrival matrix — is provably identical
/// across tenants that share it.
///
/// The cluster key already pins the planning instant, probe geometry,
/// quantized forecast mass, rule, pending model and replication count; the
/// plan key adds the covered count (the only remaining per-tenant input of
/// [`plan_window_shared`]). With a deterministic pending model the decision
/// loop consumes no caller RNG, so two tenants holding equal plan keys and
/// planning against the same shared sampler compute bit-identical decision
/// vectors — one leader runs the loop, the rest adopt. Each adopter still
/// supplies `expected_arrivals_in_window` from its *own* forecast, which the
/// key deliberately does not pin.
///
/// [`plan_window_shared`]: robustscaler_scaling::SequentialPlanner::plan_window_shared
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    cluster: ClusterKey,
    covered: usize,
}

impl PlanKey {
    /// Build a plan key from a tenant's cluster key and covered count.
    pub fn new(cluster: ClusterKey, covered: usize) -> Self {
        Self { cluster, covered }
    }

    /// The underlying sampling-cluster key.
    pub fn cluster(&self) -> &ClusterKey {
        &self.cluster
    }

    /// The covered count the schedule was planned for.
    pub fn covered(&self) -> usize {
        self.covered
    }
}

/// Layer 2 cache key: a content fingerprint of everything a scaler's
/// planning round depends on, *except* the absolute planning instant.
///
/// Every discrete planning input is pinned **exactly**: the forecast
/// model's fingerprint (the FNV-1a 64 checkpoints use — any refit, drift
/// refit or install changes it), the rule parameters, the pending-time
/// model, the replication count, the window length and the covered count.
/// The forecast itself is probed over the same grid as [`ClusterKey`] but
/// *relative to `now`*, and the probe masses are geometrically quantized at
/// the reuse layer's tolerance: two rounds produce equal keys exactly when
/// the model is unchanged and the forecast's shape over the upcoming
/// horizon, viewed from the planning instant, stayed within the
/// quantization band. Under those conditions the previous round's creation
/// times translate with the planning instant, so the cached
/// [`PlanningRound`] is time-shifted instead of resampled — the same
/// controlled-approximation contract as sharing, with the same knob
/// bounding the error.
///
/// The key is serializable: a scaler's cache entry is persisted in its
/// snapshot so kill-and-restore resumes bit-identically (a cache hit
/// consumes no RNG — an emptied cache after restore would diverge the
/// stream).
///
/// [`PlanningRound`]: robustscaler_scaling::PlanningRound
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanCacheKey {
    model: u64,
    interval_bits: u64,
    step_bits: u64,
    quant_bits: u64,
    samples: u64,
    covered: u64,
    rule: (u8, u64),
    pending: (u8, u64, u64),
    bins: [i64; SHARING_PROBE_BUCKETS],
}

impl PlanCacheKey {
    /// Fingerprint a scaler's planning inputs at instant `now`.
    ///
    /// `model` is a stable fingerprint of the fitted forecast model (the
    /// FNV-1a 64 used by checkpoints); `forecast` is the live intensity the
    /// round would plan against; `quantization` is the reuse layer's
    /// geometric tolerance (probe masses within a multiplicative
    /// `1 + quantization` band are considered unchanged). Returns `None`
    /// when the geometry degenerates or any probe mass is non-finite — the
    /// round then plans normally and caches nothing.
    #[allow(clippy::too_many_arguments)] // a fingerprint is its inputs
    pub fn from_forecast<I>(
        forecast: &I,
        model: u64,
        now: f64,
        interval: f64,
        rule: &DecisionRule,
        pending: &PendingTimeModel,
        samples: usize,
        covered: usize,
        quantization: f64,
    ) -> Option<Self>
    where
        I: robustscaler_nhpp::Intensity + ?Sized,
    {
        let lead = pending.mean();
        let span = interval + 4.0 * lead.max(1.0);
        let step = span / SHARING_PROBE_BUCKETS as f64;
        if !now.is_finite() || !step.is_finite() || step <= 0.0 {
            return None;
        }
        let log_ratio = (1.0 + quantization).ln();
        let mut bins = [i64::MIN; SHARING_PROBE_BUCKETS];
        for (j, bin) in bins.iter_mut().enumerate() {
            let from = now + j as f64 * step;
            let mass = forecast.integrated(from, from + step);
            if !mass.is_finite() {
                return None;
            }
            if mass > EMPTY_MASS {
                *bin = (mass.ln() / log_ratio).floor() as i64;
            }
        }
        Some(Self {
            model,
            interval_bits: interval.to_bits(),
            step_bits: step.to_bits(),
            quant_bits: quantization.to_bits(),
            samples: samples as u64,
            covered: covered as u64,
            rule: match *rule {
                DecisionRule::HittingProbability { alpha } => (0, alpha.to_bits()),
                DecisionRule::ResponseTime { target_waiting } => (1, target_waiting.to_bits()),
                DecisionRule::CostBudget { target_idle } => (2, target_idle.to_bits()),
            },
            pending: match *pending {
                PendingTimeModel::Deterministic(delay) => (0, delay.to_bits(), 0),
                PendingTimeModel::LogNormal { mean, std_dev } => {
                    (1, mean.to_bits(), std_dev.to_bits())
                }
            },
            bins,
        })
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustscaler_nhpp::Intensity;

    fn flat(rate: f64) -> PiecewiseConstantIntensity {
        PiecewiseConstantIntensity::new(0.0, 1e7, vec![rate]).unwrap()
    }

    fn key(rate: f64, quantization: f64) -> ClusterKey {
        ClusterKey::from_forecast(
            &flat(rate),
            100.0,
            10.0,
            &DecisionRule::HittingProbability { alpha: 0.1 },
            &PendingTimeModel::Deterministic(13.0),
            250,
            quantization,
        )
        .unwrap()
    }

    #[test]
    fn config_defaults_off_and_validates() {
        let config = SharingConfig::default();
        assert!(!config.enabled);
        assert!(!config.decision_dedup);
        assert!(!config.plan_cache);
        assert!(config.validate().is_ok());
        let on = SharingConfig::on();
        assert!(on.enabled && on.decision_dedup && on.plan_cache);
        let only = SharingConfig::sharing_only();
        assert!(only.enabled && !only.decision_dedup && !only.plan_cache);
        let bad = SharingConfig {
            enabled: true,
            quantization: 0.0,
            ..SharingConfig::default()
        };
        assert!(bad.validate().is_err());
        let nan = SharingConfig {
            enabled: true,
            quantization: f64::NAN,
            ..SharingConfig::default()
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn plan_keys_split_clusters_by_covered_count() {
        let cluster = key(2.0, 0.05);
        assert_eq!(PlanKey::new(cluster, 3), PlanKey::new(cluster, 3));
        assert_ne!(PlanKey::new(cluster, 3), PlanKey::new(cluster, 4));
        assert_ne!(
            PlanKey::new(key(2.0, 0.05), 3),
            PlanKey::new(key(2.5, 0.05), 3)
        );
        assert_eq!(PlanKey::new(cluster, 3).covered(), 3);
        assert_eq!(*PlanKey::new(cluster, 3).cluster(), cluster);
    }

    fn cache_key(rate: f64, model: u64, now: f64, covered: usize) -> PlanCacheKey {
        PlanCacheKey::from_forecast(
            &flat(rate),
            model,
            now,
            10.0,
            &DecisionRule::HittingProbability { alpha: 0.1 },
            &PendingTimeModel::Deterministic(13.0),
            250,
            covered,
            0.05,
        )
        .unwrap()
    }

    #[test]
    fn plan_cache_keys_are_translation_invariant_within_the_band() {
        // A steady forecast looks identical relative to any planning
        // instant: the key matches across rounds, which is exactly what
        // lets the cached plan be time-shifted...
        assert_eq!(cache_key(2.0, 7, 100.0, 3), cache_key(2.0, 7, 150.0, 3));
        // ...and sub-tolerance forecast drift still matches (the same
        // controlled approximation sharing makes).
        assert_eq!(cache_key(2.0, 7, 100.0, 3), cache_key(2.02, 7, 100.0, 3));
        // Every discrete input is pinned exactly: model fingerprint and
        // covered count changes miss, as does forecast drift past the band.
        assert_ne!(cache_key(2.0, 7, 100.0, 3), cache_key(2.0, 8, 100.0, 3));
        assert_ne!(cache_key(2.0, 7, 100.0, 3), cache_key(2.0, 7, 100.0, 4));
        assert_ne!(cache_key(2.0, 7, 100.0, 3), cache_key(2.5, 7, 100.0, 3));
    }

    #[test]
    fn plan_cache_keys_round_trip_through_serde() {
        let key = cache_key(2.0, 7, 100.0, 3);
        let json = serde_json::to_string(&key).unwrap();
        let back: PlanCacheKey = serde_json::from_str(&json).unwrap();
        assert_eq!(back, key);
    }

    #[test]
    fn near_identical_forecasts_share_a_key_and_distinct_ones_do_not() {
        // 1% apart clusters together at 5% quantization...
        assert_eq!(key(2.0, 0.05), key(2.02, 0.05));
        // ...but well-separated rates do not.
        assert_ne!(key(2.0, 0.05), key(2.5, 0.05));
        // Tighter quantization splits the near-identical pair.
        assert_ne!(key(2.0, 0.001), key(2.02, 0.001));
    }

    #[test]
    fn key_covers_every_decision_parameter() {
        let base = key(2.0, 0.05);
        let other_rule = ClusterKey::from_forecast(
            &flat(2.0),
            100.0,
            10.0,
            &DecisionRule::ResponseTime {
                target_waiting: 2.0,
            },
            &PendingTimeModel::Deterministic(13.0),
            250,
            0.05,
        )
        .unwrap();
        assert_ne!(base, other_rule);
        let other_pending = ClusterKey::from_forecast(
            &flat(2.0),
            100.0,
            10.0,
            &DecisionRule::HittingProbability { alpha: 0.1 },
            &PendingTimeModel::LogNormal {
                mean: 13.0,
                std_dev: 1.0,
            },
            250,
            0.05,
        )
        .unwrap();
        assert_ne!(base, other_pending);
        let other_samples = ClusterKey::from_forecast(
            &flat(2.0),
            100.0,
            10.0,
            &DecisionRule::HittingProbability { alpha: 0.1 },
            &PendingTimeModel::Deterministic(13.0),
            500,
            0.05,
        )
        .unwrap();
        assert_ne!(base, other_samples);
        let other_now = ClusterKey::from_forecast(
            &flat(2.0),
            110.0,
            10.0,
            &DecisionRule::HittingProbability { alpha: 0.1 },
            &PendingTimeModel::Deterministic(13.0),
            250,
            0.05,
        )
        .unwrap();
        assert_ne!(base, other_now);
    }

    #[test]
    fn representative_intensity_stays_inside_the_quantization_band() {
        for &rate in &[0.01, 0.5, 2.0, 37.0] {
            let k = key(rate, 0.05);
            let rep = k.representative_intensity().unwrap();
            // Probe the grid: each bucket's reconstructed mass must sit
            // within one quantization step of the true mass.
            let step = (10.0 + 4.0 * 13.0) / SHARING_PROBE_BUCKETS as f64;
            for j in 0..SHARING_PROBE_BUCKETS {
                let from = 100.0 + j as f64 * step;
                let truth = rate * step;
                let got = rep.integrated(from, from + step);
                let ratio = got / truth;
                assert!(
                    ratio > 1.0 / 1.06 && ratio < 1.06,
                    "rate {rate} bucket {j}: ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn empty_forecast_reconstructs_to_zero_rate() {
        let k = key(0.0, 0.05);
        let rep = k.representative_intensity().unwrap();
        assert_eq!(rep.integrated(100.0, 200.0), 0.0);
    }

    #[test]
    fn seed_is_content_deterministic_and_round_sensitive() {
        let a = key(2.0, 0.05);
        let b = key(2.0, 0.05);
        assert_eq!(a.seed(7), b.seed(7));
        assert_ne!(a.seed(7), a.seed(8));
        assert_ne!(a.seed(7), key(2.5, 0.05).seed(7));
    }
}
