//! Cross-tenant forecast clustering for shared arrival sampling.
//!
//! Monte Carlo arrival sampling dominates a fleet planning round: every
//! tenant samples `monte_carlo_samples` arrival paths over its forecast each
//! round, and at 1000 tenants that is millions of exponential draws whose
//! results are statistically interchangeable whenever the forecasts are
//! (near-)identical. Multi-tenant fleets are full of such structure — tenants
//! provisioned from the same template, or whose diurnal profiles fit to the
//! same intensity within noise.
//!
//! This module exploits it. Each tenant's live forecast is *fingerprinted*
//! into a [`ClusterKey`]: the forecast mass over a fixed grid of probe
//! windows covering the planning horizon, quantized geometrically (ratio
//! `1 + quantization`), together with every decision parameter that affects
//! planning (rule, pending-time model, replication count, planning instant).
//! Tenants with equal keys plan against one shared arrival-sample matrix
//! built from the key's [`representative_intensity`] — sampled once per
//! cluster, borrowed zero-copy by every member.
//!
//! # Determinism contract
//!
//! * **Sharing off** (the default) is bit-identical to a fleet without this
//!   module, at any worker count.
//! * **Sharing on** is itself deterministic: the shared matrix is seeded from
//!   the cluster key's content and the round counter ([`ClusterKey::seed`]),
//!   never from any tenant's RNG, so results do not depend on worker count,
//!   tenant order within a cluster, or which tenants happen to co-cluster.
//!   It is *not* bit-identical to sharing off — it is a controlled
//!   approximation whose error is bounded by the quantization ratio, traded
//!   for sampling cost that scales with distinct clusters instead of
//!   tenants.
//!
//! [`representative_intensity`]: ClusterKey::representative_intensity

use robustscaler_nhpp::{NhppError, PiecewiseConstantIntensity};
use robustscaler_scaling::{DecisionRule, PendingTimeModel};
use serde::{Deserialize, Serialize};

use crate::error::OnlineError;

/// Number of probe windows a forecast is fingerprinted over.
///
/// The probe grid spans the planning window plus four pending leads — the
/// range whose forecast mass can influence this round's decisions. Eight
/// buckets keeps the key `Copy`-small while still separating forecasts whose
/// shape differs inside the horizon.
pub const SHARING_PROBE_BUCKETS: usize = 8;

/// Forecast mass below this is binned as "empty" rather than quantized on
/// the log grid (log-quantizing a true zero is undefined, and masses this
/// small cannot move a creation time).
const EMPTY_MASS: f64 = 1e-12;

/// Fleet-level switch and tuning for cross-tenant shared sampling.
///
/// Runtime-only, like tracing: the setting is **not** persisted in
/// checkpoints, and a restored fleet starts with sharing off. Re-apply it
/// after restore if wanted — sharing changes no tenant state, only how the
/// next rounds compute their plans.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharingConfig {
    /// Master switch. Off (the default) keeps rounds bit-identical to a
    /// build without sharing, at any worker count.
    pub enabled: bool,
    /// Geometric quantization ratio for forecast-mass fingerprints: probe
    /// masses within a multiplicative `1 + quantization` band land in the
    /// same bin. Larger values cluster more aggressively (fewer samplers,
    /// coarser approximation). Must be finite and positive.
    pub quantization: f64,
}

impl Default for SharingConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            quantization: 0.05,
        }
    }
}

impl SharingConfig {
    /// Sharing enabled at the default quantization.
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), OnlineError> {
        if !self.quantization.is_finite() || self.quantization <= 0.0 {
            return Err(OnlineError::InvalidConfig(
                "sharing quantization must be finite and > 0",
            ));
        }
        Ok(())
    }
}

/// A tenant's planning fingerprint for one round.
///
/// Two tenants receive the same key exactly when every input that shapes
/// their plan matches: the planning instant, the full decision configuration
/// (rule, pending model, replication count), the probe-grid geometry, the
/// quantization in force, and the quantized forecast mass in every probe
/// window. Keys are compared structurally (`Eq`), never by hash alone, so
/// hash collisions cannot merge distinct clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterKey {
    now_bits: u64,
    step_bits: u64,
    quant_bits: u64,
    samples: usize,
    rule: (u8, u64),
    pending: (u8, u64, u64),
    bins: [i64; SHARING_PROBE_BUCKETS],
}

impl ClusterKey {
    /// Fingerprint a forecast at planning instant `now`.
    ///
    /// `interval` is the planning window Δ; `rule`, `pending` and `samples`
    /// are the decision configuration in force. Returns `None` when the
    /// geometry degenerates (non-finite instant or probe step), in which
    /// case the tenant simply plans privately.
    pub fn from_forecast<I>(
        forecast: &I,
        now: f64,
        interval: f64,
        rule: &DecisionRule,
        pending: &PendingTimeModel,
        samples: usize,
        quantization: f64,
    ) -> Option<Self>
    where
        I: robustscaler_nhpp::Intensity + ?Sized,
    {
        let lead = pending.mean();
        let span = interval + 4.0 * lead.max(1.0);
        let step = span / SHARING_PROBE_BUCKETS as f64;
        if !now.is_finite() || !step.is_finite() || step <= 0.0 {
            return None;
        }
        let log_ratio = (1.0 + quantization).ln();
        let mut bins = [i64::MIN; SHARING_PROBE_BUCKETS];
        for (j, bin) in bins.iter_mut().enumerate() {
            let from = now + j as f64 * step;
            let mass = forecast.integrated(from, from + step);
            if !mass.is_finite() {
                return None;
            }
            if mass > EMPTY_MASS {
                *bin = (mass.ln() / log_ratio).floor() as i64;
            }
        }
        Some(Self {
            now_bits: now.to_bits(),
            step_bits: step.to_bits(),
            quant_bits: quantization.to_bits(),
            samples,
            rule: match *rule {
                DecisionRule::HittingProbability { alpha } => (0, alpha.to_bits()),
                DecisionRule::ResponseTime { target_waiting } => (1, target_waiting.to_bits()),
                DecisionRule::CostBudget { target_idle } => (2, target_idle.to_bits()),
            },
            pending: match *pending {
                PendingTimeModel::Deterministic(delay) => (0, delay.to_bits(), 0),
                PendingTimeModel::LogNormal { mean, std_dev } => {
                    (1, mean.to_bits(), std_dev.to_bits())
                }
            },
            bins,
        })
    }

    /// The planning instant this key was taken at.
    pub fn now(&self) -> f64 {
        f64::from_bits(self.now_bits)
    }

    /// The replication count members of this cluster plan with.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Rebuild the cluster's representative intensity from the fingerprint.
    ///
    /// Each probe bin is decoded to the geometric midpoint of its
    /// quantization band (empty bins to rate zero), yielding a piecewise
    /// constant intensity over the probe grid. Beyond the grid the last
    /// bucket's rate extends as the tail, matching how the probe span was
    /// chosen to cover everything the round can consume. The representative
    /// depends only on the key, never on which member tenant built it.
    pub fn representative_intensity(&self) -> Result<PiecewiseConstantIntensity, NhppError> {
        let step = f64::from_bits(self.step_bits);
        let log_ratio = (1.0 + f64::from_bits(self.quant_bits)).ln();
        let rates: Vec<f64> = self
            .bins
            .iter()
            .map(|&bin| {
                if bin == i64::MIN {
                    0.0
                } else {
                    ((bin as f64 + 0.5) * log_ratio).exp() / step
                }
            })
            .collect();
        PiecewiseConstantIntensity::new(self.now(), step, rates)
    }

    /// Deterministic seed for the cluster's shared sampler in `round`.
    ///
    /// Folded from the key's own content with a SplitMix64 chain, so the
    /// shared arrival matrix is identical no matter how many workers run the
    /// round, which tenants belong to the cluster, or in what order they
    /// were discovered — and differs between rounds and between clusters.
    pub fn seed(&self, round: u64) -> u64 {
        let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ round;
        let mut fold = |value: u64| {
            state = splitmix64(state ^ value);
        };
        fold(self.now_bits);
        fold(self.step_bits);
        fold(self.quant_bits);
        fold(self.samples as u64);
        fold(self.rule.0 as u64);
        fold(self.rule.1);
        fold(self.pending.0 as u64);
        fold(self.pending.1);
        fold(self.pending.2);
        for &bin in &self.bins {
            fold(bin as u64);
        }
        state
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustscaler_nhpp::Intensity;

    fn flat(rate: f64) -> PiecewiseConstantIntensity {
        PiecewiseConstantIntensity::new(0.0, 1e7, vec![rate]).unwrap()
    }

    fn key(rate: f64, quantization: f64) -> ClusterKey {
        ClusterKey::from_forecast(
            &flat(rate),
            100.0,
            10.0,
            &DecisionRule::HittingProbability { alpha: 0.1 },
            &PendingTimeModel::Deterministic(13.0),
            250,
            quantization,
        )
        .unwrap()
    }

    #[test]
    fn config_defaults_off_and_validates() {
        let config = SharingConfig::default();
        assert!(!config.enabled);
        assert!(config.validate().is_ok());
        assert!(SharingConfig::on().enabled);
        let bad = SharingConfig {
            enabled: true,
            quantization: 0.0,
        };
        assert!(bad.validate().is_err());
        let nan = SharingConfig {
            enabled: true,
            quantization: f64::NAN,
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn near_identical_forecasts_share_a_key_and_distinct_ones_do_not() {
        // 1% apart clusters together at 5% quantization...
        assert_eq!(key(2.0, 0.05), key(2.02, 0.05));
        // ...but well-separated rates do not.
        assert_ne!(key(2.0, 0.05), key(2.5, 0.05));
        // Tighter quantization splits the near-identical pair.
        assert_ne!(key(2.0, 0.001), key(2.02, 0.001));
    }

    #[test]
    fn key_covers_every_decision_parameter() {
        let base = key(2.0, 0.05);
        let other_rule = ClusterKey::from_forecast(
            &flat(2.0),
            100.0,
            10.0,
            &DecisionRule::ResponseTime {
                target_waiting: 2.0,
            },
            &PendingTimeModel::Deterministic(13.0),
            250,
            0.05,
        )
        .unwrap();
        assert_ne!(base, other_rule);
        let other_pending = ClusterKey::from_forecast(
            &flat(2.0),
            100.0,
            10.0,
            &DecisionRule::HittingProbability { alpha: 0.1 },
            &PendingTimeModel::LogNormal {
                mean: 13.0,
                std_dev: 1.0,
            },
            250,
            0.05,
        )
        .unwrap();
        assert_ne!(base, other_pending);
        let other_samples = ClusterKey::from_forecast(
            &flat(2.0),
            100.0,
            10.0,
            &DecisionRule::HittingProbability { alpha: 0.1 },
            &PendingTimeModel::Deterministic(13.0),
            500,
            0.05,
        )
        .unwrap();
        assert_ne!(base, other_samples);
        let other_now = ClusterKey::from_forecast(
            &flat(2.0),
            110.0,
            10.0,
            &DecisionRule::HittingProbability { alpha: 0.1 },
            &PendingTimeModel::Deterministic(13.0),
            250,
            0.05,
        )
        .unwrap();
        assert_ne!(base, other_now);
    }

    #[test]
    fn representative_intensity_stays_inside_the_quantization_band() {
        for &rate in &[0.01, 0.5, 2.0, 37.0] {
            let k = key(rate, 0.05);
            let rep = k.representative_intensity().unwrap();
            // Probe the grid: each bucket's reconstructed mass must sit
            // within one quantization step of the true mass.
            let step = (10.0 + 4.0 * 13.0) / SHARING_PROBE_BUCKETS as f64;
            for j in 0..SHARING_PROBE_BUCKETS {
                let from = 100.0 + j as f64 * step;
                let truth = rate * step;
                let got = rep.integrated(from, from + step);
                let ratio = got / truth;
                assert!(
                    ratio > 1.0 / 1.06 && ratio < 1.06,
                    "rate {rate} bucket {j}: ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn empty_forecast_reconstructs_to_zero_rate() {
        let k = key(0.0, 0.05);
        let rep = k.representative_intensity().unwrap();
        assert_eq!(rep.integrated(100.0, 200.0), 0.0);
    }

    #[test]
    fn seed_is_content_deterministic_and_round_sensitive() {
        let a = key(2.0, 0.05);
        let b = key(2.0, 0.05);
        assert_eq!(a.seed(7), b.seed(7));
        assert_ne!(a.seed(7), a.seed(8));
        assert_ne!(a.seed(7), key(2.5, 0.05).seed(7));
    }
}
