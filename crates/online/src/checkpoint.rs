//! Durable, sharded fleet checkpoints: crash-safe snapshot/restore for the
//! online serving layer.
//!
//! A fleet process restart used to lose every tenant's training window and
//! force cold refits. This module persists the fleet's full serving state —
//! each tenant's [`ScalerSnapshot`] — to a
//! directory of per-tenant-group shard files plus a manifest, with three
//! guarantees:
//!
//! * **Crash safety.** Every checkpoint is written into a fresh generation
//!   subdirectory and only becomes current when `manifest.json` is swapped
//!   in via an atomic temp-file + rename. A crash at any point mid-write
//!   leaves the previous checkpoint fully intact and loadable.
//! * **Corruption detection.** The manifest records an FNV-1a content
//!   checksum per shard. A truncated or bit-flipped shard fails its load
//!   with a checksum error *naming the shard*; other shards stay loadable —
//!   a corrupt file can never silently zero a tenant.
//! * **Bit-identical resume.** Restoring a checkpoint reproduces every
//!   tenant's ring, model, RNG stream position, counters and refit
//!   deadlines exactly, so a restored fleet's plans are bit-identical to a
//!   fleet that never stopped (pinned by `tests/persistence.rs`).
//!
//! On-disk layout under the checkpoint directory:
//!
//! ```text
//! manifest.json               # swap point: {version, generation, shards, bus}
//! gen-000003/shard-0000.json  # Vec<TenantSnapshot> for tenant group 0
//! gen-000003/shard-0001.json  # ...
//! ```
//!
//! **Format v2** (reads v1): tenant snapshots optionally carry the
//! tenant's *undrained arrival queue* (contents + [`QueueStats`]) so a
//! fleet killed mid-burst restores with its queues intact and replays
//! bit-identically; the manifest records the bus configuration needed to
//! rebuild the queues, and shard entries may be **reused** from the
//! previous generation: a shard whose tenants have not mutated since the
//! last checkpoint is hard-linked (or copied) into the new generation
//! instead of reserialized, with `reused_from` naming the generation that
//! actually wrote the bytes. Every generation directory remains
//! self-contained, so the old-generation sweep is unchanged.

use crate::error::OnlineError;
use crate::ingest::{BusConfig, QueueStats};
use crate::scaler::ScalerSnapshot;
use robustscaler_parallel::{parallel_map, WorkerPool};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Checkpoint format version recorded in the manifest; bump on any change
/// to the manifest or shard layout and keep [`CheckpointStore::read_manifest`]
/// able to read every version still deployed (v1 checkpoints — no queue
/// state, no shard reuse — load as fleets with empty queues).
pub const CHECKPOINT_FORMAT_VERSION: u32 = 2;

/// Default number of tenants per shard file.
pub const DEFAULT_TENANTS_PER_SHARD: usize = 64;

/// One tenant's persisted state: its stable id, the scaler snapshot, and
/// (format v2, when the fleet runs an arrival bus) the tenant's undrained
/// ingestion queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// Stable tenant identifier.
    pub id: u64,
    /// The tenant's full serving state.
    pub scaler: ScalerSnapshot,
    /// Arrivals enqueued but not yet drained at checkpoint time, in
    /// enqueue order (`None` in v1 checkpoints and for fleets without a
    /// bus).
    pub queued: Option<Vec<f64>>,
    /// The tenant queue's back-pressure accounting at checkpoint time.
    pub queue: Option<QueueStats>,
}

impl TenantSnapshot {
    /// A snapshot with no queue state (fleets without a bus, single-tenant
    /// harness checkpoints).
    pub fn new(id: u64, scaler: ScalerSnapshot) -> Self {
        Self {
            id,
            scaler,
            queued: None,
            queue: None,
        }
    }
}

/// Manifest entry for one shard file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Shard file path relative to the checkpoint directory.
    pub file: String,
    /// Number of tenants stored in the shard.
    pub tenants: usize,
    /// FNV-1a 64-bit checksum of the shard file's bytes, lowercase hex.
    pub checksum: String,
    /// When the shard was **reused** from an earlier generation (none of
    /// its tenants mutated since), the generation that actually serialized
    /// these bytes; `None` for freshly written shards (and all v1
    /// entries).
    pub reused_from: Option<u64>,
}

/// The checkpoint manifest: the single swap point that makes a generation
/// current.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Checkpoint format version ([`CHECKPOINT_FORMAT_VERSION`]).
    pub version: u32,
    /// Monotonic checkpoint generation; generation `N` lives in `gen-{N}/`.
    pub generation: u64,
    /// Total tenants across all shards.
    pub tenant_count: usize,
    /// The shard files of this generation, in tenant order.
    pub shards: Vec<ShardEntry>,
    /// The arrival-bus configuration of the checkpointed fleet, needed to
    /// rebuild the queues on restore; `None` when the fleet had no bus
    /// (and in v1 checkpoints).
    pub bus: Option<BusConfig>,
}

/// Knobs for [`CheckpointStore::write_with`] beyond the snapshot set.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOptions<'a> {
    /// Consecutive tenants per shard file (≥ 1; 0 is clamped to 1).
    pub tenants_per_shard: usize,
    /// Worker budget for parallel shard serialization.
    pub workers: usize,
    /// Persistent worker pool to serialize on (falls back to scoped
    /// threads when `None`).
    pub pool: Option<&'a WorkerPool>,
    /// Bus configuration to record in the manifest (fleets with a bus).
    pub bus: Option<BusConfig>,
    /// Per-shard-group cleanliness, aligned with the `tenants_per_shard`
    /// chunking: `clean_shards[g] == true` asserts group `g`'s bytes are
    /// identical to the previous generation's shard `g`, allowing reuse.
    /// `None` (or a mismatched length) rewrites everything.
    pub clean_shards: Option<&'a [bool]>,
}

/// FNV-1a 64-bit hash — small, dependency-free, and plenty for detecting
/// truncation and bit rot in shard files (not a cryptographic integrity
/// guarantee). Also the hash behind trace model fingerprints
/// (`crate::replay::model_fingerprint`).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn io_err(context: &str, e: &std::io::Error) -> OnlineError {
    OnlineError::Checkpoint {
        shard: None,
        message: format!("{context}: {e}"),
    }
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename. A crash mid-write leaves either the old file or no file —
/// never a torn one.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), OnlineError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file =
        fs::File::create(&tmp).map_err(|e| io_err(&format!("create {}", tmp.display()), &e))?;
    file.write_all(bytes)
        .map_err(|e| io_err(&format!("write {}", tmp.display()), &e))?;
    file.sync_all()
        .map_err(|e| io_err(&format!("sync {}", tmp.display()), &e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| {
        io_err(
            &format!("rename {} -> {}", tmp.display(), path.display()),
            &e,
        )
    })
}

/// Fsync a directory so renames/creates inside it are durable — the file
/// fsync in [`write_atomic`] persists *contents*, but the directory entry
/// created by the rename lives in the directory and needs its own sync for
/// power-loss safety.
fn sync_dir(dir: &Path) -> Result<(), OnlineError> {
    let handle =
        fs::File::open(dir).map_err(|e| io_err(&format!("open dir {}", dir.display()), &e))?;
    handle
        .sync_all()
        .map_err(|e| io_err(&format!("sync dir {}", dir.display()), &e))
}

/// A checkpoint directory: one manifest plus generation subdirectories of
/// shard files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (or designate) a checkpoint directory. The directory is created
    /// on first write, not here.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// Whether a current checkpoint (a manifest) exists.
    pub fn exists(&self) -> bool {
        self.manifest_path().is_file()
    }

    /// Read and validate the current manifest.
    pub fn read_manifest(&self) -> Result<Manifest, OnlineError> {
        let path = self.manifest_path();
        let text = fs::read_to_string(&path)
            .map_err(|e| io_err(&format!("read {}", path.display()), &e))?;
        let manifest: Manifest =
            serde_json::from_str(&text).map_err(|e| OnlineError::Checkpoint {
                shard: None,
                message: format!("manifest parse failure: {e}"),
            })?;
        if manifest.version == 0 || manifest.version > CHECKPOINT_FORMAT_VERSION {
            return Err(OnlineError::UnsupportedSnapshotVersion {
                found: manifest.version,
                supported: CHECKPOINT_FORMAT_VERSION,
            });
        }
        let shard_total: usize = manifest.shards.iter().map(|s| s.tenants).sum();
        if shard_total != manifest.tenant_count {
            return Err(OnlineError::Checkpoint {
                shard: None,
                message: format!(
                    "manifest tenant count {} disagrees with shard totals {}",
                    manifest.tenant_count, shard_total
                ),
            });
        }
        Ok(manifest)
    }

    /// Write a new checkpoint generation holding `snapshots`, sharded into
    /// groups of `tenants_per_shard`, serializing shards across up to
    /// `workers` threads. Returns the manifest that became current.
    ///
    /// The previous generation stays intact (and current) until the final
    /// manifest rename; its files are deleted only after the swap succeeds.
    pub fn write(
        &self,
        snapshots: &[TenantSnapshot],
        tenants_per_shard: usize,
        workers: usize,
    ) -> Result<Manifest, OnlineError> {
        self.write_with(
            snapshots,
            &WriteOptions {
                tenants_per_shard,
                workers,
                ..WriteOptions::default()
            },
        )
    }

    /// [`CheckpointStore::write`] with the full option set: a persistent
    /// worker pool to serialize on, a bus configuration to record, and —
    /// the incremental-checkpoint path — per-shard-group cleanliness that
    /// lets unchanged shards be *reused* from the previous generation.
    ///
    /// A reusable shard (its group is marked clean, and the previous
    /// manifest has a same-sized shard for the group) is hard-linked —
    /// copied, on filesystems without hard links — into the new
    /// generation's directory instead of reserialized, keeping every
    /// generation self-contained while skipping the serialization and
    /// write cost for tenants that neither ingested nor planned since the
    /// last checkpoint. Its manifest entry carries the previous checksum
    /// and `reused_from` = the generation that actually wrote the bytes.
    pub fn write_with(
        &self,
        snapshots: &[TenantSnapshot],
        options: &WriteOptions<'_>,
    ) -> Result<Manifest, OnlineError> {
        if snapshots.is_empty() {
            return Err(OnlineError::InvalidConfig(
                "cannot checkpoint an empty tenant set",
            ));
        }
        let tenants_per_shard = options.tenants_per_shard.max(1);
        fs::create_dir_all(&self.dir)
            .map_err(|e| io_err(&format!("create {}", self.dir.display()), &e))?;
        // No manifest at all → first generation. An *unreadable* or
        // unsupported manifest must fail the write instead: silently
        // restarting at generation 1 would break the documented
        // monotonicity, and an old binary would clobber a newer-format
        // checkpoint rather than failing loudly.
        let previous = if self.exists() {
            Some(self.read_manifest()?)
        } else {
            None
        };
        let generation = previous.as_ref().map_or(1, |m| m.generation + 1);
        let gen_name = format!("gen-{generation:06}");
        let gen_dir = self.dir.join(&gen_name);
        // Clear remnants of a crashed write that reached this generation
        // number but never swapped its manifest in.
        if gen_dir.exists() {
            fs::remove_dir_all(&gen_dir)
                .map_err(|e| io_err(&format!("clear stale {}", gen_dir.display()), &e))?;
        }
        fs::create_dir_all(&gen_dir)
            .map_err(|e| io_err(&format!("create {}", gen_dir.display()), &e))?;

        let groups: Vec<(usize, &[TenantSnapshot])> =
            snapshots.chunks(tenants_per_shard).enumerate().collect();
        let clean = options
            .clean_shards
            .filter(|flags| flags.len() == groups.len());
        let write_shard = |&(group, chunk): &(usize, &[TenantSnapshot])| {
            let file = format!("{gen_name}/shard-{group:04}.json");
            // Reuse path: the group is clean and the previous generation
            // holds a same-sized shard *for the same tenant range* →
            // link/copy those bytes. The range check matters: when the
            // shard size changes between generations, shard `g` of the old
            // layout can hold the right *count* of the wrong tenants
            // (e.g. [2,2,2] → [4,2]: new group 1 starts at tenant 4, old
            // shard 1 held tenants 2..4), and linking it would corrupt the
            // checkpoint.
            if clean.is_some_and(|flags| flags[group]) {
                if let Some(prev) = previous
                    .as_ref()
                    .and_then(|m| {
                        let prev_start: usize =
                            m.shards.iter().take(group).map(|s| s.tenants).sum();
                        m.shards
                            .get(group)
                            .filter(|_| prev_start == group * tenants_per_shard)
                    })
                    .filter(|prev| prev.tenants == chunk.len())
                {
                    if let Ok(entry) = self.reuse_shard(prev, &file, generation) {
                        return Ok(entry);
                    }
                    // Fall through to a fresh write when the previous
                    // shard file cannot be linked or copied (e.g. swept by
                    // a concurrent process) — reuse is an optimization,
                    // never a correctness dependency.
                }
            }
            let json = serde_json::to_string(chunk).map_err(|e| OnlineError::Checkpoint {
                shard: Some(file.clone()),
                message: format!("serialize failure: {e}"),
            })?;
            let bytes = json.as_bytes();
            let checksum = format!("{:016x}", fnv1a64(bytes));
            write_atomic(&self.dir.join(&file), bytes)?;
            Ok(ShardEntry {
                file,
                tenants: chunk.len(),
                checksum,
                reused_from: None,
            })
        };
        let shard_results: Vec<Result<ShardEntry, OnlineError>> = match options.pool {
            Some(pool) => pool.parallel_map(&groups, options.workers, write_shard),
            None => parallel_map(&groups, options.workers, write_shard),
        };
        let shards = shard_results
            .into_iter()
            .collect::<Result<Vec<_>, OnlineError>>()?;

        let manifest = Manifest {
            version: CHECKPOINT_FORMAT_VERSION,
            generation,
            tenant_count: snapshots.len(),
            shards,
            bus: options.bus,
        };
        let manifest_json =
            serde_json::to_string(&manifest).map_err(|e| OnlineError::Checkpoint {
                shard: None,
                message: format!("manifest serialize failure: {e}"),
            })?;
        // Durability ordering for power-loss safety: persist the shard
        // directory entries, then the manifest swap, and only then delete
        // the old generation. Without the directory fsyncs, the old
        // generation's unlinks could become durable before the new
        // manifest's rename, leaving the on-disk manifest pointing at
        // deleted shards after a crash.
        sync_dir(&gen_dir)?;
        write_atomic(&self.manifest_path(), manifest_json.as_bytes())?;
        sync_dir(&self.dir)?;
        self.sweep_old_generations(&gen_name);
        Ok(manifest)
    }

    /// Materialize a clean shard in the new generation directory by
    /// hard-linking (or copying) the previous generation's file, carrying
    /// the checksum forward. `reused_from` records the generation that
    /// actually serialized the bytes, chaining through repeated reuse.
    ///
    /// Durability: the linked/copied bytes were fsynced when their
    /// generation was written, and the new directory entry is covered by
    /// the generation-directory fsync that precedes the manifest swap.
    fn reuse_shard(
        &self,
        prev: &ShardEntry,
        file: &str,
        generation: u64,
    ) -> Result<ShardEntry, OnlineError> {
        let source = self.dir.join(&prev.file);
        let target = self.dir.join(file);
        if fs::hard_link(&source, &target).is_err() {
            // Cross-filesystem checkpoint dirs or FSes without hard links:
            // fall back to a byte copy (still cheaper than reserializing
            // hundreds of ring+model snapshots).
            fs::copy(&source, &target).map_err(|e| {
                io_err(
                    &format!("reuse {} -> {}", source.display(), target.display()),
                    &e,
                )
            })?;
        }
        Ok(ShardEntry {
            file: file.to_string(),
            tenants: prev.tenants,
            checksum: prev.checksum.clone(),
            reused_from: Some(prev.reused_from.unwrap_or(generation - 1)),
        })
    }

    /// Best-effort removal of generation directories other than `keep` —
    /// they are no longer referenced once the manifest swap succeeded, and
    /// a failure to delete them only wastes disk, never correctness.
    fn sweep_old_generations(&self, keep: &str) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("gen-") && name != keep {
                let _ = fs::remove_dir_all(entry.path());
            }
        }
    }

    /// Load one shard, verifying its checksum before parsing. Every failure
    /// is scoped to the shard's file name.
    pub fn load_shard(&self, entry: &ShardEntry) -> Result<Vec<TenantSnapshot>, OnlineError> {
        let shard_err = |message: String| OnlineError::Checkpoint {
            shard: Some(entry.file.clone()),
            message,
        };
        let path = self.dir.join(&entry.file);
        let bytes = fs::read(&path).map_err(|e| shard_err(format!("read failure: {e}")))?;
        let computed = format!("{:016x}", fnv1a64(&bytes));
        if computed != entry.checksum {
            return Err(shard_err(format!(
                "checksum mismatch: manifest says {}, file hashes to {computed} \
                 (truncated or corrupt shard)",
                entry.checksum
            )));
        }
        let text =
            std::str::from_utf8(&bytes).map_err(|e| shard_err(format!("invalid UTF-8: {e}")))?;
        let snapshots: Vec<TenantSnapshot> =
            serde_json::from_str(text).map_err(|e| shard_err(format!("parse failure: {e}")))?;
        if snapshots.len() != entry.tenants {
            return Err(shard_err(format!(
                "shard holds {} tenants, manifest says {}",
                snapshots.len(),
                entry.tenants
            )));
        }
        Ok(snapshots)
    }

    /// Load every shard of the current manifest across up to `workers`
    /// threads, returning one `Result` per shard (in manifest order) so a
    /// corrupt shard leaves the others loadable and attributable.
    #[allow(clippy::type_complexity)]
    pub fn load_shards(
        &self,
        workers: usize,
    ) -> Result<(Manifest, Vec<Result<Vec<TenantSnapshot>, OnlineError>>), OnlineError> {
        let manifest = self.read_manifest()?;
        let results = parallel_map(&manifest.shards, workers, |entry| self.load_shard(entry));
        Ok((manifest, results))
    }

    /// Load the complete checkpoint: every tenant of every shard, in tenant
    /// order. The first shard failure aborts the load with an error naming
    /// that shard.
    pub fn load(&self, workers: usize) -> Result<Vec<TenantSnapshot>, OnlineError> {
        let (manifest, per_shard) = self.load_shards(workers)?;
        let mut all = Vec::with_capacity(manifest.tenant_count);
        for result in per_shard {
            all.extend(result?);
        }
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaler::tests::fast_config;
    use crate::scaler::OnlineScaler;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("robustscaler-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn some_snapshots(n: u64) -> Vec<TenantSnapshot> {
        (0..n)
            .map(|id| {
                let mut scaler = OnlineScaler::with_seed(fast_config(), 0.0, 1000 + id).unwrap();
                let arrivals: Vec<f64> = (0..200).map(|i| i as f64 * 3.0).collect();
                scaler.ingest_batch(&arrivals);
                scaler.plan_round(600.0, 0).unwrap();
                TenantSnapshot::new(id, scaler.snapshot())
            })
            .collect()
    }

    #[test]
    fn write_read_round_trip_with_sharding() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::new(&dir);
        assert!(!store.exists());
        let snapshots = some_snapshots(5);
        let manifest = store.write(&snapshots, 2, 2).unwrap();
        assert!(store.exists());
        assert_eq!(manifest.generation, 1);
        assert_eq!(manifest.tenant_count, 5);
        assert_eq!(manifest.shards.len(), 3); // 2 + 2 + 1
        let loaded = store.load(3).unwrap();
        assert_eq!(loaded, snapshots);
        // A second write bumps the generation and sweeps the old one.
        let manifest2 = store.write(&snapshots, 2, 1).unwrap();
        assert_eq!(manifest2.generation, 2);
        assert!(!dir.join("gen-000001").exists());
        assert_eq!(store.load(1).unwrap(), snapshots);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_shard_is_detected_and_named_others_loadable() {
        let dir = temp_dir("corrupt");
        let store = CheckpointStore::new(&dir);
        let snapshots = some_snapshots(4);
        let manifest = store.write(&snapshots, 2, 1).unwrap();
        // Truncate the first shard.
        let victim = dir.join(&manifest.shards[0].file);
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        let (_, per_shard) = store.load_shards(2).unwrap();
        match &per_shard[0] {
            Err(OnlineError::Checkpoint {
                shard: Some(shard),
                message,
            }) => {
                assert_eq!(shard, &manifest.shards[0].file);
                assert!(message.contains("checksum mismatch"), "{message}");
            }
            other => panic!("expected a checksum error, got {other:?}"),
        }
        // The untouched shard still loads.
        assert_eq!(per_shard[1].as_ref().unwrap().len(), 2);
        // And the all-or-nothing load names the bad shard.
        let err = store.load(2).unwrap_err();
        assert!(err.to_string().contains(&manifest.shards[0].file));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_shards_are_reused_across_generations() {
        let dir = temp_dir("reuse");
        let store = CheckpointStore::new(&dir);
        let mut snapshots = some_snapshots(5);
        let first = store.write(&snapshots, 2, 1).unwrap();
        assert!(first.shards.iter().all(|s| s.reused_from.is_none()));

        // Generation 2: only group 0 changed.
        snapshots[0].scaler.stats.planning_rounds += 1;
        let options = WriteOptions {
            tenants_per_shard: 2,
            workers: 1,
            clean_shards: Some(&[false, true, true]),
            ..WriteOptions::default()
        };
        let second = store.write_with(&snapshots, &options).unwrap();
        assert_eq!(second.generation, 2);
        assert_eq!(second.shards[0].reused_from, None);
        assert_eq!(second.shards[1].reused_from, Some(1));
        assert_eq!(second.shards[2].reused_from, Some(1));
        assert_eq!(second.shards[1].checksum, first.shards[1].checksum);

        // Generation 3: reuse chains back to the writing generation.
        let third = store.write_with(&snapshots, &options).unwrap();
        assert_eq!(third.shards[1].reused_from, Some(1));
        assert_eq!(third.shards[0].reused_from, None);

        // The reused files are self-contained in the new generation: the
        // old directories are swept yet everything still loads and
        // checksum-verifies.
        assert!(!dir.join("gen-000001").exists());
        assert!(!dir.join("gen-000002").exists());
        let loaded = store.load(2).unwrap();
        assert_eq!(loaded, snapshots);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_or_mismatched_clean_flags_fall_back_to_fresh_writes() {
        let dir = temp_dir("reuse-fallback");
        let store = CheckpointStore::new(&dir);
        let snapshots = some_snapshots(4);
        store.write(&snapshots, 2, 1).unwrap();
        // Wrong flag length: ignored, everything rewritten.
        let options = WriteOptions {
            tenants_per_shard: 2,
            workers: 1,
            clean_shards: Some(&[true]),
            ..WriteOptions::default()
        };
        let manifest = store.write_with(&snapshots, &options).unwrap();
        assert!(manifest.shards.iter().all(|s| s.reused_from.is_none()));
        // Different sharding than the previous generation: group sizes no
        // longer line up, so "clean" groups are rewritten, not mislinked.
        let options = WriteOptions {
            tenants_per_shard: 3,
            workers: 1,
            clean_shards: Some(&[true, true]),
            ..WriteOptions::default()
        };
        let manifest = store.write_with(&snapshots, &options).unwrap();
        assert!(manifest.shards.iter().all(|s| s.reused_from.is_none()));
        assert_eq!(store.load(1).unwrap(), snapshots);
        let _ = fs::remove_dir_all(&dir);

        // The count-match trap: [2,2,2] -> [4,2] over 6 tenants. New group 1
        // holds tenants 4..6 with the same tenant *count* as old shard 1
        // (tenants 2..4); only the offset-alignment check keeps the reuse
        // path from hard-linking the wrong tenants' bytes.
        let dir = temp_dir("reuse-fallback-regroup");
        let store = CheckpointStore::new(&dir);
        let snapshots = some_snapshots(6);
        store.write(&snapshots, 2, 1).unwrap();
        let options = WriteOptions {
            tenants_per_shard: 4,
            workers: 1,
            clean_shards: Some(&[true, true]),
            ..WriteOptions::default()
        };
        let manifest = store.write_with(&snapshots, &options).unwrap();
        assert_eq!(manifest.shards.len(), 2);
        assert!(
            manifest.shards.iter().all(|s| s.reused_from.is_none()),
            "misaligned count-matching shard was reused: {:?}",
            manifest.shards
        );
        assert_eq!(store.load(1).unwrap(), snapshots);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_manifests_without_bus_or_reuse_fields_still_load() {
        let dir = temp_dir("v1-compat");
        let store = CheckpointStore::new(&dir);
        let snapshots = some_snapshots(2);
        store.write(&snapshots, 8, 1).unwrap();
        // Rewrite the manifest the way a v1 binary would have: no `bus`,
        // no `reused_from`, version 1 — field-for-field what PR 4 wrote.
        let manifest = store.read_manifest().unwrap();
        let shard = &manifest.shards[0];
        let v1 = format!(
            "{{\"version\":1,\"generation\":{},\"tenant_count\":{},\"shards\":[{{\
             \"file\":\"{}\",\"tenants\":{},\"checksum\":\"{}\"}}]}}",
            manifest.generation, manifest.tenant_count, shard.file, shard.tenants, shard.checksum
        );
        write_atomic(&dir.join("manifest.json"), v1.as_bytes()).unwrap();
        let back = store.read_manifest().unwrap();
        assert_eq!(back.version, 1);
        assert_eq!(back.bus, None);
        assert_eq!(back.shards[0].reused_from, None);
        assert_eq!(store.load(1).unwrap(), snapshots);
        // And the next write continues the generation sequence.
        let next = store.write(&snapshots, 8, 1).unwrap();
        assert_eq!(next.generation, manifest.generation + 1);
        assert_eq!(next.version, CHECKPOINT_FORMAT_VERSION);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_version_and_consistency_are_checked() {
        let dir = temp_dir("manifest");
        let store = CheckpointStore::new(&dir);
        let snapshots = some_snapshots(2);
        store.write(&snapshots, 8, 1).unwrap();
        let mut manifest = store.read_manifest().unwrap();
        manifest.version += 1;
        write_atomic(
            &dir.join("manifest.json"),
            serde_json::to_string(&manifest).unwrap().as_bytes(),
        )
        .unwrap();
        assert!(matches!(
            store.read_manifest(),
            Err(OnlineError::UnsupportedSnapshotVersion { .. })
        ));
        manifest.version -= 1;
        manifest.tenant_count += 1;
        write_atomic(
            &dir.join("manifest.json"),
            serde_json::to_string(&manifest).unwrap().as_bytes(),
        )
        .unwrap();
        assert!(store.read_manifest().is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_refuses_to_clobber_an_unreadable_manifest() {
        let dir = temp_dir("clobber");
        let store = CheckpointStore::new(&dir);
        let snapshots = some_snapshots(2);
        let first = store.write(&snapshots, 8, 1).unwrap();
        assert_eq!(first.generation, 1);
        // A corrupt (but present) manifest must fail the next write loudly —
        // never silently restart at generation 1 and sweep the directory.
        fs::write(dir.join("manifest.json"), b"{ not json").unwrap();
        assert!(store.write(&snapshots, 8, 1).is_err());
        assert!(dir.join(&first.shards[0].file).exists());
        // Same for a manifest from a newer format version.
        let mut manifest = first.clone();
        manifest.version = CHECKPOINT_FORMAT_VERSION + 1;
        fs::write(
            dir.join("manifest.json"),
            serde_json::to_string(&manifest).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            store.write(&snapshots, 8, 1),
            Err(OnlineError::UnsupportedSnapshotVersion { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_reports_cleanly() {
        let store = CheckpointStore::new(temp_dir("missing"));
        assert!(!store.exists());
        assert!(matches!(
            store.read_manifest(),
            Err(OnlineError::Checkpoint { shard: None, .. })
        ));
    }
}
