//! Durable, sharded fleet checkpoints: crash-safe snapshot/restore for the
//! online serving layer.
//!
//! A fleet process restart used to lose every tenant's training window and
//! force cold refits. This module persists the fleet's full serving state —
//! each tenant's [`ScalerSnapshot`] — to a
//! directory of per-tenant-group shard files plus a manifest, with three
//! guarantees:
//!
//! * **Crash safety.** Every checkpoint is written into a fresh generation
//!   subdirectory and only becomes current when `manifest.json` is swapped
//!   in via an atomic temp-file + rename. A crash at any point mid-write
//!   leaves the previous checkpoint fully intact and loadable.
//! * **Corruption detection.** The manifest records an FNV-1a content
//!   checksum per shard. A truncated or bit-flipped shard fails its load
//!   with a checksum error *naming the shard*; other shards stay loadable —
//!   a corrupt file can never silently zero a tenant.
//! * **Bit-identical resume.** Restoring a checkpoint reproduces every
//!   tenant's ring, model, RNG stream position, counters and refit
//!   deadlines exactly, so a restored fleet's plans are bit-identical to a
//!   fleet that never stopped (pinned by `tests/persistence.rs`).
//!
//! On-disk layout under the checkpoint directory:
//!
//! ```text
//! manifest.json               # swap point: {version, generation, shards, bus}
//! gen-000003/shard-0000.json  # Vec<TenantSnapshot> for tenant group 0
//! gen-000003/shard-0001.json  # ...
//! ```
//!
//! **Format v2** (reads v1): tenant snapshots optionally carry the
//! tenant's *undrained arrival queue* (contents + [`QueueStats`]) so a
//! fleet killed mid-burst restores with its queues intact and replays
//! bit-identically; the manifest records the bus configuration needed to
//! rebuild the queues, and shard entries may be **reused** from the
//! previous generation: a shard whose tenants have not mutated since the
//! last checkpoint is hard-linked (or copied) into the new generation
//! instead of reserialized, with `reused_from` naming the generation that
//! actually wrote the bytes. Every generation directory remains
//! self-contained, so the old-generation sweep is unchanged.
//!
//! **Format v3** (reads v1 and v2) adds self-healing durability:
//!
//! * every filesystem touch goes through a small [`CheckpointStorage`]
//!   trait (default: [`OsStorage`]), so chaos tests can inject
//!   deterministic `io::ErrorKind`s straight into the atomic-swap path;
//! * shard and manifest writes **retry with bounded backoff** before
//!   failing the checkpoint, and a clean shard whose previous file cannot
//!   be linked or copied falls back to a full rewrite (both surfaced via
//!   [`CheckpointStore::io_stats`]);
//! * the **previous generation is retained** alongside the current one
//!   (older ones are still swept), each generation directory carries its
//!   own `manifest.json` copy, and [`CheckpointStore::load_shards`] scans
//!   back to the newest *restorable* generation when the current one is
//!   corrupt — noting which generation was skipped instead of stranding
//!   the data;
//! * tenant snapshots optionally persist the fleet's per-tenant
//!   supervision state ([`SupervisionSnapshot`]: failure counters,
//!   quarantine + backoff schedule, the last good plan/snapshot), so a
//!   restored fleet resumes its quarantine lifecycle bit-identically.

use crate::error::OnlineError;
use crate::fleet::ResidencyConfig;
use crate::ingest::{BusConfig, QueueStats};
use crate::scaler::ScalerSnapshot;
use robustscaler_parallel::{parallel_map, WorkerPool};
use robustscaler_scaling::PlanningRound;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Checkpoint format version recorded in the manifest; bump on any change
/// to the manifest or shard layout and keep [`CheckpointStore::read_manifest`]
/// able to read every version still deployed (v1 checkpoints — no queue
/// state, no shard reuse — load as fleets with empty queues; v2 — no
/// supervision state — as fleets with every tenant healthy; v3 — no
/// residency state or fleet round in the manifest — as fully-hot fleets).
///
/// **Format v4** adds the hot/cold residency tier: tenant snapshots
/// optionally carry a [`ResidencySnapshot`], and the manifest records the
/// fleet's [`ResidencyConfig`] and round
/// counter so a restored fleet resumes its residency state machine exactly.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 4;

/// How many times a shard/manifest write is attempted before the
/// checkpoint fails (first try + retries).
const WRITE_ATTEMPTS: u32 = 3;

/// Base backoff between write retries; attempt `n` sleeps `n` times this.
const RETRY_BACKOFF: Duration = Duration::from_millis(2);

/// Default number of tenants per shard file.
pub const DEFAULT_TENANTS_PER_SHARD: usize = 64;

/// One tenant's persisted state: its stable id, the scaler snapshot, and
/// (format v2, when the fleet runs an arrival bus) the tenant's undrained
/// ingestion queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// Stable tenant identifier.
    pub id: u64,
    /// The tenant's full serving state.
    pub scaler: ScalerSnapshot,
    /// Arrivals enqueued but not yet drained at checkpoint time, in
    /// enqueue order (`None` in v1 checkpoints and for fleets without a
    /// bus).
    pub queued: Option<Vec<f64>>,
    /// The tenant queue's back-pressure accounting at checkpoint time.
    pub queue: Option<QueueStats>,
    /// The fleet's supervision state for this tenant (format v3; `None`
    /// in older checkpoints and for single-tenant harness snapshots).
    pub supervision: Option<SupervisionSnapshot>,
    /// The fleet's residency state for this tenant (format v4; `None` in
    /// older checkpoints and for fleets without residency tiering — the
    /// tenant restores hot).
    pub residency: Option<ResidencySnapshot>,
}

impl TenantSnapshot {
    /// A snapshot with no queue state (fleets without a bus, single-tenant
    /// harness checkpoints).
    pub fn new(id: u64, scaler: ScalerSnapshot) -> Self {
        Self {
            id,
            scaler,
            queued: None,
            queue: None,
            supervision: None,
            residency: None,
        }
    }
}

/// Per-tenant residency state persisted with the tenant (format v4), so a
/// restored fleet resumes its hot/cold tiering exactly: a cold tenant comes
/// back cold (resident in memory, re-paged lazily), a hot tenant's idle
/// streak continues where it left off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResidencySnapshot {
    /// Whether the tenant was cold (hibernated) at checkpoint time.
    pub cold: bool,
    /// Consecutive idle rounds observed while hot (cold-entry countdown).
    pub idle_streak: u64,
    /// The scheduled wake time of a cold tenant; `None` encodes "never
    /// without external input" (`f64::INFINITY` does not round-trip JSON).
    pub wake_at: Option<f64>,
    /// The fleet round the tenant went cold in (0 while hot).
    pub since_round: u64,
}

/// A tenant's quarantine: entered after K consecutive failures, probed on
/// an exponential-backoff schedule until a probe round succeeds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuarantineState {
    /// The fleet round the tenant was quarantined in.
    pub since_round: u64,
    /// Current backoff, in rounds, between probes (doubles on every failed
    /// probe, capped by the supervisor's `max_backoff`).
    pub backoff: u64,
    /// The fleet round at which the next recovery probe runs.
    pub next_probe: u64,
}

/// Per-tenant supervision state persisted with the tenant (format v3), so
/// a restored fleet resumes failure counting, quarantine backoff and
/// degraded-mode planning exactly where the checkpointed fleet stopped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupervisionSnapshot {
    /// The fleet's round counter at checkpoint time (every tenant records
    /// the same value; restore takes the max).
    pub round: u64,
    /// Consecutive supervised failures (cold-start `NotTrained` excluded).
    pub consecutive_failures: u32,
    /// The active quarantine, if any.
    pub quarantine: Option<QuarantineState>,
    /// Total supervised failures over the tenant's lifetime.
    pub failures: u64,
    /// How many of those failures were caught panics.
    pub panics: u64,
    /// Recovery probes attempted while quarantined.
    pub probes: u64,
    /// Successful recoveries (a probe round that planned cleanly).
    pub recoveries: u64,
    /// Rounds served by the degraded plan-stickiness fallback.
    pub degraded_rounds: u64,
    /// The tenant's last successful plan — the degraded-mode fallback.
    pub last_good_plan: Option<PlanningRound>,
    /// The scaler snapshot recovery restores from (captured periodically
    /// when the supervisor's recovery action is snapshot restore).
    pub last_good_snapshot: Option<Box<ScalerSnapshot>>,
}

/// Manifest entry for one shard file.
///
/// `Deserialize` is hand-written so manifests predating
/// [`ShardEntry::bytes`] still load (the field defaults to `0`,
/// "unknown", which disqualifies the entry from the size quick check and
/// falls back to full read-back verification).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardEntry {
    /// Shard file path relative to the checkpoint directory.
    pub file: String,
    /// Number of tenants stored in the shard.
    pub tenants: usize,
    /// FNV-1a 64-bit checksum of the shard file's bytes, lowercase hex.
    pub checksum: String,
    /// Size of the shard file when its bytes were serialized, `0` when
    /// unknown (manifests written before this field existed). The
    /// retention guard stats reused shard files against this as a cheap
    /// confirmation that the restorability induction still holds on disk
    /// (truncated or torn-overwritten files change size); see
    /// [`WriteOptions::previous_restorable`].
    pub bytes: u64,
    /// When the shard was **reused** from an earlier generation (none of
    /// its tenants mutated since), the generation that actually serialized
    /// these bytes; `None` for freshly written shards (and all v1
    /// entries).
    pub reused_from: Option<u64>,
}

impl Deserialize for ShardEntry {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let require = |key: &str| {
            v.get(key)
                .ok_or_else(|| serde::Error::msg(format!("missing field `{key}` in ShardEntry")))
        };
        Ok(Self {
            file: Deserialize::from_value(require("file")?)?,
            tenants: Deserialize::from_value(require("tenants")?)?,
            checksum: Deserialize::from_value(require("checksum")?)?,
            bytes: match v.get("bytes") {
                Some(value) => Deserialize::from_value(value)?,
                None => 0,
            },
            reused_from: match v.get("reused_from") {
                Some(value) => Deserialize::from_value(value)?,
                None => None,
            },
        })
    }
}

/// The checkpoint manifest: the single swap point that makes a generation
/// current.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Checkpoint format version ([`CHECKPOINT_FORMAT_VERSION`]).
    pub version: u32,
    /// Monotonic checkpoint generation; generation `N` lives in `gen-{N}/`.
    pub generation: u64,
    /// Total tenants across all shards.
    pub tenant_count: usize,
    /// The shard files of this generation, in tenant order.
    pub shards: Vec<ShardEntry>,
    /// The arrival-bus configuration of the checkpointed fleet, needed to
    /// rebuild the queues on restore; `None` when the fleet had no bus
    /// (and in v1 checkpoints).
    pub bus: Option<BusConfig>,
    /// The fleet's round counter at checkpoint time (format v4). Older
    /// checkpoints reconstruct it from the per-tenant supervision
    /// snapshots; recording it here keeps it correct even when every
    /// tenant's shard was reused (a reused shard's `SupervisionSnapshot`
    /// round is the round of the generation that wrote the bytes).
    pub round: Option<u64>,
    /// The fleet's residency configuration (format v4); `None` for fleets
    /// without residency tiering. Restore re-enables tiering from it.
    pub residency: Option<ResidencyConfig>,
}

/// Knobs for [`CheckpointStore::write_with`] beyond the snapshot set.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOptions<'a> {
    /// Consecutive tenants per shard file (≥ 1; 0 is clamped to 1).
    pub tenants_per_shard: usize,
    /// Worker budget for parallel shard serialization.
    pub workers: usize,
    /// Persistent worker pool to serialize on (falls back to scoped
    /// threads when `None`).
    pub pool: Option<&'a WorkerPool>,
    /// Bus configuration to record in the manifest (fleets with a bus).
    pub bus: Option<BusConfig>,
    /// Per-shard-group cleanliness, aligned with the `tenants_per_shard`
    /// chunking: `clean_shards[g] == true` asserts group `g`'s bytes are
    /// identical to the previous generation's shard `g`, allowing reuse.
    /// `None` (or a mismatched length) rewrites everything.
    pub clean_shards: Option<&'a [bool]>,
    /// Fleet round counter to record in the manifest (format v4).
    pub round: Option<u64>,
    /// Residency configuration to record in the manifest (format v4).
    pub residency: Option<ResidencyConfig>,
    /// Caller's assertion that the directory's current (pre-write)
    /// generation is restorable — it was this caller's own previous write
    /// and that write was restorable (fresh, or inductively anchored at a
    /// fresh/verified one). Lets the retention sweep trust the new
    /// generation *by induction* instead of re-hashing every kept shard
    /// file from disk: reuse only links the previous generation's bytes,
    /// and fresh shards are trustworthy by construction. `false` (the
    /// default, and the right value for a fresh process or a directory
    /// another writer may have touched) keeps the sweep's read-back
    /// verification.
    pub previous_restorable: bool,
}

/// FNV-1a 64-bit hash — small, dependency-free, and plenty for detecting
/// truncation and bit rot in shard files (not a cryptographic integrity
/// guarantee). Also the hash behind trace model fingerprints
/// (`crate::replay::model_fingerprint`).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Parse a `gen-NNNNNN` directory name into its generation number.
fn parse_generation_dir(name: &str) -> Option<u64> {
    name.strip_prefix("gen-")?.parse().ok()
}

fn io_err(context: &str, e: &std::io::Error) -> OnlineError {
    OnlineError::Checkpoint {
        shard: None,
        message: format!("{context}: {e}"),
    }
}

/// The filesystem surface the checkpoint store runs on. The default
/// [`OsStorage`] forwards to `std::fs`; chaos tests substitute a faulty
/// implementation ([`crate::faults::FaultyStorage`]) so injected
/// `io::ErrorKind`s exercise the retry, reuse-fallback and atomic-swap
/// paths deterministically.
pub trait CheckpointStorage: std::fmt::Debug + Send + Sync {
    /// `fs::create_dir_all`.
    fn create_dir_all(&self, path: &Path) -> std::io::Result<()>;
    /// Create (truncate) `path`, write all of `bytes`, fsync the file.
    fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;
    /// `fs::rename` — the atomic-swap primitive.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// `fs::hard_link` — the shard-reuse fast path.
    fn hard_link(&self, src: &Path, dst: &Path) -> std::io::Result<()>;
    /// `fs::copy` — the shard-reuse fallback.
    fn copy(&self, src: &Path, dst: &Path) -> std::io::Result<()>;
    /// `fs::remove_dir_all`.
    fn remove_dir_all(&self, path: &Path) -> std::io::Result<()>;
    /// Fsync a directory (durability of renames/creates inside it).
    fn sync_dir(&self, path: &Path) -> std::io::Result<()>;
    /// `fs::read`.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Entry names (not full paths) of a directory.
    fn read_dir_names(&self, path: &Path) -> std::io::Result<Vec<String>>;
    /// Size of `path` in bytes — the retention guard's stat-based quick
    /// check. The default reports unsupported, which makes the guard fall
    /// back to full read-back verification, so custom storages (including
    /// the fault-injecting test wrapper) keep the strictest behavior
    /// unless they opt in.
    fn file_size(&self, path: &Path) -> std::io::Result<u64> {
        let _ = path;
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "file_size unsupported by this storage backend",
        ))
    }
}

/// [`CheckpointStorage`] over the real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsStorage;

impl CheckpointStorage for OsStorage {
    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        fs::create_dir_all(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let mut file = fs::File::create(path)?;
        file.write_all(bytes)?;
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        fs::rename(from, to)
    }

    fn hard_link(&self, src: &Path, dst: &Path) -> std::io::Result<()> {
        fs::hard_link(src, dst)
    }

    fn copy(&self, src: &Path, dst: &Path) -> std::io::Result<()> {
        fs::copy(src, dst).map(|_| ())
    }

    fn remove_dir_all(&self, path: &Path) -> std::io::Result<()> {
        fs::remove_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> std::io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn file_size(&self, path: &Path) -> std::io::Result<u64> {
        fs::metadata(path).map(|m| m.len())
    }

    fn read_dir_names(&self, path: &Path) -> std::io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(path)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }
}

/// Counters behind [`CheckpointStore::io_stats`], shared across clones of
/// the store.
#[derive(Debug, Default)]
struct IoCounters {
    retries: AtomicU64,
    reuse_fallbacks: AtomicU64,
    generation_fallbacks: AtomicU64,
    retention_verify_failures: AtomicU64,
    last_write_restorable: AtomicBool,
    notes: Mutex<Vec<String>>,
}

/// Self-healing accounting for one checkpoint store: how often writes had
/// to retry, shard reuse fell back to a full rewrite, and restores fell
/// back to an older generation. Demo binaries surface non-zero counters as
/// warnings.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CheckpointIoStats {
    /// Shard/manifest write attempts beyond the first (bounded backoff).
    pub retries: u64,
    /// Clean shards rewritten in full because link/copy reuse failed.
    pub reuse_fallbacks: u64,
    /// Restores served from an older generation because the current one
    /// was corrupt.
    pub generation_fallbacks: u64,
    /// Generation sweeps skipped because no kept generation verified as
    /// restorable (the retention guard refused to delete the only
    /// generations scan-back recovery could still use).
    pub retention_verify_failures: u64,
}

/// How many checkpoint generations the sweep retains, and the guard that
/// makes retention restorability-aware: old generations are deleted only
/// once at least one kept generation is verified restorable, so GC can
/// never remove the generations the scan-back recovery path
/// ([`CheckpointStore::load_shards`]) would need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Newest generations kept on disk (≥ 1; the current generation always
    /// counts as one of them). The default of 2 — current plus previous —
    /// matches the pre-policy sweep behaviour.
    pub keep_depth: u64,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        Self { keep_depth: 2 }
    }
}

/// A checkpoint directory: one manifest plus generation subdirectories of
/// shard files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    storage: Arc<dyn CheckpointStorage>,
    io: Arc<IoCounters>,
    retention: RetentionPolicy,
}

impl CheckpointStore {
    /// Open (or designate) a checkpoint directory. The directory is created
    /// on first write, not here.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_storage(dir, Arc::new(OsStorage))
    }

    /// [`CheckpointStore::new`] on an explicit [`CheckpointStorage`]
    /// implementation (fault injection in chaos tests).
    pub fn with_storage(dir: impl Into<PathBuf>, storage: Arc<dyn CheckpointStorage>) -> Self {
        Self {
            dir: dir.into(),
            storage,
            io: Arc::new(IoCounters::default()),
            retention: RetentionPolicy::default(),
        }
    }

    /// Replace the generation-retention policy (keep-depth of the sweep).
    pub fn set_retention(&mut self, policy: RetentionPolicy) {
        self.retention = policy;
    }

    /// The generation-retention policy in effect.
    pub fn retention(&self) -> RetentionPolicy {
        self.retention
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Self-healing accounting since this store (or a clone of it) was
    /// created: write retries, reuse fallbacks, generation fallbacks.
    pub fn io_stats(&self) -> CheckpointIoStats {
        CheckpointIoStats {
            retries: self.io.retries.load(Ordering::Relaxed),
            reuse_fallbacks: self.io.reuse_fallbacks.load(Ordering::Relaxed),
            generation_fallbacks: self.io.generation_fallbacks.load(Ordering::Relaxed),
            retention_verify_failures: self.io.retention_verify_failures.load(Ordering::Relaxed),
        }
    }

    /// Drain the human-readable notes recorded by self-healing actions
    /// (e.g. which corrupt generation a restore skipped).
    pub fn take_notes(&self) -> Vec<String> {
        std::mem::take(&mut *self.io.notes.lock().expect("checkpoint note lock poisoned"))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// Whether a current checkpoint (a manifest) exists.
    pub fn exists(&self) -> bool {
        self.manifest_path().is_file()
    }

    /// Write `bytes` to `path` atomically — temp file in the same
    /// directory, fsync, rename, so a crash mid-write leaves either the old
    /// file or no file, never a torn one — retrying with bounded backoff on
    /// transient failures. Retries are counted in
    /// [`CheckpointStore::io_stats`].
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), OnlineError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let mut last = None;
        for attempt in 0..WRITE_ATTEMPTS {
            if attempt > 0 {
                self.io.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(RETRY_BACKOFF * attempt);
            }
            if let Err(e) = self.storage.write(&tmp, bytes) {
                last = Some(io_err(&format!("write {}", tmp.display()), &e));
                continue;
            }
            match self.storage.rename(&tmp, path) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    last = Some(io_err(
                        &format!("rename {} -> {}", tmp.display(), path.display()),
                        &e,
                    ));
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), OnlineError> {
        self.storage
            .sync_dir(dir)
            .map_err(|e| io_err(&format!("sync dir {}", dir.display()), &e))
    }

    /// Parse and validate manifest text (shared by the root manifest and
    /// the per-generation copies).
    fn parse_manifest(text: &str) -> Result<Manifest, OnlineError> {
        let manifest: Manifest =
            serde_json::from_str(text).map_err(|e| OnlineError::Checkpoint {
                shard: None,
                message: format!("manifest parse failure: {e}"),
            })?;
        if manifest.version == 0 || manifest.version > CHECKPOINT_FORMAT_VERSION {
            return Err(OnlineError::UnsupportedSnapshotVersion {
                found: manifest.version,
                supported: CHECKPOINT_FORMAT_VERSION,
            });
        }
        let shard_total: usize = manifest.shards.iter().map(|s| s.tenants).sum();
        if shard_total != manifest.tenant_count {
            return Err(OnlineError::Checkpoint {
                shard: None,
                message: format!(
                    "manifest tenant count {} disagrees with shard totals {}",
                    manifest.tenant_count, shard_total
                ),
            });
        }
        Ok(manifest)
    }

    /// Read and validate the current manifest.
    pub fn read_manifest(&self) -> Result<Manifest, OnlineError> {
        let path = self.manifest_path();
        let bytes = self
            .storage
            .read(&path)
            .map_err(|e| io_err(&format!("read {}", path.display()), &e))?;
        let text = std::str::from_utf8(&bytes).map_err(|e| OnlineError::Checkpoint {
            shard: None,
            message: format!("manifest is not UTF-8: {e}"),
        })?;
        Self::parse_manifest(text)
    }

    /// Write a new checkpoint generation holding `snapshots`, sharded into
    /// groups of `tenants_per_shard`, serializing shards across up to
    /// `workers` threads. Returns the manifest that became current.
    ///
    /// The previous generation stays intact (and current) until the final
    /// manifest rename; its files are deleted only after the swap succeeds.
    pub fn write(
        &self,
        snapshots: &[TenantSnapshot],
        tenants_per_shard: usize,
        workers: usize,
    ) -> Result<Manifest, OnlineError> {
        self.write_with(
            snapshots,
            &WriteOptions {
                tenants_per_shard,
                workers,
                ..WriteOptions::default()
            },
        )
    }

    /// [`CheckpointStore::write`] with the full option set: a persistent
    /// worker pool to serialize on, a bus configuration to record, and —
    /// the incremental-checkpoint path — per-shard-group cleanliness that
    /// lets unchanged shards be *reused* from the previous generation.
    ///
    /// A reusable shard (its group is marked clean, and the previous
    /// manifest has a same-sized shard for the group) is hard-linked —
    /// copied, on filesystems without hard links — into the new
    /// generation's directory instead of reserialized, keeping every
    /// generation self-contained while skipping the serialization and
    /// write cost for tenants that neither ingested nor planned since the
    /// last checkpoint. Its manifest entry carries the previous checksum
    /// and `reused_from` = the generation that actually wrote the bytes.
    pub fn write_with(
        &self,
        snapshots: &[TenantSnapshot],
        options: &WriteOptions<'_>,
    ) -> Result<Manifest, OnlineError> {
        if snapshots.is_empty() {
            return Err(OnlineError::InvalidConfig(
                "cannot checkpoint an empty tenant set",
            ));
        }
        let tenants_per_shard = options.tenants_per_shard.max(1);
        self.storage
            .create_dir_all(&self.dir)
            .map_err(|e| io_err(&format!("create {}", self.dir.display()), &e))?;
        // No manifest at all → first generation. An *unreadable* or
        // unsupported manifest must fail the write instead: silently
        // restarting at generation 1 would break the documented
        // monotonicity, and an old binary would clobber a newer-format
        // checkpoint rather than failing loudly.
        let previous = if self.exists() {
            Some(self.read_manifest()?)
        } else {
            None
        };
        let generation = previous.as_ref().map_or(1, |m| m.generation + 1);
        let gen_name = format!("gen-{generation:06}");
        let gen_dir = self.dir.join(&gen_name);
        // Clear remnants of a crashed write that reached this generation
        // number but never swapped its manifest in.
        if gen_dir.exists() {
            self.storage
                .remove_dir_all(&gen_dir)
                .map_err(|e| io_err(&format!("clear stale {}", gen_dir.display()), &e))?;
        }
        self.storage
            .create_dir_all(&gen_dir)
            .map_err(|e| io_err(&format!("create {}", gen_dir.display()), &e))?;

        let groups: Vec<(usize, &[TenantSnapshot])> =
            snapshots.chunks(tenants_per_shard).enumerate().collect();
        let clean = options
            .clean_shards
            .filter(|flags| flags.len() == groups.len());
        let write_shard = |&(group, chunk): &(usize, &[TenantSnapshot])| {
            let file = format!("{gen_name}/shard-{group:04}.json");
            // Reuse path: the group is clean and the previous generation
            // holds a same-sized shard *for the same tenant range* →
            // link/copy those bytes. The range check matters: when the
            // shard size changes between generations, shard `g` of the old
            // layout can hold the right *count* of the wrong tenants
            // (e.g. [2,2,2] → [4,2]: new group 1 starts at tenant 4, old
            // shard 1 held tenants 2..4), and linking it would corrupt the
            // checkpoint.
            if clean.is_some_and(|flags| flags[group]) {
                if let Some(prev) = previous
                    .as_ref()
                    .and_then(|m| {
                        let prev_start: usize =
                            m.shards.iter().take(group).map(|s| s.tenants).sum();
                        m.shards
                            .get(group)
                            .filter(|_| prev_start == group * tenants_per_shard)
                    })
                    .filter(|prev| prev.tenants == chunk.len())
                {
                    match self.reuse_shard(prev, &file, generation) {
                        Ok(entry) => return Ok(entry),
                        // Fall through to a fresh write when the previous
                        // shard file cannot be linked or copied (e.g. swept
                        // by a concurrent process, or injected I/O faults) —
                        // reuse is an optimization, never a correctness
                        // dependency.
                        Err(_) => {
                            self.io.reuse_fallbacks.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            let json = serde_json::to_string(chunk).map_err(|e| OnlineError::Checkpoint {
                shard: Some(file.clone()),
                message: format!("serialize failure: {e}"),
            })?;
            let bytes = json.as_bytes();
            let checksum = format!("{:016x}", fnv1a64(bytes));
            self.write_atomic(&self.dir.join(&file), bytes)?;
            Ok(ShardEntry {
                file,
                tenants: chunk.len(),
                checksum,
                bytes: bytes.len() as u64,
                reused_from: None,
            })
        };
        let shard_results: Vec<Result<ShardEntry, OnlineError>> = match options.pool {
            Some(pool) => pool.parallel_map(&groups, options.workers, write_shard),
            None => parallel_map(&groups, options.workers, write_shard),
        };
        let shards = shard_results
            .into_iter()
            .collect::<Result<Vec<_>, OnlineError>>()?;

        let manifest = Manifest {
            version: CHECKPOINT_FORMAT_VERSION,
            generation,
            tenant_count: snapshots.len(),
            shards,
            bus: options.bus,
            round: options.round,
            residency: options.residency,
        };
        let manifest_json =
            serde_json::to_string(&manifest).map_err(|e| OnlineError::Checkpoint {
                shard: None,
                message: format!("manifest serialize failure: {e}"),
            })?;
        // Each generation directory carries its own manifest copy, written
        // before the root swap: if the root manifest is later corrupted,
        // restore can scan the retained generations and rebuild from the
        // newest one that still loads (`load_shards`' fallback path).
        self.write_atomic(&gen_dir.join("manifest.json"), manifest_json.as_bytes())?;
        // Durability ordering for power-loss safety: persist the shard
        // directory entries, then the manifest swap, and only then delete
        // the old generation. Without the directory fsyncs, the old
        // generation's unlinks could become durable before the new
        // manifest's rename, leaving the on-disk manifest pointing at
        // deleted shards after a crash.
        self.sync_dir(&gen_dir)?;
        self.write_atomic(&self.manifest_path(), manifest_json.as_bytes())?;
        self.sync_dir(&self.dir)?;
        // A generation whose shards were all freshly serialized from live
        // state is restorable by construction (every byte was just fsynced
        // and checksummed). One that reused shards only ever links the
        // *previous* generation's bytes, so when the caller vouches for
        // that generation (`previous_restorable`: it was the caller's own
        // previous write, itself restorable), the new generation is
        // restorable by induction — the chain is anchored at a fresh or
        // read-back-verified generation. The induction is memory-only and
        // cannot see out-of-band disk damage, so it is confirmed with a
        // stat of every reused shard file against the size recorded at
        // serialization: truncation and torn overwrites — the corruption
        // modes the retention guard exists for — change the size, and any
        // mismatch (or a storage backend without stat support) drops to
        // the full read-back in `sweep_old_generations`.
        let all_fresh = manifest.shards.iter().all(|s| s.reused_from.is_none());
        let restorable =
            all_fresh || (options.previous_restorable && self.reused_shard_sizes_intact(&manifest));
        self.io
            .last_write_restorable
            .store(restorable, Ordering::Relaxed);
        self.sweep_old_generations(&manifest, restorable);
        Ok(manifest)
    }

    /// Whether the last [`CheckpointStore::write_with`] on this store (or a
    /// clone sharing its counters) produced a generation known restorable
    /// without read-back — all shards fresh, or reuse anchored on a
    /// restorable previous write. Callers feed this into the next write's
    /// [`WriteOptions::previous_restorable`] to keep the induction going.
    pub fn last_write_restorable(&self) -> bool {
        self.io.last_write_restorable.load(Ordering::Relaxed)
    }

    /// Cheap on-disk confirmation of the restorability induction: every
    /// reused shard's file still has the size recorded when its bytes
    /// were serialized (one stat per reused shard, no reads). `false`
    /// when any size is unknown (pre-`bytes` manifest), unavailable
    /// (storage without stat support), or mismatched — all of which send
    /// the sweep to full read-back verification instead.
    fn reused_shard_sizes_intact(&self, manifest: &Manifest) -> bool {
        manifest
            .shards
            .iter()
            .filter(|entry| entry.reused_from.is_some())
            .all(|entry| {
                entry.bytes != 0
                    && self
                        .storage
                        .file_size(&self.dir.join(&entry.file))
                        .is_ok_and(|size| size == entry.bytes)
            })
    }

    /// Materialize a clean shard in the new generation directory by
    /// hard-linking (or copying) the previous generation's file, carrying
    /// the checksum forward. `reused_from` records the generation that
    /// actually serialized the bytes, chaining through repeated reuse.
    ///
    /// Durability: the linked/copied bytes were fsynced when their
    /// generation was written, and the new directory entry is covered by
    /// the generation-directory fsync that precedes the manifest swap.
    fn reuse_shard(
        &self,
        prev: &ShardEntry,
        file: &str,
        generation: u64,
    ) -> Result<ShardEntry, OnlineError> {
        let source = self.dir.join(&prev.file);
        let target = self.dir.join(file);
        if self.storage.hard_link(&source, &target).is_err() {
            // Cross-filesystem checkpoint dirs or FSes without hard links:
            // fall back to a byte copy (still cheaper than reserializing
            // hundreds of ring+model snapshots).
            self.storage.copy(&source, &target).map_err(|e| {
                io_err(
                    &format!("reuse {} -> {}", source.display(), target.display()),
                    &e,
                )
            })?;
        }
        Ok(ShardEntry {
            file: file.to_string(),
            tenants: prev.tenants,
            checksum: prev.checksum.clone(),
            bytes: prev.bytes,
            reused_from: Some(prev.reused_from.unwrap_or(generation - 1)),
        })
    }

    /// Best-effort, restorability-aware removal of old generation
    /// directories. The newest [`RetentionPolicy::keep_depth`] generations
    /// are retained (default: current plus previous); everything older is
    /// deleted **only after at least one kept generation verifies as
    /// restorable** (every shard's bytes re-hash to its manifest checksum).
    ///
    /// The guard closes the GC/scan-back race: after a corrupt write, the
    /// following generations can *reuse* (hard-link) the corrupt bytes, so
    /// every kept generation is equally broken — the old unconditional
    /// sweep would then delete exactly the older generation that
    /// [`CheckpointStore::load_shards`]'s scan-back still needed. When no
    /// kept generation verifies, nothing is swept, the refusal is counted
    /// in [`CheckpointIoStats::retention_verify_failures`], and a note
    /// names what failed so the fleet can self-heal with a full rewrite.
    ///
    /// `current_verified` short-circuits the read-back when the generation
    /// just written is trustworthy by construction (all shards freshly
    /// serialized). A failure to delete only wastes disk, never
    /// correctness.
    fn sweep_old_generations(&self, current: &Manifest, current_verified: bool) {
        let keep_depth = self.retention.keep_depth.max(1);
        let cutoff = (current.generation + 1).saturating_sub(keep_depth);
        let Ok(names) = self.storage.read_dir_names(&self.dir) else {
            return;
        };
        let doomed: Vec<String> = names
            .into_iter()
            .filter(|name| parse_generation_dir(name).is_some_and(|g| g < cutoff))
            .collect();
        if doomed.is_empty() {
            return;
        }
        let verified = current_verified || self.any_kept_generation_verifies(current, cutoff);
        if !verified {
            self.io
                .retention_verify_failures
                .fetch_add(1, Ordering::Relaxed);
            let note = format!(
                "retention guard: no generation in {}..={} verifies as restorable; \
                 keeping {} older generation(s) for scan-back recovery",
                cutoff,
                current.generation,
                doomed.len()
            );
            self.io
                .notes
                .lock()
                .expect("checkpoint note lock poisoned")
                .push(note);
            return;
        }
        for name in doomed {
            let _ = self.storage.remove_dir_all(&self.dir.join(&name));
        }
    }

    /// Whether any kept generation (`cutoff..=current`) is fully
    /// restorable: every shard's bytes re-hash to its manifest checksum.
    /// Checksum-only — no JSON parse — so the read-back costs one pass over
    /// the kept shard files, and only runs on the (rare) sweeps that follow
    /// shard reuse.
    fn any_kept_generation_verifies(&self, current: &Manifest, cutoff: u64) -> bool {
        let verify = |manifest: &Manifest| {
            manifest.shards.iter().all(|entry| {
                self.storage
                    .read(&self.dir.join(&entry.file))
                    .is_ok_and(|bytes| format!("{:016x}", fnv1a64(&bytes)) == entry.checksum)
            })
        };
        if verify(current) {
            return true;
        }
        self.fallback_generations(Some(current.generation))
            .iter()
            .filter(|(generation, _)| *generation >= cutoff)
            .any(|(_, manifest)| verify(manifest))
    }

    /// Load one shard, verifying its checksum before parsing. Every failure
    /// is scoped to the shard's file name.
    pub fn load_shard(&self, entry: &ShardEntry) -> Result<Vec<TenantSnapshot>, OnlineError> {
        let shard_err = |message: String| OnlineError::Checkpoint {
            shard: Some(entry.file.clone()),
            message,
        };
        let path = self.dir.join(&entry.file);
        let bytes = self
            .storage
            .read(&path)
            .map_err(|e| shard_err(format!("read failure: {e}")))?;
        let computed = format!("{:016x}", fnv1a64(&bytes));
        if computed != entry.checksum {
            return Err(shard_err(format!(
                "checksum mismatch: manifest says {}, file hashes to {computed} \
                 (truncated or corrupt shard)",
                entry.checksum
            )));
        }
        let text =
            std::str::from_utf8(&bytes).map_err(|e| shard_err(format!("invalid UTF-8: {e}")))?;
        let snapshots: Vec<TenantSnapshot> =
            serde_json::from_str(text).map_err(|e| shard_err(format!("parse failure: {e}")))?;
        if snapshots.len() != entry.tenants {
            return Err(shard_err(format!(
                "shard holds {} tenants, manifest says {}",
                snapshots.len(),
                entry.tenants
            )));
        }
        Ok(snapshots)
    }

    /// Load every shard of the current manifest across up to `workers`
    /// threads, returning one `Result` per shard (in manifest order) so a
    /// corrupt shard leaves the others loadable and attributable.
    ///
    /// **Self-healing fallback:** when the current generation cannot be
    /// fully loaded (unreadable root manifest, or any corrupt shard), the
    /// retained older generations are scanned newest-first via their
    /// per-generation manifest copies; the newest one that loads completely
    /// is returned instead, with an error-level note naming the generation
    /// that was skipped (also counted in [`CheckpointStore::io_stats`] and
    /// queued for [`CheckpointStore::take_notes`]). Only when no generation
    /// is restorable does the original failure surface.
    #[allow(clippy::type_complexity)]
    pub fn load_shards(
        &self,
        workers: usize,
    ) -> Result<(Manifest, Vec<Result<Vec<TenantSnapshot>, OnlineError>>), OnlineError> {
        let primary = match self.read_manifest() {
            Ok(manifest) => {
                let results =
                    parallel_map(&manifest.shards, workers, |entry| self.load_shard(entry));
                if results.iter().all(Result::is_ok) {
                    return Ok((manifest, results));
                }
                Ok((manifest, results))
            }
            Err(e) => Err(e),
        };
        let (current, broken) = match &primary {
            Ok((manifest, results)) => {
                let first = results
                    .iter()
                    .find_map(|r| r.as_ref().err())
                    .expect("a shard failure put us on the fallback path");
                (Some(manifest.generation), first.to_string())
            }
            Err(e) => (None, e.to_string()),
        };
        for (generation, manifest) in self.fallback_generations(current) {
            let results = parallel_map(&manifest.shards, workers, |entry| self.load_shard(entry));
            if results.iter().all(Result::is_ok) {
                let skipped = current.map_or_else(
                    || "current generation".to_string(),
                    |g| format!("generation {g}"),
                );
                let note = format!(
                    "checkpoint fallback: {skipped} is not restorable ({broken}); \
                     restored generation {generation} instead"
                );
                eprintln!("ERROR: {note}");
                self.io.generation_fallbacks.fetch_add(1, Ordering::Relaxed);
                self.io
                    .notes
                    .lock()
                    .expect("checkpoint note lock poisoned")
                    .push(note);
                return Ok((manifest, results));
            }
        }
        primary
    }

    /// Older generations that might still be restorable, newest first:
    /// every retained `gen-*` directory with a readable manifest copy,
    /// strictly older than `current` (a generation newer than the root
    /// manifest was never swapped in and must not be restored).
    fn fallback_generations(&self, current: Option<u64>) -> Vec<(u64, Manifest)> {
        let Ok(names) = self.storage.read_dir_names(&self.dir) else {
            return Vec::new();
        };
        let mut generations: Vec<u64> = names
            .iter()
            .filter_map(|name| parse_generation_dir(name))
            .filter(|&g| current.is_none_or(|cur| g < cur))
            .collect();
        generations.sort_unstable_by(|a, b| b.cmp(a));
        generations
            .into_iter()
            .filter_map(|generation| {
                let path = self
                    .dir
                    .join(format!("gen-{generation:06}"))
                    .join("manifest.json");
                let bytes = self.storage.read(&path).ok()?;
                let text = std::str::from_utf8(&bytes).ok()?;
                let manifest = Self::parse_manifest(text).ok()?;
                (manifest.generation == generation).then_some((generation, manifest))
            })
            .collect()
    }

    /// Load the complete checkpoint: every tenant of every shard, in tenant
    /// order. The first shard failure aborts the load with an error naming
    /// that shard.
    pub fn load(&self, workers: usize) -> Result<Vec<TenantSnapshot>, OnlineError> {
        let (manifest, per_shard) = self.load_shards(workers)?;
        let mut all = Vec::with_capacity(manifest.tenant_count);
        for result in per_shard {
            all.extend(result?);
        }
        Ok(all)
    }
}

/// Format version of hibernation page files.
pub const HIBERNATION_FORMAT_VERSION: u32 = 1;

/// On-disk envelope of one hibernated tenant's page file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HibernatedTenant {
    version: u32,
    tenant: u64,
    scaler: ScalerSnapshot,
}

/// Proof of a successful page-out: the content checksum the fleet must
/// present to page the tenant back in (a paged-out tenant's only in-memory
/// trace of its state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageReceipt {
    /// FNV-1a 64-bit checksum of the page file's bytes.
    pub checksum: u64,
}

/// Per-tenant page files for the fleet's hibernating (cold) tier.
///
/// Unlike generation checkpoints — whole-fleet, round-boundary,
/// crash-recovery artifacts — pages are *per-tenant* and written exactly
/// when a tenant goes cold: `tenant-{id:08}.json`, one atomic temp+rename
/// write each, overwritten in place on the next hibernation and never
/// deleted (a stale page is unreachable without its receipt). Page-in
/// verifies the receipt checksum before parsing, so a torn or tampered
/// page surfaces as a checkpoint error and the tenant stays paged (the
/// wake trigger persists, so the read retries next round).
#[derive(Debug, Clone)]
pub struct HibernationStore {
    dir: PathBuf,
    storage: Arc<dyn CheckpointStorage>,
}

impl HibernationStore {
    /// Open (or designate) a page directory on the real filesystem. The
    /// directory is created on first page-out, not here.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_storage(dir, Arc::new(OsStorage))
    }

    /// [`HibernationStore::new`] on an explicit storage implementation
    /// (fault injection in chaos tests).
    pub fn with_storage(dir: impl Into<PathBuf>, storage: Arc<dyn CheckpointStorage>) -> Self {
        Self {
            dir: dir.into(),
            storage,
        }
    }

    /// The page directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn page_path(&self, tenant: u64) -> PathBuf {
        self.dir.join(format!("tenant-{tenant:08}.json"))
    }

    /// Write `tenant`'s scaler snapshot to its page file (atomic
    /// temp+rename, retried with bounded backoff like shard writes) and
    /// return the receipt that pages it back in.
    pub fn page_out(
        &self,
        tenant: u64,
        scaler: &ScalerSnapshot,
    ) -> Result<PageReceipt, OnlineError> {
        self.storage
            .create_dir_all(&self.dir)
            .map_err(|e| io_err(&format!("create {}", self.dir.display()), &e))?;
        let envelope = HibernatedTenant {
            version: HIBERNATION_FORMAT_VERSION,
            tenant,
            scaler: scaler.clone(),
        };
        let json = serde_json::to_string(&envelope).map_err(|e| OnlineError::Checkpoint {
            shard: None,
            message: format!("page serialize failure (tenant {tenant}): {e}"),
        })?;
        let bytes = json.as_bytes();
        let checksum = fnv1a64(bytes);
        let path = self.page_path(tenant);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let mut last = None;
        for attempt in 0..WRITE_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(RETRY_BACKOFF * attempt);
            }
            if let Err(e) = self.storage.write(&tmp, bytes) {
                last = Some(io_err(&format!("write {}", tmp.display()), &e));
                continue;
            }
            match self.storage.rename(&tmp, &path) {
                Ok(()) => return Ok(PageReceipt { checksum }),
                Err(e) => {
                    last = Some(io_err(
                        &format!("rename {} -> {}", tmp.display(), path.display()),
                        &e,
                    ));
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Read `tenant`'s page file back, verifying the receipt checksum
    /// before parsing. Every failure names the page file.
    pub fn page_in(
        &self,
        tenant: u64,
        receipt: PageReceipt,
    ) -> Result<ScalerSnapshot, OnlineError> {
        let path = self.page_path(tenant);
        let page_err = |message: String| OnlineError::Checkpoint {
            shard: Some(path.display().to_string()),
            message,
        };
        let bytes = self
            .storage
            .read(&path)
            .map_err(|e| page_err(format!("read failure: {e}")))?;
        let computed = fnv1a64(&bytes);
        if computed != receipt.checksum {
            return Err(page_err(format!(
                "checksum mismatch: receipt says {:016x}, file hashes to {computed:016x} \
                 (torn or stale page)",
                receipt.checksum
            )));
        }
        let text =
            std::str::from_utf8(&bytes).map_err(|e| page_err(format!("invalid UTF-8: {e}")))?;
        let envelope: HibernatedTenant =
            serde_json::from_str(text).map_err(|e| page_err(format!("parse failure: {e}")))?;
        if envelope.version == 0 || envelope.version > HIBERNATION_FORMAT_VERSION {
            return Err(OnlineError::UnsupportedSnapshotVersion {
                found: envelope.version,
                supported: HIBERNATION_FORMAT_VERSION,
            });
        }
        if envelope.tenant != tenant {
            return Err(page_err(format!(
                "page holds tenant {}, expected {tenant}",
                envelope.tenant
            )));
        }
        Ok(envelope.scaler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaler::tests::fast_config;
    use crate::scaler::OnlineScaler;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("robustscaler-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn some_snapshots(n: u64) -> Vec<TenantSnapshot> {
        (0..n)
            .map(|id| {
                let mut scaler = OnlineScaler::with_seed(fast_config(), 0.0, 1000 + id).unwrap();
                let arrivals: Vec<f64> = (0..200).map(|i| i as f64 * 3.0).collect();
                scaler.ingest_batch(&arrivals);
                scaler.plan_round(600.0, 0).unwrap();
                TenantSnapshot::new(id, scaler.snapshot())
            })
            .collect()
    }

    #[test]
    fn write_read_round_trip_with_sharding() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::new(&dir);
        assert!(!store.exists());
        let snapshots = some_snapshots(5);
        let manifest = store.write(&snapshots, 2, 2).unwrap();
        assert!(store.exists());
        assert_eq!(manifest.generation, 1);
        assert_eq!(manifest.tenant_count, 5);
        assert_eq!(manifest.shards.len(), 3); // 2 + 2 + 1
        let loaded = store.load(3).unwrap();
        assert_eq!(loaded, snapshots);
        // A second write bumps the generation; the previous generation is
        // retained as the restore fallback.
        let manifest2 = store.write(&snapshots, 2, 1).unwrap();
        assert_eq!(manifest2.generation, 2);
        assert!(dir.join("gen-000001").exists());
        assert_eq!(store.load(1).unwrap(), snapshots);
        // A third write sweeps generation 1 (only current + previous stay).
        let manifest3 = store.write(&snapshots, 2, 1).unwrap();
        assert_eq!(manifest3.generation, 3);
        assert!(!dir.join("gen-000001").exists());
        assert!(dir.join("gen-000002").exists());
        assert_eq!(store.load(1).unwrap(), snapshots);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_shard_is_detected_and_named_others_loadable() {
        let dir = temp_dir("corrupt");
        let store = CheckpointStore::new(&dir);
        let snapshots = some_snapshots(4);
        let manifest = store.write(&snapshots, 2, 1).unwrap();
        // Truncate the first shard.
        let victim = dir.join(&manifest.shards[0].file);
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        let (_, per_shard) = store.load_shards(2).unwrap();
        match &per_shard[0] {
            Err(OnlineError::Checkpoint {
                shard: Some(shard),
                message,
            }) => {
                assert_eq!(shard, &manifest.shards[0].file);
                assert!(message.contains("checksum mismatch"), "{message}");
            }
            other => panic!("expected a checksum error, got {other:?}"),
        }
        // The untouched shard still loads.
        assert_eq!(per_shard[1].as_ref().unwrap().len(), 2);
        // And the all-or-nothing load names the bad shard.
        let err = store.load(2).unwrap_err();
        assert!(err.to_string().contains(&manifest.shards[0].file));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_shards_are_reused_across_generations() {
        let dir = temp_dir("reuse");
        let store = CheckpointStore::new(&dir);
        let mut snapshots = some_snapshots(5);
        let first = store.write(&snapshots, 2, 1).unwrap();
        assert!(first.shards.iter().all(|s| s.reused_from.is_none()));

        // Generation 2: only group 0 changed.
        snapshots[0].scaler.stats.planning_rounds += 1;
        let options = WriteOptions {
            tenants_per_shard: 2,
            workers: 1,
            clean_shards: Some(&[false, true, true]),
            ..WriteOptions::default()
        };
        let second = store.write_with(&snapshots, &options).unwrap();
        assert_eq!(second.generation, 2);
        assert_eq!(second.shards[0].reused_from, None);
        assert_eq!(second.shards[1].reused_from, Some(1));
        assert_eq!(second.shards[2].reused_from, Some(1));
        assert_eq!(second.shards[1].checksum, first.shards[1].checksum);

        // Generation 3: reuse chains back to the writing generation.
        let third = store.write_with(&snapshots, &options).unwrap();
        assert_eq!(third.shards[1].reused_from, Some(1));
        assert_eq!(third.shards[0].reused_from, None);

        // The reused files are self-contained in the new generation:
        // generations beyond the retained previous one are swept, yet
        // everything still loads and checksum-verifies.
        assert!(!dir.join("gen-000001").exists());
        assert!(dir.join("gen-000002").exists());
        let loaded = store.load(2).unwrap();
        assert_eq!(loaded, snapshots);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_or_mismatched_clean_flags_fall_back_to_fresh_writes() {
        let dir = temp_dir("reuse-fallback");
        let store = CheckpointStore::new(&dir);
        let snapshots = some_snapshots(4);
        store.write(&snapshots, 2, 1).unwrap();
        // Wrong flag length: ignored, everything rewritten.
        let options = WriteOptions {
            tenants_per_shard: 2,
            workers: 1,
            clean_shards: Some(&[true]),
            ..WriteOptions::default()
        };
        let manifest = store.write_with(&snapshots, &options).unwrap();
        assert!(manifest.shards.iter().all(|s| s.reused_from.is_none()));
        // Different sharding than the previous generation: group sizes no
        // longer line up, so "clean" groups are rewritten, not mislinked.
        let options = WriteOptions {
            tenants_per_shard: 3,
            workers: 1,
            clean_shards: Some(&[true, true]),
            ..WriteOptions::default()
        };
        let manifest = store.write_with(&snapshots, &options).unwrap();
        assert!(manifest.shards.iter().all(|s| s.reused_from.is_none()));
        assert_eq!(store.load(1).unwrap(), snapshots);
        let _ = fs::remove_dir_all(&dir);

        // The count-match trap: [2,2,2] -> [4,2] over 6 tenants. New group 1
        // holds tenants 4..6 with the same tenant *count* as old shard 1
        // (tenants 2..4); only the offset-alignment check keeps the reuse
        // path from hard-linking the wrong tenants' bytes.
        let dir = temp_dir("reuse-fallback-regroup");
        let store = CheckpointStore::new(&dir);
        let snapshots = some_snapshots(6);
        store.write(&snapshots, 2, 1).unwrap();
        let options = WriteOptions {
            tenants_per_shard: 4,
            workers: 1,
            clean_shards: Some(&[true, true]),
            ..WriteOptions::default()
        };
        let manifest = store.write_with(&snapshots, &options).unwrap();
        assert_eq!(manifest.shards.len(), 2);
        assert!(
            manifest.shards.iter().all(|s| s.reused_from.is_none()),
            "misaligned count-matching shard was reused: {:?}",
            manifest.shards
        );
        assert_eq!(store.load(1).unwrap(), snapshots);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_current_generation_falls_back_to_previous() {
        let dir = temp_dir("genfall");
        let store = CheckpointStore::new(&dir);
        let mut snapshots = some_snapshots(4);
        let first = store.write(&snapshots, 2, 1).unwrap();
        let first_loaded = store.load(2).unwrap();
        snapshots[0].scaler.stats.planning_rounds += 1;
        let second = store.write(&snapshots, 2, 1).unwrap();
        assert_eq!(second.generation, 2);
        // Corrupt a shard of the current generation: the load falls back to
        // the retained generation 1, names what it skipped, and counts it.
        let victim = dir.join(&second.shards[1].file);
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        let (manifest, per_shard) = store.load_shards(2).unwrap();
        assert_eq!(manifest.generation, first.generation);
        assert!(per_shard.iter().all(Result::is_ok));
        assert_eq!(store.io_stats().generation_fallbacks, 1);
        let notes = store.take_notes();
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("generation 2"), "{}", notes[0]);
        assert!(notes[0].contains("restored generation 1"), "{}", notes[0]);
        assert!(store.take_notes().is_empty());
        assert_eq!(store.load(2).unwrap(), first_loaded);
        // A corrupt ROOT manifest scans all retained generations newest
        // first; generation 2 is still corrupt, so generation 1 wins again.
        fs::write(dir.join("manifest.json"), b"{ not json").unwrap();
        let (manifest, per_shard) = store.load_shards(2).unwrap();
        assert_eq!(manifest.generation, 1);
        assert!(per_shard.iter().all(Result::is_ok));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_manifests_without_bus_or_reuse_fields_still_load() {
        let dir = temp_dir("v1-compat");
        let store = CheckpointStore::new(&dir);
        let snapshots = some_snapshots(2);
        store.write(&snapshots, 8, 1).unwrap();
        // Rewrite the manifest the way a v1 binary would have: no `bus`,
        // no `reused_from`, version 1 — field-for-field what PR 4 wrote.
        let manifest = store.read_manifest().unwrap();
        let shard = &manifest.shards[0];
        let v1 = format!(
            "{{\"version\":1,\"generation\":{},\"tenant_count\":{},\"shards\":[{{\
             \"file\":\"{}\",\"tenants\":{},\"checksum\":\"{}\"}}]}}",
            manifest.generation, manifest.tenant_count, shard.file, shard.tenants, shard.checksum
        );
        fs::write(dir.join("manifest.json"), v1.as_bytes()).unwrap();
        let back = store.read_manifest().unwrap();
        assert_eq!(back.version, 1);
        assert_eq!(back.bus, None);
        assert_eq!(back.shards[0].reused_from, None);
        assert_eq!(store.load(1).unwrap(), snapshots);
        // And the next write continues the generation sequence.
        let next = store.write(&snapshots, 8, 1).unwrap();
        assert_eq!(next.generation, manifest.generation + 1);
        assert_eq!(next.version, CHECKPOINT_FORMAT_VERSION);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_version_and_consistency_are_checked() {
        let dir = temp_dir("manifest");
        let store = CheckpointStore::new(&dir);
        let snapshots = some_snapshots(2);
        store.write(&snapshots, 8, 1).unwrap();
        let mut manifest = store.read_manifest().unwrap();
        manifest.version += 1;
        fs::write(
            dir.join("manifest.json"),
            serde_json::to_string(&manifest).unwrap().as_bytes(),
        )
        .unwrap();
        assert!(matches!(
            store.read_manifest(),
            Err(OnlineError::UnsupportedSnapshotVersion { .. })
        ));
        manifest.version -= 1;
        manifest.tenant_count += 1;
        fs::write(
            dir.join("manifest.json"),
            serde_json::to_string(&manifest).unwrap().as_bytes(),
        )
        .unwrap();
        assert!(store.read_manifest().is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_refuses_to_clobber_an_unreadable_manifest() {
        let dir = temp_dir("clobber");
        let store = CheckpointStore::new(&dir);
        let snapshots = some_snapshots(2);
        let first = store.write(&snapshots, 8, 1).unwrap();
        assert_eq!(first.generation, 1);
        // A corrupt (but present) manifest must fail the next write loudly —
        // never silently restart at generation 1 and sweep the directory.
        fs::write(dir.join("manifest.json"), b"{ not json").unwrap();
        assert!(store.write(&snapshots, 8, 1).is_err());
        assert!(dir.join(&first.shards[0].file).exists());
        // Same for a manifest from a newer format version.
        let mut manifest = first.clone();
        manifest.version = CHECKPOINT_FORMAT_VERSION + 1;
        fs::write(
            dir.join("manifest.json"),
            serde_json::to_string(&manifest).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            store.write(&snapshots, 8, 1),
            Err(OnlineError::UnsupportedSnapshotVersion { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_reports_cleanly() {
        let store = CheckpointStore::new(temp_dir("missing"));
        assert!(!store.exists());
        assert!(matches!(
            store.read_manifest(),
            Err(OnlineError::Checkpoint { shard: None, .. })
        ));
    }
}
