//! Online multi-tenant serving layer for the RobustScaler reproduction.
//!
//! The offline pipeline (train → forecast → Monte Carlo scaling plan) runs
//! once over a frozen trace. A production autoscaler instead runs a
//! *serving loop*: arrivals stream in continuously, the model goes stale
//! and must be refitted, and one process plans for many tenants at once.
//! This crate closes that gap in three layers:
//!
//! * [`ingest::ArrivalBus`] — the event-driven ingestion runtime: one
//!   bounded arrival queue per tenant (lock-sharded by tenant group, with
//!   back-pressure accounting), filled by producers on any thread and
//!   drained at round boundaries in timestamp order;
//! * [`scaler::OnlineScaler`] — one tenant's loop: batched ingestion
//!   into a bounded [`CountRing`](robustscaler_timeseries::ring::CountRing)
//!   (`ingest_batch` → the ring's bulk append, bit-identical to the
//!   per-arrival path), drift detection against the live forecast,
//!   rolling NHPP refits through `RobustScalerPipeline::train_on_counts`,
//!   and per-round plans via the zero-copy `plan_window_with` machinery;
//! * [`fleet::TenantFleet`] — hundreds of independent tenants sharded
//!   across a persistent `robustscaler_parallel::WorkerPool` (threads
//!   parked between rounds); each round worker drains its tenants'
//!   queues and then plans, one parallel pass, with per-tenant
//!   deterministic RNG seeds so fleet output is identical for any worker
//!   count;
//! * [`sharing`] — opt-in cross-tenant batched planning: tenants whose
//!   live forecasts quantize to the same [`sharing::ClusterKey`] plan
//!   against one shared arrival-sample matrix per cluster instead of each
//!   sampling privately (off by default; off is bit-identical to a build
//!   without it);
//! * [`harness`] — the closed-loop validation harness: replay a trace
//!   through the bus → `OnlineScaler` → `Simulator` end to end and report
//!   the paper's metrics (hit rate, `rt_avg`, total/relative cost) plus
//!   queue health, including a kill-and-restore replay mode that proves
//!   checkpoint equivalence;
//! * [`checkpoint`] — durable fleet state: versioned scaler snapshots —
//!   including each tenant's *undrained arrival queue* — persisted as
//!   sharded, checksummed, atomically swapped checkpoint files with
//!   incremental (dirty-shard-only) generations, so a fleet process can
//!   restart mid-burst without losing any tenant's training window or
//!   queued arrivals — and resume planning bit-identically;
//! * [`replay`] — recorded-trace replay: sessions serialize every
//!   arrival, plan, refit and queue drain to a versioned JSONL trace,
//!   and a replay engine re-executes the session from the header and
//!   validates the regenerated stream bit-for-bit (strict) or against
//!   QoS policy bands (lenient) — the regression substrate CI gates
//!   perf refactors on.
//!
//! ## Determinism guarantees
//!
//! Given a fixed configuration (including seeds) and a fixed queue state
//! at every round boundary, every plan is bit-identical across runs,
//! worker counts, execution flavours (pool vs spawned threads) and
//! tenant-shard layouts: tenants own all of their mutable state (ring,
//! model, planner scratch, RNG), and the only intra-tenant parallelism —
//! Monte Carlo replication sampling — derives per-path RNG streams.
//! Bus-fed ingestion (enqueue + round-boundary drain) is bit-identical to
//! routing every arrival synchronously through `ingest`; producers that
//! quiesce at round boundaries therefore keep the whole pipeline
//! deterministic while overlapping enqueue with planning.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod error;
pub mod faults;
pub mod fleet;
pub mod harness;
pub mod ingest;
pub mod replay;
pub mod scaler;
pub mod sharing;

pub use checkpoint::{
    CheckpointIoStats, CheckpointStorage, CheckpointStore, HibernationStore, Manifest, OsStorage,
    PageReceipt, QuarantineState, ResidencySnapshot, RetentionPolicy, ShardEntry,
    SupervisionSnapshot, TenantSnapshot, WriteOptions, CHECKPOINT_FORMAT_VERSION,
    DEFAULT_TENANTS_PER_SHARD,
};
pub use error::OnlineError;
pub use faults::{FaultInjector, FaultPlan, FaultyStorage, IoOp, PlanFault};
pub use fleet::{
    FleetRound, RecoveryAction, ResidencyConfig, ResidencyStats, RestoreOptions, SupervisionStats,
    SupervisorConfig, Tenant, TenantFleet, TenantHealth, TenantOutcome,
};
pub use harness::{
    run_closed_loop, run_closed_loop_recorded, run_closed_loop_with_restart, HarnessConfig,
    HarnessReport, OnlinePolicy,
};
pub use ingest::{
    ArrivalBus, BusConfig, QueueStats, DEFAULT_QUEUE_CAPACITY, DEFAULT_TENANTS_PER_GROUP,
};
pub use replay::{
    model_fingerprint, replay_path, replay_trace, FileSink, MemorySink, PlanRecord, PolicyBands,
    QosRecord, RecordedTrace, RefitRecord, RefitTrigger, ReplayMode, ReplayReport, ResidencyEvent,
    ScalerEvent, SessionKind, TraceHeader, TraceRecord, TraceRecorder, TraceSink, TraceSummary,
    WakeReason, TRACE_FORMAT_VERSION,
};
pub use scaler::{
    OnlineConfig, OnlineScaler, OnlineStats, ScalerSnapshot, SCALER_SNAPSHOT_VERSION,
};
pub use sharing::{ClusterKey, PlanCacheKey, PlanKey, SharingConfig, SHARING_PROBE_BUCKETS};
