//! Online multi-tenant serving layer for the RobustScaler reproduction.
//!
//! The offline pipeline (train → forecast → Monte Carlo scaling plan) runs
//! once over a frozen trace. A production autoscaler instead runs a
//! *serving loop*: arrivals stream in continuously, the model goes stale
//! and must be refitted, and one process plans for many tenants at once.
//! This crate closes that gap in three layers:
//!
//! * [`scaler::OnlineScaler`] — one tenant's loop: incremental ingestion
//!   into a bounded [`CountRing`](robustscaler_timeseries::ring::CountRing),
//!   drift detection against the live forecast, rolling NHPP refits
//!   through `RobustScalerPipeline::train_on_counts`, and per-round plans
//!   via the zero-copy `plan_window_with` machinery;
//! * [`fleet::TenantFleet`] — hundreds of independent tenants sharded
//!   across worker threads (`robustscaler-parallel`), with per-tenant
//!   deterministic RNG seeds so fleet output is identical for any worker
//!   count;
//! * [`harness`] — the closed-loop validation harness: replay a trace
//!   through `OnlineScaler` → `Simulator` end to end and report the
//!   paper's metrics (hit rate, `rt_avg`, total/relative cost), including
//!   a kill-and-restore replay mode that proves checkpoint equivalence;
//! * [`checkpoint`] — durable fleet state: versioned scaler snapshots
//!   persisted as sharded, checksummed, atomically swapped checkpoint
//!   files, so a fleet process can restart without losing any tenant's
//!   training window — and resume planning bit-identically.
//!
//! ## Determinism guarantees
//!
//! Given a fixed configuration (including seeds) and a fixed ingestion and
//! round sequence, every plan is bit-identical across runs, worker counts
//! and tenant-shard layouts: tenants own all of their mutable state (ring,
//! model, planner scratch, RNG), and the only intra-tenant parallelism —
//! Monte Carlo replication sampling — derives per-path RNG streams.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod error;
pub mod fleet;
pub mod harness;
pub mod scaler;

pub use checkpoint::{
    CheckpointStore, Manifest, ShardEntry, TenantSnapshot, CHECKPOINT_FORMAT_VERSION,
    DEFAULT_TENANTS_PER_SHARD,
};
pub use error::OnlineError;
pub use fleet::{Tenant, TenantFleet};
pub use harness::{
    run_closed_loop, run_closed_loop_with_restart, HarnessConfig, HarnessReport, OnlinePolicy,
};
pub use scaler::{
    OnlineConfig, OnlineScaler, OnlineStats, ScalerSnapshot, SCALER_SNAPSHOT_VERSION,
};
