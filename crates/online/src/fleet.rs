//! Multi-tenant fleet planning: hundreds of independent [`OnlineScaler`]s
//! sharded across worker threads.
//!
//! Each tenant owns its scaler — ring buffer, model, planner scratch and
//! RNG — so tenants never share mutable state and a round's output is a
//! pure function of (per-tenant seed, ingestion history, round sequence).
//! The fleet shards the tenant vector into contiguous chunks via
//! `robustscaler_parallel::map_chunks_mut`; because chunk outputs are
//! collected in chunk order and no randomness crosses tenant boundaries,
//! the result is **identical for any worker count**, which the online
//! proptests pin.

use crate::checkpoint::{CheckpointStore, Manifest, TenantSnapshot, DEFAULT_TENANTS_PER_SHARD};
use crate::error::OnlineError;
use crate::scaler::{OnlineConfig, OnlineScaler, OnlineStats};
use robustscaler_parallel::{available_threads, map_chunks_mut, parallel_map};
use robustscaler_scaling::PlanningRound;
use std::path::Path;

/// SplitMix64 — the same stateless mixer the Monte Carlo sampler uses to
/// derive per-path streams; here it derives per-tenant RNG seeds from the
/// fleet seed so tenant plans are decorrelated but reproducible.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One tenant: a stable identifier plus its serving scaler.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Stable tenant identifier (index at fleet construction).
    pub id: u64,
    /// The tenant's serving scaler.
    pub scaler: OnlineScaler,
}

/// A fleet of independent tenants planned concurrently.
#[derive(Debug, Clone)]
pub struct TenantFleet {
    tenants: Vec<Tenant>,
    workers: usize,
}

impl TenantFleet {
    /// Build a fleet of `tenant_count` tenants sharing one configuration.
    ///
    /// Every tenant gets its own deterministic RNG seed derived from
    /// `base_seed` and its id, and its own ring anchored at `origin`. The
    /// worker budget defaults to the machine's available parallelism.
    pub fn new(
        config: &OnlineConfig,
        origin: f64,
        tenant_count: usize,
        base_seed: u64,
    ) -> Result<Self, OnlineError> {
        if tenant_count == 0 {
            return Err(OnlineError::InvalidConfig(
                "a fleet needs at least one tenant",
            ));
        }
        let tenants = (0..tenant_count as u64)
            .map(|id| {
                let seed = splitmix64(base_seed.wrapping_add(id));
                Ok(Tenant {
                    id,
                    scaler: OnlineScaler::with_seed(*config, origin, seed)?,
                })
            })
            .collect::<Result<Vec<_>, OnlineError>>()?;
        Ok(Self {
            tenants,
            workers: available_threads(),
        })
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the fleet has no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The current worker-thread budget.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Set the worker-thread budget (≥ 1). Plans do not depend on it.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Borrow a tenant by index.
    pub fn tenant(&self, index: usize) -> Option<&Tenant> {
        self.tenants.get(index)
    }

    /// Mutably borrow a tenant by index (ingestion is routed by the
    /// caller's sharding, e.g. a per-tenant arrival queue).
    pub fn tenant_mut(&mut self, index: usize) -> Option<&mut Tenant> {
        self.tenants.get_mut(index)
    }

    /// Ingest one arrival for tenant `index`.
    pub fn ingest(&mut self, index: usize, arrival: f64) -> Result<(), OnlineError> {
        let tenant = self
            .tenants
            .get_mut(index)
            .ok_or(OnlineError::InvalidConfig("tenant index out of range"))?;
        tenant.scaler.ingest(arrival);
        Ok(())
    }

    /// Run one planning round for every tenant at time `now`.
    ///
    /// `covered[i]` is tenant `i`'s count of upcoming arrivals already
    /// covered by scheduled/pending/ready instances. Tenants are planned in
    /// parallel across the worker budget; the output vector is ordered by
    /// tenant index and is identical for any worker count.
    ///
    /// Tenant failures are isolated: a tenant whose round errors (still
    /// warming up, failed refit, ...) yields `Err` *in its own slot* while
    /// every other tenant's plan is returned normally — one bad tenant must
    /// never take down a round for the hundreds sharing the process. The
    /// outer `Err` is reserved for caller mistakes (wrong `covered` length).
    #[allow(clippy::type_complexity)]
    pub fn run_round(
        &mut self,
        now: f64,
        covered: &[usize],
    ) -> Result<Vec<Result<PlanningRound, OnlineError>>, OnlineError> {
        if covered.len() != self.tenants.len() {
            return Err(OnlineError::InvalidConfig(
                "covered must have one entry per tenant",
            ));
        }
        let workers = self.workers;
        let per_chunk: Vec<Vec<Result<PlanningRound, OnlineError>>> =
            map_chunks_mut(&mut self.tenants, workers, |start, chunk| {
                chunk
                    .iter_mut()
                    .enumerate()
                    .map(|(i, tenant)| tenant.scaler.plan_round(now, covered[start + i]))
                    .collect()
            });
        Ok(per_chunk.into_iter().flatten().collect())
    }

    /// One planning round with the same `covered` count for every tenant.
    #[allow(clippy::type_complexity)]
    pub fn run_round_uniform(
        &mut self,
        now: f64,
        covered: usize,
    ) -> Result<Vec<Result<PlanningRound, OnlineError>>, OnlineError> {
        let covered = vec![covered; self.tenants.len()];
        self.run_round(now, &covered)
    }

    /// Checkpoint the whole fleet to `dir` with the default shard size
    /// ([`DEFAULT_TENANTS_PER_SHARD`] tenants per shard file). See
    /// [`TenantFleet::checkpoint_sharded`].
    pub fn checkpoint(&self, dir: impl AsRef<Path>) -> Result<Manifest, OnlineError> {
        self.checkpoint_sharded(dir, DEFAULT_TENANTS_PER_SHARD)
    }

    /// Checkpoint the whole fleet to `dir`, sharded into groups of
    /// `tenants_per_shard` consecutive tenants per file.
    ///
    /// Tenant snapshots are taken and serialized in parallel across the
    /// fleet's worker budget; the write is crash-safe (a new generation
    /// becomes current only at the final atomic manifest rename, so a crash
    /// mid-checkpoint leaves the previous checkpoint intact). The snapshot
    /// captures per-tenant seeds, RNG stream positions, serving counters
    /// and refit deadlines, so a fleet restored from the checkpoint plans
    /// bit-identically to one that never stopped.
    pub fn checkpoint_sharded(
        &self,
        dir: impl AsRef<Path>,
        tenants_per_shard: usize,
    ) -> Result<Manifest, OnlineError> {
        let snapshots: Vec<TenantSnapshot> =
            parallel_map(&self.tenants, self.workers, |tenant| TenantSnapshot {
                id: tenant.id,
                scaler: tenant.scaler.snapshot(),
            });
        CheckpointStore::new(dir.as_ref()).write(&snapshots, tenants_per_shard, self.workers)
    }

    /// Restore a fleet from the checkpoint in `dir`, loading and
    /// deserializing shards in parallel.
    ///
    /// `config` is the shared serving configuration (per-tenant seeds and
    /// RNG positions come from the checkpoint, not from `config`'s seed).
    /// Shards are checksum-verified before parsing; a corrupt shard fails
    /// the restore with an error naming that shard. The restored fleet's
    /// worker budget defaults to the machine's available parallelism, and —
    /// as with a fresh fleet — its plans do not depend on it.
    pub fn restore(dir: impl AsRef<Path>, config: &OnlineConfig) -> Result<Self, OnlineError> {
        let workers = available_threads();
        let mut snapshots = CheckpointStore::new(dir.as_ref()).load(workers)?;
        snapshots.sort_by_key(|s| s.id);
        if snapshots.windows(2).any(|w| w[0].id == w[1].id) {
            return Err(OnlineError::Checkpoint {
                shard: None,
                message: "duplicate tenant id across shards".to_string(),
            });
        }
        // Rebuild scalers in parallel *by value*: each worker takes its
        // snapshots out of the slots instead of cloning them — a snapshot
        // carries the full ring and model, and doubling peak memory on the
        // restore path would be real money at fleet scale.
        let mut slots: Vec<Option<TenantSnapshot>> = snapshots.into_iter().map(Some).collect();
        let tenants = map_chunks_mut(&mut slots, workers, |_, chunk| {
            chunk
                .iter_mut()
                .map(|slot| {
                    let snapshot = slot.take().expect("each slot is visited exactly once");
                    Ok(Tenant {
                        id: snapshot.id,
                        scaler: OnlineScaler::restore(snapshot.scaler, *config)?,
                    })
                })
                .collect::<Vec<Result<Tenant, OnlineError>>>()
        })
        .into_iter()
        .flatten()
        .collect::<Result<Vec<_>, OnlineError>>()?;
        if tenants.is_empty() {
            return Err(OnlineError::InvalidConfig(
                "a fleet needs at least one tenant",
            ));
        }
        Ok(Self { tenants, workers })
    }

    /// Sum of all tenants' serving counters.
    pub fn aggregate_stats(&self) -> OnlineStats {
        let mut total = OnlineStats::default();
        for tenant in &self.tenants {
            let s = tenant.scaler.stats();
            total.arrivals_ingested += s.arrivals_ingested;
            total.arrivals_dropped += s.arrivals_dropped;
            total.refits += s.refits;
            total.drift_refits += s.drift_refits;
            total.planning_rounds += s.planning_rounds;
            total.skipped_rounds += s.skipped_rounds;
            total.failed_rounds += s.failed_rounds;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustscaler_core::{RobustScalerConfig, RobustScalerVariant};

    fn fleet_config() -> OnlineConfig {
        let mut pipeline =
            RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability {
                target: 0.9,
            });
        pipeline.bucket_width = 10.0;
        pipeline.periodicity_aggregation = 2;
        pipeline.admm.max_iterations = 30;
        pipeline.monte_carlo_samples = 60;
        pipeline.planning_interval = 20.0;
        pipeline.mean_processing = 5.0;
        pipeline.forecast_horizon = 600.0;
        let mut config = OnlineConfig::new(pipeline);
        config.window_buckets = 120;
        config.min_training_buckets = 30;
        config
    }

    /// Tenant `i` sees one arrival every `4 + i` seconds.
    fn ingest_uniform(fleet: &mut TenantFleet, duration: f64) {
        for index in 0..fleet.len() {
            let gap = 4.0 + index as f64;
            let n = (duration / gap) as usize;
            for k in 0..n {
                fleet.ingest(index, k as f64 * gap).unwrap();
            }
        }
    }

    #[test]
    fn rejects_empty_fleets_and_bad_indices() {
        assert!(TenantFleet::new(&fleet_config(), 0.0, 0, 1).is_err());
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 2, 1).unwrap();
        assert!(fleet.ingest(2, 1.0).is_err());
        assert!(fleet.run_round(400.0, &[0]).is_err());
    }

    #[test]
    fn tenants_get_distinct_seeds_and_independent_plans() {
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 3, 7).unwrap();
        ingest_uniform(&mut fleet, 400.0);
        let rounds: Vec<_> = fleet
            .run_round_uniform(400.0, 0)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(rounds.len(), 3);
        // Different traffic levels → different expected arrivals per window.
        assert!(rounds[0].expected_arrivals_in_window > rounds[2].expected_arrivals_in_window);
        assert_eq!(fleet.aggregate_stats().refits, 3);
        assert!(fleet.tenant(0).unwrap().scaler.has_model());
    }

    #[test]
    fn one_failing_tenant_does_not_poison_the_round() {
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 3, 7).unwrap();
        // Tenants 0 and 2 get traffic; tenant 1 stays empty and cannot
        // train — its slot errors, the others still plan.
        for index in [0usize, 2] {
            for k in 0..100 {
                fleet.ingest(index, k as f64 * 4.0).unwrap();
            }
        }
        let rounds = fleet.run_round_uniform(400.0, 0).unwrap();
        assert!(rounds[0].is_ok());
        assert!(matches!(rounds[1], Err(OnlineError::NotTrained)));
        assert!(rounds[2].is_ok());
        assert!(!rounds[0].as_ref().unwrap().decisions.is_empty());
    }

    #[test]
    fn checkpoint_restore_round_trips_and_resumes_identically() {
        let dir =
            std::env::temp_dir().join(format!("robustscaler-fleet-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = fleet_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 5, 42).unwrap();
        ingest_uniform(&mut fleet, 400.0);
        fleet.run_round_uniform(400.0, 0).unwrap();
        let manifest = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert_eq!(manifest.tenant_count, 5);
        assert_eq!(manifest.shards.len(), 3);
        let mut restored = TenantFleet::restore(&dir, &config).unwrap();
        assert_eq!(restored.len(), fleet.len());
        assert_eq!(restored.aggregate_stats(), fleet.aggregate_stats());
        // Both fleets continue identically.
        for round in 1..4 {
            let now = 400.0 + 20.0 * round as f64;
            assert_eq!(
                fleet.run_round_uniform(now, round).unwrap(),
                restored.run_round_uniform(now, round).unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_count_does_not_change_the_plans() {
        let run = |workers: usize| {
            let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 8, 42).unwrap();
            fleet.set_workers(workers);
            ingest_uniform(&mut fleet, 400.0);
            let mut all = Vec::new();
            for round in 0..3 {
                let now = 400.0 + 20.0 * round as f64;
                all.push(fleet.run_round_uniform(now, round).unwrap());
            }
            all
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(5));
    }
}
