//! Multi-tenant fleet planning: hundreds of independent [`OnlineScaler`]s
//! sharded across a persistent worker pool, fed by an event-driven
//! arrival bus.
//!
//! Each tenant owns its scaler — ring buffer, model, planner scratch and
//! RNG — so tenants never share mutable state and a round's output is a
//! pure function of (per-tenant seed, ingestion history, round sequence).
//! The fleet shards the tenant vector into contiguous chunks on a
//! [`WorkerPool`] whose threads park between rounds (no spawn/join on the
//! round's critical path); because chunking depends only on the worker
//! budget, chunk outputs are collected in chunk order, and no randomness
//! crosses tenant boundaries, the result is **identical for any worker
//! count**, which the online proptests pin.
//!
//! ## Ingestion runtime
//!
//! With an [`ArrivalBus`] attached ([`TenantFleet::attach_bus`]),
//! producers enqueue arrivals from any thread — including while a round
//! is planning — and each round worker *drains its tenants' queues first,
//! then plans*, making drain + plan one parallel pass over the shard.
//! Arrivals enqueued during round `N` are picked up by round `N + 1`'s
//! drain: the round boundary is the only synchronization point, so a
//! producer that finishes enqueueing window `N + 1` before round `N + 1`
//! starts gets bit-identical plans to fully synchronous ingestion
//! (pinned in `tests/online_props.rs`).
//!
//! ## Incremental checkpoints
//!
//! The fleet tracks per-tenant dirtiness (scaler mutated, or bus queue
//! mutated since the last successful checkpoint); a checkpoint reuses the
//! previous generation's shard files for groups whose tenants are all
//! clean instead of reserializing them (see
//! [`crate::checkpoint::CheckpointStore::write_with`]).
//!
//! ## Supervision
//!
//! Tenants misbehave at fleet scale, so the fleet supervises them. A
//! tenant whose round panics is caught at the tenant boundary
//! (`catch_unwind` inside the round worker) and reported as a per-tenant
//! [`TenantPanicked`](OnlineError::TenantPanicked) error — one bad tenant
//! never takes down the round. [`SupervisorConfig::quarantine_after`]
//! consecutive failures quarantine the tenant: planning is suspended (its
//! slot reports [`Quarantined`](OnlineError::Quarantined), though its
//! arrival queue keeps draining so no data is lost), and the fleet probes
//! it on an exponential-backoff schedule, applying a
//! [`RecoveryAction`] — a forced refit or a restore from the tenant's
//! last good snapshot — before the probe plan. Failing or quarantined
//! tenants can serve a *degraded plan-stickiness fallback*: the last good
//! plan, flagged `sticky` in [`FleetRound`], so QoS degrades gracefully
//! instead of going unplanned. Cold tenants still warming up
//! ([`NotTrained`](OnlineError::NotTrained)) are never counted as
//! failures, so healthy fleets behave bit-identically with supervision
//! on (the default) or off.
//!
//! Deterministic chaos — injected planning errors/panics, arrival
//! corruption, checkpoint I/O faults — plugs in via
//! [`TenantFleet::set_faults`]; every fault decision and every recovery
//! action is a pure function of the [`FaultPlan`] seed and the round
//! coordinates, pinned by `tests/chaos.rs`. The one exception is
//! worker-thread panics, which key on chunk offsets and are therefore
//! worker-count-dependent by construction; they abort the whole round
//! ([`RoundPanicked`](OnlineError::RoundPanicked)) and must not be
//! combined with trace recording.

use crate::checkpoint::{
    CheckpointIoStats, CheckpointStorage, CheckpointStore, HibernationStore, Manifest, PageReceipt,
    QuarantineState, ResidencySnapshot, SupervisionSnapshot, TenantSnapshot, WriteOptions,
    DEFAULT_TENANTS_PER_SHARD,
};
use crate::error::OnlineError;
use crate::faults::{FaultInjector, FaultPlan, PlanFault};
use crate::ingest::{ArrivalBus, BusConfig, QueueCheckpoint, QueueStats};
use crate::replay::{
    model_fingerprint, QosRecord, ResidencyEvent, ScalerEvent, SessionKind, TraceHeader,
    TraceRecord, TraceRecorder, TraceSummary, WakeReason, TRACE_FORMAT_VERSION,
};
use crate::scaler::{OnlineConfig, OnlineScaler, OnlineStats, RoundPrep, ScalerSnapshot};
use crate::sharing::{ClusterKey, PlanKey, SharingConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use robustscaler_parallel::{available_threads, map_chunks_mut, WorkerPool};
use robustscaler_scaling::{ArrivalSampler, PendingTimeModel, PlanningRound};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;

/// SplitMix64 — the same stateless mixer the Monte Carlo sampler uses to
/// derive per-path streams; here it derives per-tenant RNG seeds from the
/// fleet seed so tenant plans are decorrelated but reproducible.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One tenant: a stable identifier plus its serving scaler.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Stable tenant identifier (index at fleet construction).
    pub id: u64,
    /// The tenant's serving scaler.
    pub scaler: OnlineScaler,
}

/// Residency policy: when a quiescent tenant leaves the hot tier.
///
/// With residency enabled ([`TenantFleet::enable_residency`]), a tenant
/// that spends [`cold_after`](ResidencyConfig::cold_after) consecutive
/// rounds idle — no arrivals drained or ingested, nothing to plan — and
/// whose forecast expects no work goes **cold**: planning is skipped
/// (its slot reports [`Hibernated`](OnlineError::Hibernated)) until an
/// arrival lands on its queue, its scheduled wake time passes, or the
/// driver touches it directly. With a hibernation directory attached
/// ([`TenantFleet::set_hibernation_dir`]), cold tenants are additionally
/// **paged out** — serialized to a per-tenant page file and dropped from
/// memory — which is what bounds fleet memory by *active* tenants rather
/// than registered ones. Paging is transparent: a paged tenant woken by
/// an arrival plans bit-identically to one that stayed resident.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResidencyConfig {
    /// Consecutive idle rounds after which a tenant may go cold (≥ 1).
    pub cold_after: u64,
    /// Expected-arrival threshold below which a forecast window counts
    /// as quiet (see [`crate::scaler::OnlineScaler::quiescence_horizon`]).
    pub idle_epsilon: f64,
    /// Start every tenant cold (set by [`TenantFleet::new_cold`]; a
    /// replayed cold-start session must reproduce it).
    pub start_cold: bool,
}

impl Default for ResidencyConfig {
    fn default() -> Self {
        Self {
            cold_after: 3,
            idle_epsilon: 1e-9,
            start_cold: false,
        }
    }
}

/// A tenant slot: resident (scaler in memory) or paged out.
#[derive(Debug, Clone)]
enum TenantSlot {
    /// The tenant's scaler is in memory.
    Resident(Box<Tenant>),
    /// The tenant is cold and its scaler is *not* in memory — it either
    /// never existed (virgin) or lives in the hibernation store.
    Paged(PagedTenant),
}

impl TenantSlot {
    fn id(&self) -> u64 {
        match self {
            TenantSlot::Resident(tenant) => tenant.id,
            TenantSlot::Paged(paged) => paged.id,
        }
    }
}

/// Everything the fleet remembers about a paged-out tenant: enough to
/// rebuild it bit-identically, nothing more.
#[derive(Debug, Clone)]
struct PagedTenant {
    id: u64,
    /// The tenant's derived RNG seed — materializes a virgin tenant.
    seed: u64,
    kind: PageKind,
    /// Serving counters frozen at page-out ([`TenantFleet::aggregate_stats`]
    /// reads them without paging the tenant back in).
    stats: OnlineStats,
}

/// Where a paged tenant's state lives.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PageKind {
    /// Never materialized: rebuilt from `(config, origin, seed)` alone.
    Virgin,
    /// Paged out to the hibernation store; `checksum` is the page
    /// receipt that verifies the read back.
    OnDisk {
        /// FNV-1a 64 checksum of the page file (see [`PageReceipt`]).
        checksum: u64,
    },
}

/// Per-tenant residency state. Orthogonal to paging: a cold tenant may
/// stay resident (no hibernation store, a failed page-out, or a fresh
/// restore); a paged tenant is always cold.
#[derive(Debug, Clone, Copy)]
enum Residency {
    /// Planning every round; `idle_streak` counts consecutive idle rounds.
    Hot { idle_streak: u64 },
    /// Hibernated since round `since_round`; due for a scheduled wake at
    /// `wake_at` (`INFINITY` = wake on arrival or access only).
    Cold { wake_at: f64, since_round: u64 },
}

/// Residency tier counters ([`TenantFleet::residency_stats`]): current
/// tier occupancy plus lifetime transition totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResidencyStats {
    /// Tenants currently hot (planning every round).
    pub hot: usize,
    /// Tenants currently cold (hibernated, resident or paged).
    pub cold: usize,
    /// Tenants currently paged out of memory.
    pub paged: usize,
    /// Hibernation transitions since construction.
    pub hibernated_total: u64,
    /// Wake transitions since construction.
    pub woken_total: u64,
    /// Successful page-outs.
    pub page_outs: u64,
    /// Successful page-ins.
    pub page_ins: u64,
    /// Failed page-outs (the tenant stayed resident; retried).
    pub page_out_failures: u64,
    /// Failed page-ins (the tenant stayed paged; retried).
    pub page_in_failures: u64,
}

/// How a probe round tries to bring a quarantined tenant back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// Refit the model from the tenant's current ring before the probe
    /// plan — keeps every ingested arrival, rebuilds the model.
    ForceRefit,
    /// Replace the scaler with its last captured good snapshot before the
    /// probe plan — rolls the tenant back to known-good state (arrivals
    /// ingested since that snapshot are lost). Falls back to a forced
    /// refit while no snapshot has been captured yet.
    RestoreSnapshot,
}

/// Supervision policy for a [`TenantFleet`]. The default is active but
/// conservative: it only ever reacts to *real* failures (panics, injected
/// faults, refit errors), never to cold-start
/// [`NotTrained`](OnlineError::NotTrained) rounds, so fleets that never
/// fail behave bit-identically with or without it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// Consecutive failures after which a tenant is quarantined.
    pub quarantine_after: u32,
    /// Rounds to wait before the first recovery probe (doubles after
    /// every failed probe; minimum 1).
    pub probe_backoff: u64,
    /// Upper bound on the probe backoff.
    pub max_backoff: u64,
    /// What a probe does before attempting to plan.
    pub recovery: RecoveryAction,
    /// Capture a last-good scaler snapshot every this many rounds (per
    /// tenant, on successful rounds; 0 = never). Only consulted when
    /// `recovery` is [`RecoveryAction::RestoreSnapshot`] — snapshots are
    /// not captured otherwise, so the default policy adds no per-round
    /// cost.
    pub snapshot_every: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            quarantine_after: 3,
            probe_backoff: 2,
            max_backoff: 32,
            recovery: RecoveryAction::ForceRefit,
            snapshot_every: 8,
        }
    }
}

/// A tenant's health as of the last planning round.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantHealth {
    /// Planning normally (cold-start rounds included).
    #[default]
    Healthy,
    /// Failed at least one recent round, not yet quarantined.
    Failing,
    /// Quarantined: planning suspended until the next probe round.
    Quarantined,
    /// A recovery probe ran this round and failed; backoff doubled.
    Probing,
    /// A recovery probe ran this round and succeeded.
    Recovered,
    /// Hibernated: cold (possibly paged out); planning skipped until an
    /// arrival, its scheduled wake time, or direct access wakes it. Not
    /// a failure state — a hibernated tenant is healthy by definition.
    Hibernated,
}

/// One tenant's slot in a supervised round report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// The tenant.
    pub tenant: u64,
    /// The plan served this round: a fresh plan on success, the last good
    /// plan when degraded (`sticky`), `None` when nothing can be served.
    pub plan: Option<PlanningRound>,
    /// True when `plan` is the degraded plan-stickiness fallback.
    pub sticky: bool,
    /// The failure behind a degraded or empty slot, if any.
    pub error: Option<OnlineError>,
    /// The tenant's health after this round.
    pub health: TenantHealth,
}

/// A supervised round report: [`TenantFleet::run_round_supervised`]'s
/// view of one round, with degraded-mode fallbacks applied.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRound {
    /// The fleet round this report describes.
    pub round: u64,
    /// Per-tenant outcomes, ordered by tenant index.
    pub outcomes: Vec<TenantOutcome>,
    /// Tenants served the sticky fallback this round.
    pub degraded: usize,
    /// Tenants currently quarantined (probing ones included).
    pub quarantined: usize,
    /// Tenants recovered by a probe this round.
    pub recovered: usize,
    /// Tenants hibernated this round (planning skipped, not failures).
    pub hibernated: usize,
}

/// Fleet-wide supervision counters (sums over tenants).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisionStats {
    /// Failed tenant-rounds (panics included; cold-start rounds are not
    /// failures).
    pub failures: u64,
    /// Tenant-rounds that failed by panicking.
    pub panics: u64,
    /// Recovery probes attempted.
    pub probes: u64,
    /// Probes that succeeded.
    pub recoveries: u64,
    /// Tenant-rounds served the degraded sticky fallback.
    pub degraded_rounds: u64,
    /// Tenants quarantined right now.
    pub quarantined_now: usize,
}

/// Per-tenant supervision state ([`SupervisionSnapshot`] minus the round
/// counter, which is fleet-global, plus transient per-round flags).
#[derive(Debug, Clone, Default)]
struct Supervision {
    consecutive_failures: u32,
    quarantine: Option<QuarantineState>,
    health: TenantHealth,
    failures: u64,
    panics: u64,
    probes: u64,
    recoveries: u64,
    degraded_rounds: u64,
    last_good_plan: Option<PlanningRound>,
    last_good_snapshot: Option<Box<ScalerSnapshot>>,
    /// The last round served the sticky fallback (transient).
    served_sticky: bool,
}

/// What the supervisor decided for one tenant *before* the parallel
/// section — decisions are taken serially so they are deterministic and
/// identical for any worker count.
#[allow(clippy::large_enum_variant)] // probes are rare; boxing would churn the hot Normal path
enum TenantAction {
    /// Plan normally.
    Normal,
    /// Quarantined and not yet due for a probe: drain, don't plan.
    Skip { until_round: u64 },
    /// Probe round: apply the recovery, then plan.
    Probe {
        recovery: RecoveryAction,
        snapshot: Option<Box<ScalerSnapshot>>,
        config: OnlineConfig,
    },
    /// Hibernated and nothing to do: skip the tenant entirely.
    Dormant,
    /// Hibernated but triggered: wake (page in if needed), then plan.
    Wake { reason: WakeReason },
}

/// Render a caught panic payload for error reporting.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Outcome of one tenant's *prepare* phase — everything up to, but not
/// including, the Monte Carlo planning stage.
enum PrepOutcome {
    /// The round finished in the prepare phase: it errored, the tenant is
    /// quarantined, or the sufficiency check skipped the Monte Carlo
    /// stage. The plan phase does not touch this tenant.
    Done(Result<PlanningRound, OnlineError>),
    /// The Monte Carlo stage still has to run in the plan phase.
    Plan {
        /// The tenant's forecast fingerprint, when sharing is enabled and
        /// a fingerprint could be taken. `None` plans privately.
        key: Option<ClusterKey>,
        /// Arrival rows the tenant wants from a shared cluster matrix.
        wanted: usize,
    },
}

/// One tenant's *prepare* share of a planning round, executed inside the
/// round worker's per-tenant `catch_unwind` boundary.
///
/// Order matters for determinism and data retention: the recovery (if
/// this is a probe) runs *first* so a snapshot restore cannot eat the
/// arrivals this round is about to drain; then the queue is drained —
/// even for quarantined tenants, so no arrival is ever lost to a
/// suspension and the record/replay invariant (every round drains the
/// bus) holds; injected corruption applies to the drained batch *after*
/// the recorder captured the queue, so a replayed drain re-derives the
/// identical corruption; only then is planning prepared (refit, forecast
/// refresh, sufficiency check) or refused, for quarantined tenants. The
/// Monte Carlo stage itself runs in [`tenant_plan`] — split out so the
/// fleet can batch arrival sampling across tenants in between. Prepare
/// followed immediately by plan is bit-identical to the unsplit round.
#[allow(clippy::too_many_arguments)]
fn tenant_prepare(
    tenant: &mut Tenant,
    index: usize,
    round: u64,
    now: f64,
    covered: usize,
    bus: Option<&ArrivalBus>,
    faults: Option<&FaultInjector>,
    action: &TenantAction,
    buf: &mut Vec<f64>,
    sharing: &SharingConfig,
) -> PrepOutcome {
    let id = tenant.id;
    if let TenantAction::Probe {
        recovery,
        snapshot,
        config,
    } = action
    {
        match (recovery, snapshot) {
            (RecoveryAction::RestoreSnapshot, Some(snapshot)) => {
                match OnlineScaler::restore((**snapshot).clone(), *config) {
                    Ok(scaler) => tenant.scaler = scaler,
                    Err(e) => return PrepOutcome::Done(Err(e)),
                }
            }
            _ => {
                if let Err(e) = tenant.scaler.probe_refit(now) {
                    return PrepOutcome::Done(Err(e));
                }
            }
        }
    }
    if let Some(bus) = bus {
        match bus.drain_into(index, buf) {
            Ok(0) => {}
            Ok(_) => {
                if let Some(injector) = faults {
                    injector.corrupt_arrivals(round, id, buf);
                }
                tenant.scaler.ingest_batch(buf);
            }
            Err(e) => return PrepOutcome::Done(Err(e)),
        }
    }
    if let TenantAction::Skip { until_round } = action {
        return PrepOutcome::Done(Err(OnlineError::Quarantined {
            tenant: id,
            until_round: *until_round,
        }));
    }
    if let Some(injector) = faults {
        match injector.plan_fault(round, id) {
            Some(PlanFault::Error) => {
                return PrepOutcome::Done(Err(OnlineError::Injected { round, tenant: id }))
            }
            Some(PlanFault::Panic) => panic!("injected tenant panic (round {round}, tenant {id})"),
            None => {}
        }
    }
    match tenant.scaler.prepare_round(now, covered) {
        Err(e) => PrepOutcome::Done(Err(e)),
        Ok(RoundPrep::Skip(finished)) | Ok(RoundPrep::Cached(finished)) => {
            PrepOutcome::Done(Ok(finished))
        }
        Ok(RoundPrep::Plan) => {
            let key = tenant.scaler.cluster_key(now, sharing);
            let wanted = if key.is_some() {
                tenant.scaler.shared_sampling_demand(now, covered)
            } else {
                0
            };
            PrepOutcome::Plan { key, wanted }
        }
    }
}

/// One tenant's *plan* share of a planning round: the Monte Carlo stage,
/// against the cluster's shared sampler when one was assigned (falling
/// back to private sampling if the shared horizon cannot serve this
/// tenant), privately otherwise. The `bool` reports whether the shared
/// path actually produced the round — the decision-dedup pass only lets
/// plan-group followers adopt a leader's round when it did (a private
/// fallback depends on the leader's own forecast and RNG, so followers
/// must then plan themselves).
fn tenant_plan(
    tenant: &mut Tenant,
    now: f64,
    covered: usize,
    sampler: Option<&ArrivalSampler>,
) -> (Result<PlanningRound, OnlineError>, bool) {
    if let Some(sampler) = sampler {
        match tenant.scaler.plan_shared(now, covered, sampler) {
            Ok(Some(finished)) => return (Ok(finished), true),
            Ok(None) => {}
            Err(e) => return (Err(e), false),
        }
    }
    (tenant.scaler.plan_prepared(now, covered), false)
}

/// Sentinel for "no checkpoint has captured this queue yet": a mutation
/// counter can never reach it, so comparisons always read "dirty".
const NEVER_CHECKPOINTED: u64 = u64::MAX;

/// Identity of the fleet's last successful checkpoint write — shard reuse
/// is offered only when the directory's current manifest is *verifiably
/// this fleet's own previous write* (same path, generation and per-shard
/// checksums). Without this, a second writer sharing the directory could
/// get its tenants' bytes silently linked into our next generation.
#[derive(Debug, Clone, PartialEq)]
struct LastCheckpoint {
    dir: std::path::PathBuf,
    generation: u64,
    checksums: Vec<String>,
    /// The shard size the previous generation was written with. Reuse is
    /// only sound when the new write groups tenants identically: with a
    /// different shard size, a group can *count-match* a previous shard
    /// that holds different tenants, and linking its bytes would corrupt
    /// the checkpoint (restore then fails on duplicate/missing tenants).
    tenants_per_shard: usize,
    /// Whether that write was known restorable without read-back (all
    /// shards fresh, or reuse anchored — by induction — on a restorable
    /// previous write). Feeds the next write's
    /// [`WriteOptions::previous_restorable`], which lets the retention
    /// sweep skip re-hashing every kept shard file on steady-state
    /// incremental checkpoints. In-memory only: a fresh process starts
    /// without it and pays one read-back (or full rewrite) to re-anchor.
    restorable: bool,
}

/// Runtime wiring to re-arm atomically with a checkpoint restore (see
/// [`TenantFleet::restore_with`]). Everything defaults to `None` — an
/// all-`None` options value behaves like [`TenantFleet::restore`] except
/// that the result still counts as armed (the caller explicitly chose
/// the defaults).
#[derive(Debug, Clone, Default)]
pub struct RestoreOptions {
    /// Supervision policy the checkpointed session ran with.
    pub supervisor: Option<SupervisorConfig>,
    /// Fault plan the checkpointed session ran with (chaos sessions).
    pub faults: Option<FaultPlan>,
    /// Storage backend for the restore *and* subsequent checkpoints.
    pub storage: Option<Arc<dyn CheckpointStorage>>,
    /// Hibernation directory to re-attach (requires the checkpoint to
    /// carry residency state).
    pub hibernation_dir: Option<std::path::PathBuf>,
}

/// A fleet of independent tenants planned concurrently.
#[derive(Debug)]
pub struct TenantFleet {
    /// The shared serving configuration (every tenant uses it).
    config: OnlineConfig,
    /// The shared ring origin (every tenant's ring is anchored at it).
    origin: f64,
    tenants: Vec<TenantSlot>,
    workers: usize,
    /// Persistent round workers, parked between rounds.
    pool: Arc<WorkerPool>,
    /// The ingestion runtime, when attached.
    bus: Option<Arc<ArrivalBus>>,
    /// Per-tenant: scaler mutated since the last successful checkpoint
    /// (ingested directly, planned, or handed out via `tenant_mut`).
    dirty: Vec<bool>,
    /// Per-tenant: the bus mutation counter captured by the last
    /// successful checkpoint ([`NEVER_CHECKPOINTED`] before the first).
    checkpointed_queue_mutations: Vec<u64>,
    /// What the last successful checkpoint wrote (see [`LastCheckpoint`]).
    last_checkpoint: Option<LastCheckpoint>,
    /// The session recorder, while a trace recording is active.
    recorder: Option<TraceRecorder>,
    /// Round sequence number: increments once per planning round
    /// (aborted rounds included). Fault schedules and quarantine probes
    /// key on it, and checkpoints persist it.
    round_counter: u64,
    /// The supervision policy.
    supervisor: SupervisorConfig,
    /// The active fault injector, when chaos is enabled.
    faults: Option<FaultInjector>,
    /// Per-tenant supervision state.
    supervision: Vec<Supervision>,
    /// Checkpoint I/O counters accumulated across this fleet's writes
    /// and its restore (retries, reuse fallbacks, generation fallbacks).
    checkpoint_io: CheckpointIoStats,
    /// Storage backend for checkpoints (the real filesystem unless a
    /// chaos test injects a faulty one).
    checkpoint_storage: Option<Arc<dyn CheckpointStorage>>,
    /// The residency policy, when activity tiering is enabled.
    residency: Option<ResidencyConfig>,
    /// Per-tenant residency state (all hot while residency is disabled).
    residency_state: Vec<Residency>,
    /// The per-tenant page store, when paging is enabled.
    hibernation: Option<HibernationStore>,
    /// Lifetime residency transition counters.
    residency_counters: ResidencyStats,
    /// Whether trace-event capture is on (applied to tenants as they
    /// materialize, so a paged tenant woken mid-recording traces too).
    tracing: bool,
    /// Per-tenant: touched through `tenant_mut`/`ingest` since the last
    /// round (direct driver activity blocks cold entry that round).
    saw_direct: Vec<bool>,
    /// Access-wake events accumulated between rounds, emitted (and
    /// recorded) with the next round's residency events.
    pending_wakes: Vec<(u64, ResidencyEvent)>,
    /// Residency events of completed rounds, until taken with
    /// [`TenantFleet::take_residency_events`].
    residency_events: Vec<(u64, ResidencyEvent)>,
    /// True after a plain [`TenantFleet::restore`]: the checkpoint's
    /// supervisor policy, fault plan and storage wiring were *not*
    /// re-armed (see [`TenantFleet::restore_with`]).
    restored_unarmed: bool,
    /// Cross-tenant shared-sampling policy. Runtime-only, like tracing:
    /// not persisted in checkpoints (a restored fleet starts with sharing
    /// off and the driver re-applies it).
    sharing: SharingConfig,
    /// Lifetime count of plan-group follower rounds served by adopting a
    /// leader's decision schedule instead of re-running the decision loop
    /// (Layer 1 decision dedup). Fleet-level on purpose: adoption is
    /// bit-identical to planning, so the per-tenant stats must not differ
    /// between dedup on and off.
    deduped_plan_rounds: u64,
}

/// Arm or disarm a scaler's Layer 2 plan cache per the fleet's sharing
/// policy — applied wherever a scaler becomes resident (set_sharing,
/// materialize, and the in-round wake path), exactly like tracing.
fn apply_plan_reuse(scaler: &mut OnlineScaler, sharing: &SharingConfig) {
    if sharing.plan_cache {
        scaler
            .enable_plan_reuse(sharing.quantization)
            .expect("a validated SharingConfig has a usable quantization");
    } else {
        scaler.disable_plan_reuse();
    }
}

impl Clone for TenantFleet {
    /// Deep clone: tenants and dirtiness copy; the worker pool is shared
    /// (it holds no per-fleet state); the bus — if any — is rebuilt with
    /// identical queue contents and stats, so the clone drains the same
    /// arrivals but has its own producer endpoint. The clone starts fully
    /// dirty: its first checkpoint rewrites every shard. A recording is
    /// *not* cloned — a trace has exactly one writer — so the clone starts
    /// with tracing off.
    fn clone(&self) -> Self {
        let tenant_count = self.tenants.len();
        let bus = self.bus.as_ref().map(|bus| {
            let fresh =
                ArrivalBus::new(tenant_count, bus.config()).expect("existing bus config is valid");
            for (tenant, cp) in bus.checkpoint_queues().into_iter().enumerate() {
                fresh
                    .restore_tenant(tenant, cp.queued, cp.stats)
                    .expect("existing queue fits its own capacity");
            }
            Arc::new(fresh)
        });
        let mut tenants = self.tenants.clone();
        for slot in &mut tenants {
            if let TenantSlot::Resident(tenant) = slot {
                tenant.scaler.set_tracing(false);
                let _ = tenant.scaler.take_trace_events();
            }
        }
        Self {
            config: self.config,
            origin: self.origin,
            tenants,
            workers: self.workers,
            pool: Arc::clone(&self.pool),
            bus,
            dirty: vec![true; tenant_count],
            checkpointed_queue_mutations: vec![NEVER_CHECKPOINTED; tenant_count],
            last_checkpoint: None,
            recorder: None,
            round_counter: self.round_counter,
            supervisor: self.supervisor,
            faults: self.faults,
            supervision: self.supervision.clone(),
            checkpoint_io: self.checkpoint_io,
            checkpoint_storage: self.checkpoint_storage.clone(),
            residency: self.residency,
            // The clone shares the hibernation store: its paged tenants'
            // page files live there. Clones that will diverge should be
            // re-pointed with `set_hibernation_dir` after `wake_all`.
            residency_state: self.residency_state.clone(),
            hibernation: self.hibernation.clone(),
            residency_counters: self.residency_counters,
            tracing: false,
            saw_direct: vec![false; tenant_count],
            pending_wakes: Vec::new(),
            residency_events: Vec::new(),
            restored_unarmed: self.restored_unarmed,
            sharing: self.sharing,
            deduped_plan_rounds: self.deduped_plan_rounds,
        }
    }
}

impl TenantFleet {
    /// Build a fleet of `tenant_count` tenants sharing one configuration.
    ///
    /// Every tenant gets its own deterministic RNG seed derived from
    /// `base_seed` and its id, and its own ring anchored at `origin`. The
    /// worker budget defaults to the machine's available parallelism.
    pub fn new(
        config: &OnlineConfig,
        origin: f64,
        tenant_count: usize,
        base_seed: u64,
    ) -> Result<Self, OnlineError> {
        if tenant_count == 0 {
            return Err(OnlineError::InvalidConfig(
                "a fleet needs at least one tenant",
            ));
        }
        let tenants = (0..tenant_count as u64)
            .map(|id| {
                let seed = splitmix64(base_seed.wrapping_add(id));
                Ok(TenantSlot::Resident(Box::new(Tenant {
                    id,
                    scaler: OnlineScaler::with_seed(*config, origin, seed)?,
                })))
            })
            .collect::<Result<Vec<_>, OnlineError>>()?;
        Ok(Self::assemble(
            *config,
            origin,
            tenants,
            available_threads(),
            None,
        ))
    }

    /// Build a fleet of `tenant_count` tenants with **no scaler in
    /// memory**: every slot starts cold and virgin, materialized on first
    /// arrival (or direct access) from `(config, origin, seed)` alone.
    ///
    /// This is the memory-bounded registration path: a fleet can register
    /// 100k+ tenants and pay memory only for the ones that actually see
    /// traffic. Residency is enabled with `residency` (its `start_cold`
    /// is forced on, so a recorded session's header reproduces the cold
    /// start); attach a page store with
    /// [`TenantFleet::set_hibernation_dir`] to let woken-then-quiet
    /// tenants leave memory again.
    ///
    /// A cold-started fleet plans bit-identically to a [`TenantFleet::new`]
    /// fleet with the same seed under the same driving: a virgin tenant
    /// materializes to exactly the scaler `new` would have built.
    pub fn new_cold(
        config: &OnlineConfig,
        origin: f64,
        tenant_count: usize,
        base_seed: u64,
        residency: ResidencyConfig,
    ) -> Result<Self, OnlineError> {
        if tenant_count == 0 {
            return Err(OnlineError::InvalidConfig(
                "a fleet needs at least one tenant",
            ));
        }
        // Validate the shared configuration once, up front: every tenant
        // uses it, so one constructed-and-discarded scaler proves all
        // `tenant_count` of them constructible — without materializing
        // them (the whole point of a cold start).
        drop(OnlineScaler::with_seed(
            *config,
            origin,
            splitmix64(base_seed),
        )?);
        let tenants = (0..tenant_count as u64)
            .map(|id| {
                TenantSlot::Paged(PagedTenant {
                    id,
                    seed: splitmix64(base_seed.wrapping_add(id)),
                    kind: PageKind::Virgin,
                    stats: OnlineStats::default(),
                })
            })
            .collect();
        let mut fleet = Self::assemble(*config, origin, tenants, available_threads(), None);
        fleet.enable_residency(ResidencyConfig {
            start_cold: true,
            ..residency
        })?;
        Ok(fleet)
    }

    /// Wire up the non-tenant state around a tenant-slot vector.
    fn assemble(
        config: OnlineConfig,
        origin: f64,
        tenants: Vec<TenantSlot>,
        workers: usize,
        bus: Option<Arc<ArrivalBus>>,
    ) -> Self {
        let tenant_count = tenants.len();
        Self {
            config,
            origin,
            tenants,
            workers,
            pool: Arc::new(WorkerPool::new(workers)),
            bus,
            dirty: vec![true; tenant_count],
            checkpointed_queue_mutations: vec![NEVER_CHECKPOINTED; tenant_count],
            last_checkpoint: None,
            recorder: None,
            round_counter: 0,
            supervisor: SupervisorConfig::default(),
            faults: None,
            supervision: (0..tenant_count).map(|_| Supervision::default()).collect(),
            checkpoint_io: CheckpointIoStats::default(),
            checkpoint_storage: None,
            residency: None,
            residency_state: vec![Residency::Hot { idle_streak: 0 }; tenant_count],
            hibernation: None,
            residency_counters: ResidencyStats::default(),
            tracing: false,
            saw_direct: vec![false; tenant_count],
            pending_wakes: Vec::new(),
            residency_events: Vec::new(),
            restored_unarmed: false,
            sharing: SharingConfig::default(),
            deduped_plan_rounds: 0,
        }
    }

    /// Enable activity tiering: tenants idle for
    /// [`cold_after`](ResidencyConfig::cold_after) consecutive rounds
    /// whose forecast expects no work hibernate (planning skipped) until
    /// an arrival, their scheduled wake time, or direct access wakes
    /// them. Enabling residency on a busy fleet changes nothing until a
    /// tenant actually goes quiet; hibernate→wake is bit-equivalent to
    /// never hibernating.
    pub fn enable_residency(&mut self, config: ResidencyConfig) -> Result<(), OnlineError> {
        if config.cold_after == 0 {
            return Err(OnlineError::InvalidConfig(
                "residency cold_after must be at least 1",
            ));
        }
        if !config.idle_epsilon.is_finite() || config.idle_epsilon < 0.0 {
            return Err(OnlineError::InvalidConfig(
                "residency idle_epsilon must be finite and non-negative",
            ));
        }
        self.residency = Some(config);
        if config.start_cold {
            for state in &mut self.residency_state {
                *state = Residency::Cold {
                    wake_at: f64::INFINITY,
                    since_round: 0,
                };
            }
        }
        Ok(())
    }

    /// The active residency policy, if tiering is enabled.
    pub fn residency(&self) -> Option<ResidencyConfig> {
        self.residency
    }

    /// Attach a per-tenant page store rooted at `dir`: cold tenants are
    /// serialized there and dropped from memory, bounding fleet memory by
    /// *active* tenants. Requires residency
    /// ([`TenantFleet::enable_residency`] or [`TenantFleet::new_cold`]).
    /// Page I/O goes through the fleet's checkpoint storage backend, so
    /// chaos tests inject page faults the same way as checkpoint faults.
    pub fn set_hibernation_dir(&mut self, dir: impl AsRef<Path>) -> Result<(), OnlineError> {
        if self.residency.is_none() {
            return Err(OnlineError::InvalidConfig(
                "enable residency before attaching a hibernation store",
            ));
        }
        let dir = dir.as_ref();
        self.hibernation = Some(match &self.checkpoint_storage {
            Some(storage) => HibernationStore::with_storage(dir, Arc::clone(storage)),
            None => HibernationStore::new(dir),
        });
        Ok(())
    }

    /// The attached page store's directory, if paging is enabled.
    pub fn hibernation_dir(&self) -> Option<&Path> {
        self.hibernation.as_ref().map(|store| store.dir())
    }

    /// Ensure slot `index` is resident, materializing it if paged: a
    /// virgin tenant is built from `(config, origin, seed)`, an on-disk
    /// one is paged in and verified against its receipt.
    fn materialize(&mut self, index: usize) -> Result<(), OnlineError> {
        let TenantSlot::Paged(paged) = &self.tenants[index] else {
            return Ok(());
        };
        let (id, seed, kind) = (paged.id, paged.seed, paged.kind);
        let scaler = match kind {
            PageKind::Virgin => OnlineScaler::with_seed(self.config, self.origin, seed),
            PageKind::OnDisk { checksum } => self
                .hibernation
                .as_ref()
                .ok_or_else(|| OnlineError::Checkpoint {
                    shard: None,
                    message: format!(
                        "tenant {id} is paged out but no hibernation store is attached"
                    ),
                })
                .and_then(|store| store.page_in(id, PageReceipt { checksum }))
                .and_then(|snapshot| OnlineScaler::restore(snapshot, self.config)),
        };
        match scaler {
            Ok(mut scaler) => {
                scaler.set_tracing(self.tracing);
                apply_plan_reuse(&mut scaler, &self.sharing);
                self.tenants[index] = TenantSlot::Resident(Box::new(Tenant { id, scaler }));
                self.dirty[index] = true;
                self.residency_counters.page_ins += 1;
                Ok(())
            }
            Err(e) => {
                self.residency_counters.page_in_failures += 1;
                Err(e)
            }
        }
    }

    /// Wake a cold tenant because the driver touched it directly. The
    /// wake is buffered ([`pending_wakes`](Self::pending_wakes)) and
    /// emitted with the next round's residency events.
    fn wake_for_access(&mut self, index: usize) -> Result<(), OnlineError> {
        if self.residency.is_none() || matches!(self.residency_state[index], Residency::Hot { .. })
        {
            return Ok(());
        }
        self.materialize(index)?;
        self.residency_state[index] = Residency::Hot { idle_streak: 0 };
        self.residency_counters.woken_total += 1;
        self.pending_wakes.push((
            self.tenants[index].id(),
            ResidencyEvent::Wake {
                reason: WakeReason::Access,
            },
        ));
        Ok(())
    }

    /// Materialize every paged tenant and mark the whole fleet hot — the
    /// administrative bulk-wake (before migrating the hibernation
    /// directory, or before [`TenantFleet::start_recording`] on a fleet
    /// with paged tenants). Emits **no** wake events: this is operator
    /// action, not serving activity, and must not perturb a trace.
    pub fn wake_all(&mut self) -> Result<(), OnlineError> {
        for index in 0..self.tenants.len() {
            self.materialize(index)?;
            self.residency_state[index] = Residency::Hot { idle_streak: 0 };
        }
        Ok(())
    }

    /// Residency tier occupancy and lifetime transition counters.
    pub fn residency_stats(&self) -> ResidencyStats {
        let mut stats = self.residency_counters;
        for (slot, state) in self.tenants.iter().zip(&self.residency_state) {
            match state {
                Residency::Hot { .. } => stats.hot += 1,
                Residency::Cold { .. } => stats.cold += 1,
            }
            if matches!(slot, TenantSlot::Paged(_)) {
                stats.paged += 1;
            }
        }
        stats
    }

    /// Drain the residency events (hibernates and wakes, in emission
    /// order) of the rounds run since the last take.
    pub fn take_residency_events(&mut self) -> Vec<(u64, ResidencyEvent)> {
        std::mem::take(&mut self.residency_events)
    }

    /// Drain the access wakes buffered since the last round boundary —
    /// the replayer's hook for consuming the wake it just re-applied so
    /// the next round does not re-emit it.
    pub(crate) fn take_pending_wakes(&mut self) -> Vec<(u64, ResidencyEvent)> {
        std::mem::take(&mut self.pending_wakes)
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the fleet has no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The current worker-thread budget.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Set the worker-thread budget (≥ 1). Plans do not depend on it: it
    /// only controls how the tenant vector is chunked and how many pool
    /// threads may execute the chunks.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
        self.pool.ensure_threads(self.workers);
    }

    /// Set the cross-tenant shared-sampling policy (see [`SharingConfig`]).
    ///
    /// Off (the default) keeps rounds bit-identical to a fleet without the
    /// sharing layer, at any worker count. On, tenants whose forecasts
    /// quantize to the same [`ClusterKey`] plan against one shared
    /// arrival-sample matrix per cluster — deterministic (the matrix is
    /// seeded from the key and the round counter, never a tenant RNG) but
    /// *not* bit-identical to sharing off. Runtime-only, like tracing: the
    /// setting is not persisted in checkpoints, and a restored fleet
    /// starts with sharing off.
    pub fn set_sharing(&mut self, sharing: SharingConfig) -> Result<(), OnlineError> {
        sharing.validate()?;
        self.sharing = sharing;
        // Arm (or disarm) the Layer 2 plan cache on every resident scaler;
        // paged tenants pick the policy up as they materialize, exactly
        // like tracing.
        for slot in &mut self.tenants {
            if let TenantSlot::Resident(tenant) = slot {
                apply_plan_reuse(&mut tenant.scaler, &sharing);
            }
        }
        Ok(())
    }

    /// The active cross-tenant shared-sampling policy.
    pub fn sharing(&self) -> SharingConfig {
        self.sharing
    }

    /// Lifetime count of plan-group follower rounds served by adopting
    /// the leader's decision schedule (Layer 1 decision dedup) instead of
    /// re-running the decision loop.
    pub fn deduped_plan_rounds(&self) -> u64 {
        self.deduped_plan_rounds
    }

    /// Attach the event-driven ingestion runtime: one bounded arrival
    /// queue per tenant, drained at the start of every round.
    ///
    /// Returns the producer endpoint — a cheaply clonable handle that any
    /// thread can [`ArrivalBus::push`] into, concurrently with planning.
    /// Fails if a bus is already attached (swapping one out mid-serving
    /// would silently discard queued arrivals).
    pub fn attach_bus(&mut self, config: BusConfig) -> Result<Arc<ArrivalBus>, OnlineError> {
        if self.bus.is_some() {
            return Err(OnlineError::InvalidConfig(
                "an arrival bus is already attached to this fleet",
            ));
        }
        let bus = Arc::new(ArrivalBus::new(self.tenants.len(), config)?);
        self.bus = Some(Arc::clone(&bus));
        Ok(bus)
    }

    /// The attached arrival bus, if any.
    pub fn bus(&self) -> Option<&Arc<ArrivalBus>> {
        self.bus.as_ref()
    }

    /// Enqueue one arrival for tenant `index` on the attached bus (the
    /// round-boundary drain will ingest it). Returns whether it was
    /// queued (`false` = shed by back-pressure).
    pub fn enqueue(&self, index: usize, arrival: f64) -> Result<bool, OnlineError> {
        let bus = self.bus.as_ref().ok_or(OnlineError::InvalidConfig(
            "no arrival bus attached; use attach_bus or ingest",
        ))?;
        bus.push(index, arrival)
    }

    /// Aggregate queue health across the attached bus's tenants.
    pub fn queue_stats(&self) -> Option<QueueStats> {
        self.bus.as_ref().map(|bus| bus.stats())
    }

    /// Borrow a tenant by index. `None` for out-of-range indices *and*
    /// for paged-out tenants (reading cannot page one in — use
    /// [`TenantFleet::tenant_mut`] to wake it first).
    pub fn tenant(&self, index: usize) -> Option<&Tenant> {
        match self.tenants.get(index)? {
            TenantSlot::Resident(tenant) => Some(tenant),
            TenantSlot::Paged(_) => None,
        }
    }

    /// Mutably borrow a tenant by index (ingestion routed by the caller,
    /// warm-starting models, ...). Conservatively marks the tenant dirty
    /// for incremental checkpointing; a cold tenant is woken (paged in if
    /// needed) first — `None` if that page-in fails.
    pub fn tenant_mut(&mut self, index: usize) -> Option<&mut Tenant> {
        if index >= self.tenants.len() || self.wake_for_access(index).is_err() {
            return None;
        }
        self.dirty[index] = true;
        self.saw_direct[index] = true;
        match &mut self.tenants[index] {
            TenantSlot::Resident(tenant) => Some(tenant),
            TenantSlot::Paged(_) => None,
        }
    }

    /// Ingest one arrival for tenant `index`, synchronously on the calling
    /// thread (the pre-bus path; kept for callers that already hold the
    /// arrival ordered and in hand). A cold tenant is woken first.
    pub fn ingest(&mut self, index: usize, arrival: f64) -> Result<(), OnlineError> {
        if index >= self.tenants.len() {
            return Err(OnlineError::InvalidConfig("tenant index out of range"));
        }
        self.wake_for_access(index)?;
        let TenantSlot::Resident(tenant) = &mut self.tenants[index] else {
            return Err(OnlineError::Hibernated {
                tenant: index as u64,
            });
        };
        tenant.scaler.ingest(arrival);
        self.dirty[index] = true;
        self.saw_direct[index] = true;
        if let Some(recorder) = &mut self.recorder {
            recorder.pend_direct(index, arrival);
        }
        Ok(())
    }

    /// Run one planning round for every tenant at time `now`, on the
    /// persistent worker pool.
    ///
    /// With a bus attached, each worker first drains its tenants' arrival
    /// queues (batched, in timestamp order, through the ring's bulk
    /// append) and then plans — drain + plan is one parallel pass, so
    /// ingestion work is off the caller's thread and amortized across the
    /// round workers.
    ///
    /// `covered[i]` is tenant `i`'s count of upcoming arrivals already
    /// covered by scheduled/pending/ready instances. The output vector is
    /// ordered by tenant index and is identical for any worker count.
    ///
    /// Tenant failures are isolated: a tenant whose round errors (still
    /// warming up, failed refit, ...) yields `Err` *in its own slot* while
    /// every other tenant's plan is returned normally — one bad tenant must
    /// never take down a round for the hundreds sharing the process. The
    /// outer `Err` is reserved for caller mistakes (wrong `covered` length).
    #[allow(clippy::type_complexity)]
    pub fn run_round(
        &mut self,
        now: f64,
        covered: &[usize],
    ) -> Result<Vec<Result<PlanningRound, OnlineError>>, OnlineError> {
        self.round_inner(now, covered, true)
    }

    /// [`TenantFleet::run_round`] executed on per-round *scoped threads*
    /// instead of the persistent pool — the legacy execution flavour, kept
    /// so the pool-vs-spawn round-latency comparison in `bench_fleet`
    /// measures both on identical code. Outputs are bit-identical to
    /// [`TenantFleet::run_round`].
    #[allow(clippy::type_complexity)]
    pub fn run_round_spawning(
        &mut self,
        now: f64,
        covered: &[usize],
    ) -> Result<Vec<Result<PlanningRound, OnlineError>>, OnlineError> {
        self.round_inner(now, covered, false)
    }

    #[allow(clippy::type_complexity)]
    fn round_inner(
        &mut self,
        now: f64,
        covered: &[usize],
        use_pool: bool,
    ) -> Result<Vec<Result<PlanningRound, OnlineError>>, OnlineError> {
        if covered.len() != self.tenants.len() {
            return Err(OnlineError::InvalidConfig(
                "covered must have one entry per tenant",
            ));
        }
        let round = self.round_counter;
        let residency_on = self.residency.is_some();
        // Supervision and residency decisions are taken serially, before
        // the parallel section, so they are a pure function of (round,
        // per-tenant state) — identical for any worker count. A cold
        // tenant wakes on a queued arrival or a passed wake time and is
        // otherwise dormant: invariantly healthy and unquarantined, so
        // the supervision match below never applies to it.
        let actions: Vec<TenantAction> = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                if residency_on {
                    if let Residency::Cold { wake_at, .. } = self.residency_state[i] {
                        let arrival = self.bus.as_ref().is_some_and(|bus| {
                            bus.pending_hint(i).unwrap_or(true)
                                && bus.queued(i).map(|n| n > 0).unwrap_or(true)
                        });
                        return if arrival {
                            TenantAction::Wake {
                                reason: WakeReason::Arrival,
                            }
                        } else if now >= wake_at {
                            TenantAction::Wake {
                                reason: WakeReason::Due,
                            }
                        } else {
                            TenantAction::Dormant
                        };
                    }
                }
                match &self.supervision[i].quarantine {
                    Some(q) if round < q.next_probe => TenantAction::Skip {
                        until_round: q.next_probe,
                    },
                    Some(_) => TenantAction::Probe {
                        recovery: self.supervisor.recovery,
                        snapshot: match self.supervisor.recovery {
                            RecoveryAction::RestoreSnapshot => {
                                self.supervision[i].last_good_snapshot.clone()
                            }
                            RecoveryAction::ForceRefit => None,
                        },
                        config: match slot {
                            TenantSlot::Resident(tenant) => *tenant.scaler.config(),
                            TenantSlot::Paged(_) => self.config,
                        },
                    },
                    None => TenantAction::Normal,
                }
            })
            .collect();
        // Residency bookkeeping inputs, captured before the round mutates
        // anything: each tenant's ingested-arrivals counter (the idle
        // test is "the round ingested nothing") and which wakes must page
        // in (to attribute page-in successes/failures afterwards).
        let (pre_ingested, wake_from_page): (Vec<u64>, Vec<usize>) = if residency_on {
            let pre = self
                .tenants
                .iter()
                .map(|slot| match slot {
                    TenantSlot::Resident(tenant) => tenant.scaler.stats().arrivals_ingested,
                    TenantSlot::Paged(paged) => paged.stats.arrivals_ingested,
                })
                .collect();
            let wakes = self
                .tenants
                .iter()
                .enumerate()
                .filter(|(i, slot)| {
                    matches!(actions[*i], TenantAction::Wake { .. })
                        && matches!(slot, TenantSlot::Paged(_))
                })
                .map(|(i, _)| i)
                .collect();
            (pre, wakes)
        } else {
            (Vec::new(), Vec::new())
        };
        // Recording: capture everything a replay needs *before* the round
        // mutates it — the between-round scaler events (installs, explicit
        // refits) and the queued arrivals the round is about to drain
        // (stored in drain order so the replayed drain sees them
        // identically). Recording a bus-fed round assumes producers have
        // quiesced at the round boundary, per the ingestion contract.
        let (pre_events, bus_arrivals) = if self.recorder.is_some() {
            let pre = self.harvest_trace_events();
            let arrivals = self.bus.as_ref().map(|bus| {
                bus.checkpoint_queues()
                    .into_iter()
                    .map(|cp| {
                        let mut queued = cp.queued;
                        queued.sort_by(|a, b| a.total_cmp(b));
                        queued
                    })
                    .collect::<Vec<Vec<f64>>>()
            });
            (pre, arrivals)
        } else {
            (Vec::new(), None)
        };
        let workers = self.workers;
        let bus = self.bus.clone();
        let faults = self.faults;
        let actions_ref = &actions;
        let config = self.config;
        let origin = self.origin;
        let tracing = self.tracing;
        let sharing = self.sharing;
        let hibernation = self.hibernation.as_ref();
        // Phase 1 — prepare, arrival-major: each worker drains and
        // prepares *all* of its tenants (recovery → drain → ingest →
        // refit → sufficiency check) before any Monte Carlo planning
        // runs, so the plan phase below sees every tenant's final
        // forecast and can batch the sampling across them.
        let prepare_work = |start: usize, chunk: &mut [TenantSlot]| {
            // Injected worker-thread death: fires at the chunk boundary,
            // outside any tenant, so the whole round aborts (see the
            // module docs — this fault class is worker-count-dependent).
            if let Some(injector) = &faults {
                if injector.worker_panics(round, start) {
                    panic!("injected worker panic (round {round}, chunk {start})");
                }
            }
            // One drain buffer per worker chunk, reused across its tenants.
            let mut buf = Vec::new();
            chunk
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    let index = start + i;
                    let id = slot.id();
                    match &actions_ref[index] {
                        // Dormant tenants are not touched at all — that
                        // is the whole round-latency win.
                        TenantAction::Dormant => {
                            return PrepOutcome::Done(Err(OnlineError::Hibernated { tenant: id }));
                        }
                        TenantAction::Wake { .. } => {
                            if let TenantSlot::Paged(paged) = slot {
                                let (seed, kind) = (paged.seed, paged.kind);
                                let built = match kind {
                                    PageKind::Virgin => {
                                        OnlineScaler::with_seed(config, origin, seed)
                                    }
                                    PageKind::OnDisk { checksum } => hibernation
                                        .ok_or_else(|| OnlineError::Checkpoint {
                                            shard: None,
                                            message: format!(
                                                "tenant {id} is paged out but no hibernation \
                                                 store is attached"
                                            ),
                                        })
                                        .and_then(|store| {
                                            store.page_in(id, PageReceipt { checksum })
                                        })
                                        .and_then(|snapshot| {
                                            OnlineScaler::restore(snapshot, config)
                                        }),
                                };
                                match built {
                                    Ok(mut scaler) => {
                                        scaler.set_tracing(tracing);
                                        apply_plan_reuse(&mut scaler, &sharing);
                                        *slot =
                                            TenantSlot::Resident(Box::new(Tenant { id, scaler }));
                                    }
                                    // A failed page-in leaves the tenant
                                    // paged; the wake trigger persists,
                                    // so next round retries.
                                    Err(e) => return PrepOutcome::Done(Err(e)),
                                }
                            }
                        }
                        _ => {}
                    }
                    let TenantSlot::Resident(tenant) = slot else {
                        return PrepOutcome::Done(Err(OnlineError::Hibernated { tenant: id }));
                    };
                    // The tenant boundary: a panicking tenant (injected or
                    // real) poisons only its own slot.
                    catch_unwind(AssertUnwindSafe(|| {
                        tenant_prepare(
                            tenant,
                            index,
                            round,
                            now,
                            covered[index],
                            bus.as_deref(),
                            faults.as_ref(),
                            &actions_ref[index],
                            &mut buf,
                            &sharing,
                        )
                    }))
                    .unwrap_or_else(|payload| {
                        PrepOutcome::Done(Err(OnlineError::TenantPanicked {
                            tenant: id,
                            message: panic_message(payload),
                        }))
                    })
                })
                .collect::<Vec<PrepOutcome>>()
        };
        let prepare_outcome = catch_unwind(AssertUnwindSafe(|| {
            if use_pool {
                self.pool
                    .map_chunks_mut(&mut self.tenants, workers, prepare_work)
            } else {
                map_chunks_mut(&mut self.tenants, workers, prepare_work)
            }
        }));
        // Every prepared tenant's ring/stats advanced (the prepare phase
        // drains, ingests and refits even on the error path), so those
        // tenants are dirty for checkpoints; dormant tenants were not
        // touched at all, which is what keeps their checkpoint shards
        // clean (and reusable) across quiet rounds.
        for (i, action) in actions.iter().enumerate() {
            if !matches!(action, TenantAction::Dormant) {
                self.dirty[i] = true;
            }
        }
        let per_chunk: Vec<Vec<PrepOutcome>> = match prepare_outcome {
            Ok(per_chunk) => per_chunk,
            Err(payload) => {
                // A panic escaped the tenant boundary (injected worker
                // fault or pool bug): the round is aborted whole. Tenant
                // state may be partially advanced — conservatively mark
                // everything dirty, skip residency bookkeeping, and let
                // the caller checkpoint/restore or retry; the round
                // counter still advances so fault schedules and probes
                // stay on time.
                self.dirty.fill(true);
                self.round_counter += 1;
                return Err(OnlineError::RoundPanicked {
                    message: panic_message(payload),
                });
            }
        };
        let prep: Vec<PrepOutcome> = per_chunk.into_iter().flatten().collect();
        let plans_pending = prep
            .iter()
            .filter(|outcome| matches!(outcome, PrepOutcome::Plan { .. }))
            .count();
        // Phase 2 — cluster assembly, serial: group the tenants that still
        // need Monte Carlo planning by forecast fingerprint and sample one
        // shared arrival matrix per multi-member cluster. Serial on
        // purpose: membership, horizons and sampler seeds become a pure
        // function of (tenant states, round) — identical for any worker
        // count — and the seeds come from the keys themselves, so no
        // tenant's RNG stream is touched. Any failure to build a cluster's
        // matrix silently degrades its members to the private path.
        let mut samplers: Vec<ArrivalSampler> = Vec::new();
        let mut cluster_of: Vec<Option<usize>> = vec![None; prep.len()];
        if self.sharing.enabled && plans_pending > 0 {
            let mut clusters: std::collections::HashMap<ClusterKey, Vec<usize>> =
                std::collections::HashMap::new();
            // First-seen key order, so sampler assembly never iterates the
            // map (iteration order would leak the hasher into timing — the
            // plans themselves stay order-independent either way).
            let mut order: Vec<ClusterKey> = Vec::new();
            for (i, outcome) in prep.iter().enumerate() {
                if let PrepOutcome::Plan { key: Some(key), .. } = outcome {
                    clusters
                        .entry(*key)
                        .or_insert_with(|| {
                            order.push(*key);
                            Vec::new()
                        })
                        .push(i);
                }
            }
            for key in order {
                let members = &clusters[&key];
                if members.len() < 2 {
                    // A singleton gains nothing from the representative
                    // approximation — private sampling costs the same.
                    continue;
                }
                let horizon = members
                    .iter()
                    .map(|&i| match prep[i] {
                        PrepOutcome::Plan { wanted, .. } => wanted,
                        PrepOutcome::Done(_) => 0,
                    })
                    .max()
                    .unwrap_or(0)
                    .max(1);
                let Ok(representative) = key.representative_intensity() else {
                    continue;
                };
                let mut rng = StdRng::seed_from_u64(key.seed(round));
                let Ok(sampler) =
                    ArrivalSampler::new(&representative, now, horizon, key.samples(), &mut rng)
                else {
                    continue;
                };
                let slot = samplers.len();
                samplers.push(sampler);
                for &i in members {
                    cluster_of[i] = Some(slot);
                }
            }
        }
        // Phase 2b — decision-dedup grouping (Layer 1), serial: members of
        // one sampling cluster that plan against the same shared matrix
        // with the same covered count share a [`PlanKey`]; the cluster key
        // already pins the rule, pending model, replication count and
        // window geometry, so under a *deterministic* pending model (the
        // decision loop then consumes no caller RNG) their decision
        // schedules are provably identical. The first such member in
        // tenant order leads; the rest adopt its schedule after the plan
        // phase. Grouping is serial and index-ordered for the same
        // worker-invariance reasons as the cluster assembly above.
        let mut adopt_from: Vec<Option<usize>> = vec![None; prep.len()];
        if self.sharing.enabled && self.sharing.decision_dedup {
            let mut leaders: std::collections::HashMap<PlanKey, usize> =
                std::collections::HashMap::new();
            for (i, outcome) in prep.iter().enumerate() {
                let PrepOutcome::Plan { key: Some(key), .. } = outcome else {
                    continue;
                };
                // Only members actually planning against a shared matrix
                // can dedup: a degraded (private) member's plan depends on
                // its own forecast and RNG stream.
                if cluster_of[i].is_none() {
                    continue;
                }
                let TenantSlot::Resident(tenant) = &self.tenants[i] else {
                    continue;
                };
                if !matches!(
                    tenant.scaler.config().pipeline.pending,
                    PendingTimeModel::Deterministic(_)
                ) {
                    continue;
                }
                match leaders.entry(PlanKey::new(*key, covered[i])) {
                    std::collections::hash_map::Entry::Occupied(leader) => {
                        adopt_from[i] = Some(*leader.get());
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(i);
                    }
                }
            }
        }
        // Phase 3 — plan, batch-major: the Monte Carlo stage for every
        // tenant the prepare phase left pending, against its cluster's
        // shared matrix when one was built. Skipped entirely when nothing
        // is pending (the common case for mostly-hibernated fleets), so
        // quiet rounds pay no second parallel pass.
        type PlanResult = Option<(Result<PlanningRound, OnlineError>, bool)>;
        let mut plan_results: Vec<PlanResult> = if plans_pending == 0 {
            prep.iter().map(|_| None).collect()
        } else {
            let prep_ref = &prep;
            let cluster_ref = &cluster_of;
            let samplers_ref = &samplers;
            let adopt_ref = &adopt_from;
            let plan_work = |start: usize, chunk: &mut [TenantSlot]| {
                chunk
                    .iter_mut()
                    .enumerate()
                    .map(|(i, slot)| {
                        let index = start + i;
                        if !matches!(prep_ref[index], PrepOutcome::Plan { .. }) {
                            return None;
                        }
                        if adopt_ref[index].is_some() {
                            // Plan-group follower: served in the serial
                            // adoption pass below, after its leader planned.
                            return None;
                        }
                        let TenantSlot::Resident(tenant) = slot else {
                            // The prepare phase only leaves resident
                            // tenants pending.
                            return Some((
                                Err(OnlineError::Hibernated { tenant: slot.id() }),
                                false,
                            ));
                        };
                        let sampler = cluster_ref[index].map(|slot| &samplers_ref[slot]);
                        let id = tenant.id;
                        Some(
                            catch_unwind(AssertUnwindSafe(|| {
                                tenant_plan(tenant, now, covered[index], sampler)
                            }))
                            .unwrap_or_else(|payload| {
                                (
                                    Err(OnlineError::TenantPanicked {
                                        tenant: id,
                                        message: panic_message(payload),
                                    }),
                                    false,
                                )
                            }),
                        )
                    })
                    .collect::<Vec<PlanResult>>()
            };
            let plan_outcome = catch_unwind(AssertUnwindSafe(|| {
                if use_pool {
                    self.pool
                        .map_chunks_mut(&mut self.tenants, workers, plan_work)
                } else {
                    map_chunks_mut(&mut self.tenants, workers, plan_work)
                }
            }));
            match plan_outcome {
                Ok(per_chunk) => per_chunk.into_iter().flatten().collect(),
                Err(payload) => {
                    // Same whole-round abort contract as the prepare phase.
                    self.dirty.fill(true);
                    self.round_counter += 1;
                    return Err(OnlineError::RoundPanicked {
                        message: panic_message(payload),
                    });
                }
            }
        };
        // Phase 3b — adoption, serial: each plan-group follower adopts its
        // leader's decision schedule when the leader actually planned on
        // the shared path. If the leader degraded to private sampling,
        // errored, or panicked, the follower runs its own full plan stage
        // instead — bit-identical to never having been grouped (adoption
        // consumes no tenant RNG either way).
        for i in 0..plan_results.len() {
            let Some(leader) = adopt_from[i] else {
                continue;
            };
            let adopted = match &plan_results[leader] {
                Some((Ok(round), true)) => Some(round.clone()),
                _ => None,
            };
            let id = self.tenants[i].id();
            let TenantSlot::Resident(tenant) = &mut self.tenants[i] else {
                plan_results[i] = Some((Err(OnlineError::Hibernated { tenant: id }), false));
                continue;
            };
            let result = if let Some(round) = adopted {
                self.deduped_plan_rounds += 1;
                (Ok(tenant.scaler.adopt_shared(now, &round)), true)
            } else {
                let sampler = cluster_of[i].map(|slot| &samplers[slot]);
                catch_unwind(AssertUnwindSafe(|| {
                    tenant_plan(tenant, now, covered[i], sampler)
                }))
                .unwrap_or_else(|payload| {
                    (
                        Err(OnlineError::TenantPanicked {
                            tenant: id,
                            message: panic_message(payload),
                        }),
                        false,
                    )
                })
            };
            plan_results[i] = Some(result);
        }
        let results: Vec<Result<PlanningRound, OnlineError>> = prep
            .into_iter()
            .zip(plan_results)
            .map(|(outcome, planned)| match outcome {
                PrepOutcome::Done(result) => result,
                PrepOutcome::Plan { .. } => {
                    planned
                        .expect("plan phase produced a result for every pending tenant")
                        .0
                }
            })
            .collect();
        // Attribute the page-ins the parallel section performed: a wake
        // whose slot is resident now paged in successfully; one still
        // paged failed (and will retry next round).
        for &i in &wake_from_page {
            match &self.tenants[i] {
                TenantSlot::Resident(_) => self.residency_counters.page_ins += 1,
                TenantSlot::Paged(_) => self.residency_counters.page_in_failures += 1,
            }
        }
        self.update_supervision(round, &actions, &results);
        let residency_events = self.update_residency(round, now, &actions, &results, &pre_ingested);
        self.saw_direct.fill(false);
        self.round_counter += 1;
        // Detach the recorder while harvesting (the harvest borrows the
        // tenants mutably), then re-attach before propagating any error.
        if let Some(mut recorder) = self.recorder.take() {
            let post_events = self.harvest_trace_events();
            let queue = self.bus.as_ref().map(|bus| bus.stats());
            let outcome = recorder.record_round(
                now,
                covered,
                pre_events,
                bus_arrivals,
                &results,
                post_events,
                &residency_events,
                queue,
            );
            self.recorder = Some(recorder);
            outcome?;
        }
        self.residency_events.extend(residency_events);
        Ok(results)
    }

    /// Fold one round's actions and results into the residency state:
    /// wake bookkeeping, idle-streak counting, cold entry (gated on the
    /// forecast via [`OnlineScaler::quiescence_horizon`]) and the
    /// page-out sweep. Serial and deterministic; returns the round's
    /// residency events in emission order (buffered access wakes first,
    /// then wakes and hibernations in tenant order).
    fn update_residency(
        &mut self,
        round: u64,
        now: f64,
        actions: &[TenantAction],
        results: &[Result<PlanningRound, OnlineError>],
        pre_ingested: &[u64],
    ) -> Vec<(u64, ResidencyEvent)> {
        let Some(rc) = self.residency else {
            return Vec::new();
        };
        let mut events = std::mem::take(&mut self.pending_wakes);
        // Wake bookkeeping: a wake action whose slot is resident now woke
        // this round; one still paged failed its page-in and stays cold
        // (the trigger persists, so next round retries).
        for (i, action) in actions.iter().enumerate() {
            if let TenantAction::Wake { reason } = action {
                if matches!(self.tenants[i], TenantSlot::Resident(_)) {
                    self.residency_state[i] = Residency::Hot { idle_streak: 0 };
                    self.residency_counters.woken_total += 1;
                    events.push((
                        self.tenants[i].id(),
                        ResidencyEvent::Wake { reason: *reason },
                    ));
                }
            }
        }
        // Cold entry: a healthy resident tenant that did nothing this
        // round — ingested no arrivals, was not touched directly, and had
        // nothing to plan — extends its idle streak; a long enough streak
        // plus a forecast that expects no work hibernates it. The wake
        // time comes from the forecast (next active window or refit
        // deadline), so a hibernated tenant can never sleep through work
        // its own model predicted.
        for (i, slot) in self.tenants.iter().enumerate() {
            let TenantSlot::Resident(tenant) = slot else {
                continue;
            };
            let Residency::Hot { idle_streak } = self.residency_state[i] else {
                continue;
            };
            let idle = self.supervision[i].health == TenantHealth::Healthy
                && matches!(actions[i], TenantAction::Normal)
                && tenant.scaler.stats().arrivals_ingested == pre_ingested[i]
                && !self.saw_direct[i]
                && match &results[i] {
                    Ok(plan) => plan.decisions.is_empty(),
                    Err(OnlineError::NotTrained) => true,
                    Err(_) => false,
                };
            let streak = if idle { idle_streak + 1 } else { 0 };
            self.residency_state[i] = Residency::Hot {
                idle_streak: streak,
            };
            if idle && streak >= rc.cold_after {
                if let Some(wake_at) = tenant.scaler.quiescence_horizon(now, rc.idle_epsilon) {
                    self.residency_state[i] = Residency::Cold {
                        wake_at,
                        since_round: round,
                    };
                    self.residency_counters.hibernated_total += 1;
                    events.push((tenant.id, ResidencyEvent::Hibernate));
                }
            }
        }
        // Page-out sweep: every cold resident (fresh hibernations,
        // restored-cold tenants, previous page-out failures) leaves
        // memory. A failed page-out keeps the tenant resident — cold but
        // safe — and retries here next round.
        // (Cloned out of `self` so the loop below can mutate tenant
        // slots; the store is a path + shared storage handle.)
        if let Some(store) = self.hibernation.clone() {
            for i in 0..self.tenants.len() {
                if !matches!(self.residency_state[i], Residency::Cold { .. }) {
                    continue;
                }
                let TenantSlot::Resident(tenant) = &self.tenants[i] else {
                    continue;
                };
                let id = tenant.id;
                let snapshot = tenant.scaler.snapshot();
                let stats = *tenant.scaler.stats();
                match store.page_out(id, &snapshot) {
                    Ok(receipt) => {
                        self.tenants[i] = TenantSlot::Paged(PagedTenant {
                            id,
                            // Never used: an on-disk page rebuilds from
                            // its snapshot, not from a seed.
                            seed: 0,
                            kind: PageKind::OnDisk {
                                checksum: receipt.checksum,
                            },
                            stats,
                        });
                        self.residency_counters.page_outs += 1;
                    }
                    Err(_) => self.residency_counters.page_out_failures += 1,
                }
            }
        }
        events
    }

    /// Take every resident tenant's buffered trace events (paged tenants
    /// have none, structurally) *without* marking anything dirty or
    /// waking anyone — the replayer's harvest path, which must not
    /// perturb residency.
    pub(crate) fn harvest_trace_events(&mut self) -> Vec<Vec<ScalerEvent>> {
        self.tenants
            .iter_mut()
            .map(|slot| match slot {
                TenantSlot::Resident(tenant) => tenant.scaler.take_trace_events(),
                TenantSlot::Paged(_) => Vec::new(),
            })
            .collect()
    }

    /// Fold one round's results into the per-tenant supervision state:
    /// failure counting, quarantine entry/exit, probe backoff doubling,
    /// last-good plan/snapshot capture. Serial and deterministic.
    fn update_supervision(
        &mut self,
        round: u64,
        actions: &[TenantAction],
        results: &[Result<PlanningRound, OnlineError>],
    ) {
        let config = self.supervisor;
        for (i, result) in results.iter().enumerate() {
            let probing = matches!(actions[i], TenantAction::Probe { .. });
            let skipped = matches!(actions[i], TenantAction::Skip { .. });
            let sup = &mut self.supervision[i];
            sup.served_sticky = false;
            if probing {
                sup.probes += 1;
            }
            match result {
                Ok(plan) => {
                    sup.consecutive_failures = 0;
                    if probing {
                        sup.quarantine = None;
                        sup.recoveries += 1;
                        sup.health = TenantHealth::Recovered;
                    } else {
                        sup.health = TenantHealth::Healthy;
                    }
                    sup.last_good_plan = Some(plan.clone());
                    if config.recovery == RecoveryAction::RestoreSnapshot
                        && config.snapshot_every > 0
                        && round.is_multiple_of(config.snapshot_every)
                    {
                        // An Ok result implies the slot is resident (only
                        // resident tenants plan).
                        if let TenantSlot::Resident(tenant) = &self.tenants[i] {
                            sup.last_good_snapshot = Some(Box::new(tenant.scaler.snapshot()));
                        }
                    }
                }
                // Cold start is not a failure: a tenant still accumulating
                // its first training window must never be quarantined for
                // it (and a healthy fleet must behave identically with
                // supervision on or off).
                Err(OnlineError::NotTrained) => {
                    sup.health = if probing {
                        TenantHealth::Probing
                    } else {
                        TenantHealth::Healthy
                    };
                }
                // Hibernation is not a failure: a dormant tenant skipped
                // its round *because it is healthy and idle* — counting
                // it toward quarantine would punish quiescence.
                Err(OnlineError::Hibernated { .. }) => {
                    sup.health = TenantHealth::Hibernated;
                }
                // A page-in I/O failure under a wake action is
                // infrastructure trouble, not the tenant's: it stays
                // hibernated (and paged), the wake trigger persists, and
                // next round retries without burning failure budget.
                Err(OnlineError::Checkpoint { .. })
                    if matches!(actions[i], TenantAction::Wake { .. }) =>
                {
                    sup.health = TenantHealth::Hibernated;
                }
                Err(OnlineError::Quarantined { .. }) if skipped => {
                    sup.health = TenantHealth::Quarantined;
                    if sup.last_good_plan.is_some() {
                        sup.degraded_rounds += 1;
                        sup.served_sticky = true;
                    }
                }
                Err(e) => {
                    sup.failures += 1;
                    if matches!(e, OnlineError::TenantPanicked { .. }) {
                        sup.panics += 1;
                    }
                    sup.consecutive_failures += 1;
                    if let Some(mut q) = sup.quarantine {
                        // A failed probe doubles the backoff, capped.
                        q.backoff = q.backoff.saturating_mul(2).min(config.max_backoff.max(1));
                        q.next_probe = round + q.backoff;
                        sup.quarantine = Some(q);
                        sup.health = TenantHealth::Probing;
                    } else if sup.consecutive_failures >= config.quarantine_after.max(1) {
                        let backoff = config.probe_backoff.clamp(1, config.max_backoff.max(1));
                        sup.quarantine = Some(QuarantineState {
                            since_round: round,
                            backoff,
                            next_probe: round + backoff,
                        });
                        sup.health = TenantHealth::Quarantined;
                    } else {
                        sup.health = TenantHealth::Failing;
                    }
                    if sup.last_good_plan.is_some() {
                        sup.degraded_rounds += 1;
                        sup.served_sticky = true;
                    }
                }
            }
        }
    }

    /// One supervised planning round: [`TenantFleet::run_round`] plus the
    /// degraded-mode view — failing/quarantined tenants are served their
    /// last good plan (flagged `sticky`) instead of nothing, and the
    /// report carries per-tenant health and fleet-level degradation
    /// counts. The underlying plans, errors and supervision transitions
    /// are identical to calling `run_round` directly.
    pub fn run_round_supervised(
        &mut self,
        now: f64,
        covered: &[usize],
    ) -> Result<FleetRound, OnlineError> {
        let round = self.round_counter;
        let results = self.run_round(now, covered)?;
        let mut outcomes = Vec::with_capacity(results.len());
        let mut degraded = 0;
        let mut quarantined = 0;
        let mut recovered = 0;
        let mut hibernated = 0;
        for (i, result) in results.into_iter().enumerate() {
            let sup = &self.supervision[i];
            match sup.health {
                TenantHealth::Quarantined | TenantHealth::Probing => quarantined += 1,
                TenantHealth::Recovered => recovered += 1,
                TenantHealth::Hibernated => hibernated += 1,
                TenantHealth::Healthy | TenantHealth::Failing => {}
            }
            let (plan, sticky, error) = match result {
                Ok(plan) => (Some(plan), false, None),
                Err(e) if sup.served_sticky => {
                    degraded += 1;
                    (sup.last_good_plan.clone(), true, Some(e))
                }
                Err(e) => (None, false, Some(e)),
            };
            outcomes.push(TenantOutcome {
                tenant: self.tenants[i].id(),
                plan,
                sticky,
                error,
                health: sup.health,
            });
        }
        Ok(FleetRound {
            round,
            outcomes,
            degraded,
            quarantined,
            recovered,
            hibernated,
        })
    }

    /// Enable deterministic fault injection for planning and ingestion
    /// seams (checkpoint I/O faults are injected separately, via
    /// [`TenantFleet::set_checkpoint_storage`] with a
    /// [`crate::faults::FaultyStorage`]). A plan with every probability
    /// at zero disables injection.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = if plan.enabled() {
            Some(FaultInjector::new(plan))
        } else {
            None
        };
        self.restored_unarmed = false;
    }

    /// The active fault plan, if chaos is enabled.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.map(|injector| *injector.plan())
    }

    /// Replace the supervision policy (applies from the next round).
    pub fn set_supervisor(&mut self, config: SupervisorConfig) {
        self.supervisor = config;
        self.restored_unarmed = false;
    }

    /// The active supervision policy.
    pub fn supervisor(&self) -> SupervisorConfig {
        self.supervisor
    }

    /// The next round's sequence number (rounds run so far).
    pub fn round(&self) -> u64 {
        self.round_counter
    }

    /// A tenant's health as of the last round.
    pub fn tenant_health(&self, index: usize) -> Option<TenantHealth> {
        self.supervision.get(index).map(|sup| sup.health)
    }

    /// Fleet-wide supervision counters.
    pub fn supervision_stats(&self) -> SupervisionStats {
        let mut total = SupervisionStats::default();
        for sup in &self.supervision {
            total.failures += sup.failures;
            total.panics += sup.panics;
            total.probes += sup.probes;
            total.recoveries += sup.recoveries;
            total.degraded_rounds += sup.degraded_rounds;
            if sup.quarantine.is_some() {
                total.quarantined_now += 1;
            }
        }
        total
    }

    /// Use `storage` for subsequent checkpoints (chaos tests inject a
    /// [`crate::faults::FaultyStorage`] here; production uses the default
    /// filesystem backend).
    pub fn set_checkpoint_storage(&mut self, storage: Arc<dyn CheckpointStorage>) {
        self.checkpoint_storage = Some(storage);
    }

    /// Checkpoint I/O counters accumulated across this fleet's writes
    /// and restore: retries, reuse fallbacks, generation fallbacks.
    pub fn checkpoint_io_stats(&self) -> CheckpointIoStats {
        self.checkpoint_io
    }

    /// One planning round with the same `covered` count for every tenant.
    #[allow(clippy::type_complexity)]
    pub fn run_round_uniform(
        &mut self,
        now: f64,
        covered: usize,
    ) -> Result<Vec<Result<PlanningRound, OnlineError>>, OnlineError> {
        let covered = vec![covered; self.tenants.len()];
        self.run_round(now, &covered)
    }

    /// Drain every tenant's arrival queue into its ring *without*
    /// planning — a parallel ingestion-only pass (flushing before a
    /// checkpoint, and the `ingest_throughput` bench). Returns the total
    /// arrivals drained. A no-op without a bus.
    pub fn drain_bus(&mut self) -> Result<u64, OnlineError> {
        let Some(bus) = self.bus.clone() else {
            return Ok(0);
        };
        let workers = self.workers;
        let residency_on = self.residency.is_some();
        let residency_state: &[Residency] = &self.residency_state;
        let per_chunk: Vec<Result<Vec<u64>, OnlineError>> =
            self.pool
                .map_chunks_mut(&mut self.tenants, workers, |start, chunk| {
                    let mut buf = Vec::new();
                    chunk
                        .iter_mut()
                        .enumerate()
                        .map(|(i, slot)| {
                            let index = start + i;
                            // Cold tenants keep their arrivals queued: the
                            // queue *is* their wake trigger, and draining it
                            // here would need a paged-out scaler anyway. A
                            // checkpoint still captures queued arrivals, so
                            // nothing is lost.
                            if residency_on
                                && matches!(residency_state[index], Residency::Cold { .. })
                            {
                                return Ok(0u64);
                            }
                            let TenantSlot::Resident(tenant) = slot else {
                                return Ok(0u64);
                            };
                            let n = bus.drain_into(index, &mut buf)?;
                            if n > 0 {
                                tenant.scaler.ingest_batch(&buf);
                            }
                            Ok(n as u64)
                        })
                        .collect()
                });
        let mut total = 0u64;
        for (index, n) in per_chunk
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .flatten()
            .enumerate()
        {
            if n > 0 {
                self.dirty[index] = true;
            }
            total += n;
        }
        Ok(total)
    }

    /// Checkpoint the whole fleet to `dir` with the default shard size
    /// ([`DEFAULT_TENANTS_PER_SHARD`] tenants per shard file). See
    /// [`TenantFleet::checkpoint_sharded`].
    pub fn checkpoint(&mut self, dir: impl AsRef<Path>) -> Result<Manifest, OnlineError> {
        self.checkpoint_sharded(dir, DEFAULT_TENANTS_PER_SHARD)
    }

    /// Checkpoint the whole fleet to `dir`, sharded into groups of
    /// `tenants_per_shard` consecutive tenants per file.
    ///
    /// Tenant snapshots are taken and serialized in parallel on the
    /// fleet's worker pool; the write is crash-safe (a new generation
    /// becomes current only at the final atomic manifest rename, so a crash
    /// mid-checkpoint leaves the previous checkpoint intact). The snapshot
    /// captures per-tenant seeds, RNG stream positions, serving counters,
    /// refit deadlines **and each tenant's undrained arrival queue**, so a
    /// fleet restored from the checkpoint — even one taken mid-burst, with
    /// arrivals still queued — plans bit-identically to one that never
    /// stopped.
    ///
    /// Checkpoints are **incremental**: shard groups whose tenants neither
    /// ingested nor planned since the last successful checkpoint (and
    /// whose queues did not change) are reused from the previous
    /// generation instead of reserialized; the manifest's `reused_from`
    /// fields record which. Reuse is offered only when the directory's
    /// current manifest is verifiably this fleet's own previous write
    /// (same path, generation and per-shard checksums) — a different
    /// writer sharing the directory, or a switch to a new directory,
    /// forces a full rewrite rather than linking foreign bytes.
    pub fn checkpoint_sharded(
        &mut self,
        dir: impl AsRef<Path>,
        tenants_per_shard: usize,
    ) -> Result<Manifest, OnlineError> {
        let tenants_per_shard = tenants_per_shard.max(1);
        let dir = dir.as_ref();
        // Capture queue contents first: scaler state cannot change under
        // us (`&mut self`), so the checkpoint is a consistent cut at the
        // capture instant — arrivals pushed after it belong to the next
        // generation and stay live on the bus.
        let queues: Option<Vec<QueueCheckpoint>> =
            self.bus.as_ref().map(|bus| bus.checkpoint_queues());
        // Full snapshots are taken even for clean groups: the reuse path
        // discards them, but they keep `CheckpointStore::write_with`'s
        // fallback (reserialize when the previous shard file cannot be
        // linked) self-contained. At 250 tenants this costs ~1 ms of the
        // steady-state incremental checkpoint — accepted trade-off over a
        // lazier, two-phase write API.
        let indexed: Vec<(usize, &TenantSlot)> = self.tenants.iter().enumerate().collect();
        let supervision = &self.supervision;
        let round = self.round_counter;
        let residency_on = self.residency.is_some();
        let residency_state: &[Residency] = &self.residency_state;
        let config = self.config;
        let origin = self.origin;
        let hibernation = self.hibernation.as_ref();
        let snapshots: Vec<TenantSnapshot> = self
            .pool
            .parallel_map(&indexed, self.workers, |&(index, slot)| {
                // A paged tenant's snapshot comes from its page (or, for a
                // virgin one, from materializing a fresh scaler): the
                // checkpoint stays self-contained — restorable without the
                // hibernation directory.
                let scaler_snapshot = match slot {
                    TenantSlot::Resident(tenant) => tenant.scaler.snapshot(),
                    TenantSlot::Paged(paged) => match paged.kind {
                        PageKind::Virgin => {
                            OnlineScaler::with_seed(config, origin, paged.seed)?.snapshot()
                        }
                        PageKind::OnDisk { checksum } => hibernation
                            .ok_or_else(|| OnlineError::Checkpoint {
                                shard: None,
                                message: format!(
                                    "tenant {} is paged out but no hibernation store is attached",
                                    paged.id
                                ),
                            })?
                            .page_in(paged.id, PageReceipt { checksum })?,
                    },
                };
                let mut snapshot = TenantSnapshot::new(slot.id(), scaler_snapshot);
                if let Some(queues) = &queues {
                    let queue = &queues[index];
                    snapshot.queued = Some(queue.queued.clone());
                    snapshot.queue = Some(queue.stats);
                }
                let sup = &supervision[index];
                snapshot.supervision = Some(SupervisionSnapshot {
                    round,
                    consecutive_failures: sup.consecutive_failures,
                    quarantine: sup.quarantine,
                    failures: sup.failures,
                    panics: sup.panics,
                    probes: sup.probes,
                    recoveries: sup.recoveries,
                    degraded_rounds: sup.degraded_rounds,
                    last_good_plan: sup.last_good_plan.clone(),
                    last_good_snapshot: sup.last_good_snapshot.clone(),
                });
                if residency_on {
                    snapshot.residency = Some(match residency_state[index] {
                        Residency::Hot { idle_streak } => ResidencySnapshot {
                            cold: false,
                            idle_streak,
                            wake_at: None,
                            since_round: 0,
                        },
                        Residency::Cold {
                            wake_at,
                            since_round,
                        } => ResidencySnapshot {
                            cold: true,
                            idle_streak: 0,
                            // `None` encodes the unreachable INFINITY wake
                            // (JSON has no infinities).
                            wake_at: wake_at.is_finite().then_some(wake_at),
                            since_round,
                        },
                    });
                }
                Ok(snapshot)
            })
            .into_iter()
            .collect::<Result<Vec<_>, OnlineError>>()?;
        let store = self.open_store(dir);
        let ours = self.previous_generation_is_ours(&store, dir, tenants_per_shard);
        // The restorability induction may only chain through *our own*
        // writes: `ours` proves no other writer touched the directory
        // since the last write, and `restorable` carries the anchor.
        let previous_restorable = ours
            && self
                .last_checkpoint
                .as_ref()
                .is_some_and(|last| last.restorable);
        let clean: Vec<bool> = if ours {
            self.dirty
                .chunks(tenants_per_shard)
                .enumerate()
                .map(|(group, dirty)| {
                    dirty.iter().enumerate().all(|(offset, &tenant_dirty)| {
                        let i = group * tenants_per_shard + offset;
                        !tenant_dirty
                            && queues.as_ref().is_none_or(|queues| {
                                queues[i].mutations == self.checkpointed_queue_mutations[i]
                            })
                    })
                })
                .collect()
        } else {
            vec![false; self.tenants.len().div_ceil(tenants_per_shard)]
        };
        let written = store.write_with(
            &snapshots,
            &WriteOptions {
                tenants_per_shard,
                workers: self.workers,
                pool: Some(&self.pool),
                bus: self.bus.as_ref().map(|bus| bus.config()),
                clean_shards: Some(&clean),
                round: Some(self.round_counter),
                residency: self.residency,
                previous_restorable,
            },
        );
        // Accumulate I/O counters whether or not the write landed: retries
        // and fallbacks on a failed write are exactly what the warnings
        // surface.
        let io = store.io_stats();
        let retention_blocked = io.retention_verify_failures > 0;
        self.absorb_io(io);
        let manifest = written?;
        // Only a *successful* swap resets dirtiness; a failed write keeps
        // every tenant dirty so the next attempt rewrites conservatively.
        self.dirty.fill(false);
        if let Some(queues) = &queues {
            for (slot, queue) in self
                .checkpointed_queue_mutations
                .iter_mut()
                .zip(queues.iter())
            {
                *slot = queue.mutations;
            }
        }
        if retention_blocked {
            // Retention could not verify an old generation restorable, so
            // the sweep was withheld (see `RetentionPolicy`). Forget our
            // last write: the next checkpoint is then a full rewrite,
            // which verifies trivially, and sweeping resumes — the store
            // self-heals instead of accumulating generations forever.
            self.last_checkpoint = None;
        } else {
            self.last_checkpoint = Some(LastCheckpoint {
                dir: dir.to_path_buf(),
                generation: manifest.generation,
                checksums: manifest.shards.iter().map(|s| s.checksum.clone()).collect(),
                tenants_per_shard,
                restorable: store.last_write_restorable(),
            });
        }
        Ok(manifest)
    }

    /// Build a checkpoint store on this fleet's storage backend.
    fn open_store(&self, dir: &Path) -> CheckpointStore {
        match &self.checkpoint_storage {
            Some(storage) => CheckpointStore::with_storage(dir, Arc::clone(storage)),
            None => CheckpointStore::new(dir),
        }
    }

    /// Fold one store's I/O counters into the fleet's running totals.
    fn absorb_io(&mut self, io: CheckpointIoStats) {
        self.checkpoint_io.retries += io.retries;
        self.checkpoint_io.reuse_fallbacks += io.reuse_fallbacks;
        self.checkpoint_io.generation_fallbacks += io.generation_fallbacks;
        self.checkpoint_io.retention_verify_failures += io.retention_verify_failures;
    }

    /// Whether `dir`'s current manifest is this fleet's own last write —
    /// the precondition for offering shard reuse. Any doubt (different
    /// directory, no prior write, unreadable manifest, generation or
    /// checksum mismatch from a concurrent writer) answers `false`, which
    /// only costs a full rewrite, never correctness. A shard-size change
    /// also answers `false`: reusing across different groupings could link
    /// a shard holding the wrong tenants (see [`LastCheckpoint`]).
    fn previous_generation_is_ours(
        &self,
        store: &CheckpointStore,
        dir: &Path,
        tenants_per_shard: usize,
    ) -> bool {
        let Some(last) = self
            .last_checkpoint
            .as_ref()
            .filter(|last| last.dir == dir && last.tenants_per_shard == tenants_per_shard)
        else {
            return false;
        };
        let Ok(manifest) = store.read_manifest() else {
            return false;
        };
        manifest.generation == last.generation
            && manifest.shards.len() == last.checksums.len()
            && manifest
                .shards
                .iter()
                .zip(&last.checksums)
                .all(|(shard, checksum)| &shard.checksum == checksum)
    }

    /// Restore a fleet from the checkpoint in `dir`, loading and
    /// deserializing shards in parallel.
    ///
    /// `config` is the shared serving configuration (per-tenant seeds and
    /// RNG positions come from the checkpoint, not from `config`'s seed).
    /// Shards are checksum-verified before parsing; a corrupt shard fails
    /// the restore with an error naming that shard. When the checkpoint
    /// was taken from a fleet with an arrival bus, the bus is rebuilt with
    /// every tenant's undrained queue and back-pressure accounting intact,
    /// so a restore mid-burst continues bit-identically. The restored
    /// fleet's worker budget defaults to the machine's available
    /// parallelism, and — as with a fresh fleet — its plans do not depend
    /// on it.
    pub fn restore(dir: impl AsRef<Path>, config: &OnlineConfig) -> Result<Self, OnlineError> {
        Self::restore_from(CheckpointStore::new(dir.as_ref()), config).map(|(fleet, _)| fleet)
    }

    /// [`TenantFleet::restore`] with the recovery surfaced: returns the
    /// restored fleet plus the store's fallback notes (non-empty when the
    /// newest generation was corrupt and an older restorable one was used
    /// — each note names the generation that was skipped and why).
    pub fn restore_with_report(
        dir: impl AsRef<Path>,
        config: &OnlineConfig,
    ) -> Result<(Self, Vec<String>), OnlineError> {
        Self::restore_from(CheckpointStore::new(dir.as_ref()), config)
    }

    /// [`TenantFleet::restore`] through an injected storage backend
    /// (chaos tests exercise the retry/scan-back machinery with a
    /// [`crate::faults::FaultyStorage`] here). The restored fleet keeps
    /// `storage` for its subsequent checkpoints.
    pub fn restore_with_storage(
        dir: impl AsRef<Path>,
        config: &OnlineConfig,
        storage: Arc<dyn CheckpointStorage>,
    ) -> Result<(Self, Vec<String>), OnlineError> {
        let store = CheckpointStore::with_storage(dir.as_ref(), Arc::clone(&storage));
        let (mut fleet, notes) = Self::restore_from(store, config)?;
        fleet.checkpoint_storage = Some(storage);
        Ok((fleet, notes))
    }

    /// Restore a fleet from the checkpoint in `dir` **and re-arm its
    /// runtime wiring** in one step.
    ///
    /// A checkpoint persists per-tenant supervision *state* (quarantines,
    /// failure counters, last-good plans) but not the runtime *wiring*
    /// around it: the supervisor policy, the fault plan and the storage
    /// backend live outside the tenants. A plain [`TenantFleet::restore`]
    /// silently reverts all three to defaults — a quarantined tenant
    /// would probe under the default policy, and a chaos session would
    /// resume with injection off. This constructor applies the wiring
    /// atomically with the restore; the result reports
    /// [`TenantFleet::restored_unarmed`] `false`.
    pub fn restore_with(
        dir: impl AsRef<Path>,
        config: &OnlineConfig,
        options: RestoreOptions,
    ) -> Result<(Self, Vec<String>), OnlineError> {
        let dir = dir.as_ref();
        let store = match &options.storage {
            Some(storage) => CheckpointStore::with_storage(dir, Arc::clone(storage)),
            None => CheckpointStore::new(dir),
        };
        let (mut fleet, notes) = Self::restore_from(store, config)?;
        fleet.checkpoint_storage = options.storage;
        if let Some(supervisor) = options.supervisor {
            fleet.supervisor = supervisor;
        }
        if let Some(faults) = options.faults {
            fleet.set_faults(faults);
        }
        if let Some(hibernation_dir) = options.hibernation_dir {
            fleet.set_hibernation_dir(hibernation_dir)?;
        }
        fleet.restored_unarmed = false;
        Ok((fleet, notes))
    }

    /// True when this fleet came from a plain [`TenantFleet::restore`]
    /// (or [`TenantFleet::restore_with_report`]) and its supervisor
    /// policy, fault plan and storage wiring have **not** been re-armed —
    /// they are defaults, not what the checkpointed session ran with.
    /// Cleared by [`TenantFleet::restore_with`],
    /// [`TenantFleet::set_supervisor`] and [`TenantFleet::set_faults`].
    pub fn restored_unarmed(&self) -> bool {
        self.restored_unarmed
    }

    fn restore_from(
        store: CheckpointStore,
        config: &OnlineConfig,
    ) -> Result<(Self, Vec<String>), OnlineError> {
        let workers = available_threads();
        let (manifest, per_shard) = store.load_shards(workers)?;
        let mut snapshots = Vec::with_capacity(manifest.tenant_count);
        for result in per_shard {
            snapshots.extend(result?);
        }
        snapshots.sort_by_key(|s| s.id);
        if snapshots.windows(2).any(|w| w[0].id == w[1].id) {
            return Err(OnlineError::Checkpoint {
                shard: None,
                message: "duplicate tenant id across shards".to_string(),
            });
        }
        if snapshots.is_empty() {
            return Err(OnlineError::InvalidConfig(
                "a fleet needs at least one tenant",
            ));
        }
        let bus = match manifest.bus {
            Some(bus_config) => Some(Arc::new(ArrivalBus::new(snapshots.len(), bus_config)?)),
            None => None,
        };
        if let Some(bus) = &bus {
            for (index, snapshot) in snapshots.iter_mut().enumerate() {
                let queued = snapshot.queued.take().unwrap_or_default();
                let stats = snapshot.queue.take().unwrap_or_default();
                bus.restore_tenant(index, queued, stats)?;
            }
        }
        // Supervision and residency state travel with the tenants: pull
        // them out before the snapshots are consumed by the scaler rebuild
        // below. Pre-v3 checkpoints carry no supervision (those tenants
        // restore healthy); pre-v4 carry no residency (all hot).
        let supervision: Vec<Option<SupervisionSnapshot>> = snapshots
            .iter_mut()
            .map(|snapshot| snapshot.supervision.take())
            .collect();
        let residency_snapshots: Vec<Option<ResidencySnapshot>> = snapshots
            .iter_mut()
            .map(|snapshot| snapshot.residency.take())
            .collect();
        // Rebuild scalers in parallel *by value*: each worker takes its
        // snapshots out of the slots instead of cloning them — a snapshot
        // carries the full ring and model, and doubling peak memory on the
        // restore path would be real money at fleet scale.
        let mut slots: Vec<Option<TenantSnapshot>> = snapshots.into_iter().map(Some).collect();
        let tenants = map_chunks_mut(&mut slots, workers, |_, chunk| {
            chunk
                .iter_mut()
                .map(|slot| {
                    let snapshot = slot.take().expect("each slot is visited exactly once");
                    Ok(TenantSlot::Resident(Box::new(Tenant {
                        id: snapshot.id,
                        scaler: OnlineScaler::restore(snapshot.scaler, *config)?,
                    })))
                })
                .collect::<Vec<Result<TenantSlot, OnlineError>>>()
        })
        .into_iter()
        .flatten()
        .collect::<Result<Vec<_>, OnlineError>>()?;
        let origin = match &tenants[0] {
            TenantSlot::Resident(tenant) => tenant.scaler.ring().origin(),
            TenantSlot::Paged(_) => unreachable!("restore materializes every tenant"),
        };
        let mut fleet = Self::assemble(*config, origin, tenants, workers, bus);
        let mut round_counter = 0;
        for (i, snapshot) in supervision.into_iter().enumerate() {
            let Some(snapshot) = snapshot else { continue };
            round_counter = round_counter.max(snapshot.round);
            fleet.supervision[i] = Supervision {
                consecutive_failures: snapshot.consecutive_failures,
                quarantine: snapshot.quarantine,
                health: if snapshot.quarantine.is_some() {
                    TenantHealth::Quarantined
                } else {
                    TenantHealth::Healthy
                },
                failures: snapshot.failures,
                panics: snapshot.panics,
                probes: snapshot.probes,
                recoveries: snapshot.recoveries,
                degraded_rounds: snapshot.degraded_rounds,
                last_good_plan: snapshot.last_good_plan,
                last_good_snapshot: snapshot.last_good_snapshot,
                served_sticky: false,
            };
        }
        // The manifest round (format v4) is authoritative; older
        // checkpoints fall back to the max supervision round.
        fleet.round_counter = manifest.round.unwrap_or(round_counter);
        // Residency state restores resident-cold: cold tenants come back
        // in memory (the restore just built them) but stay hibernated —
        // they re-page lazily on the first round if a hibernation store
        // is attached, and plan nothing until their wake trigger fires.
        if let Some(residency) = manifest.residency {
            fleet.residency = Some(residency);
            for (i, snapshot) in residency_snapshots.into_iter().enumerate() {
                let Some(snapshot) = snapshot else { continue };
                fleet.residency_state[i] = if snapshot.cold {
                    Residency::Cold {
                        wake_at: snapshot.wake_at.unwrap_or(f64::INFINITY),
                        since_round: snapshot.since_round,
                    }
                } else {
                    Residency::Hot {
                        idle_streak: snapshot.idle_streak,
                    }
                };
            }
        }
        fleet.absorb_io(store.io_stats());
        fleet.restored_unarmed = true;
        Ok((fleet, store.take_notes()))
    }

    /// Enable or disable trace-event capture on every tenant's scaler.
    /// The setting sticks: a paged tenant materialized later inherits it.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        for slot in &mut self.tenants {
            if let TenantSlot::Resident(tenant) = slot {
                tenant.scaler.set_tracing(on);
            }
        }
    }

    /// The [`TraceHeader`] describing this fleet session: everything a
    /// replay needs to rebuild it. `base_seed` must be the seed the fleet
    /// was constructed with (per-tenant seeds are derived from it and are
    /// not recoverable from the tenants).
    pub fn trace_header(&self, base_seed: u64) -> TraceHeader {
        TraceHeader {
            version: TRACE_FORMAT_VERSION,
            session: SessionKind::Fleet,
            seed: base_seed,
            tenants: self.tenants.len(),
            origin: self.origin,
            online: self.config,
            bus: self.bus.as_ref().map(|bus| bus.config()),
            faults: self.fault_plan(),
            supervisor: Some(self.supervisor),
            residency: self.residency,
            sharing: Some(self.sharing),
        }
    }

    /// Attach a [`TraceRecorder`] and start (or resume) recording this
    /// session: every subsequent `ingest`, round, refit and install is
    /// serialized to the trace.
    ///
    /// A recorder that has recorded nothing yet gets warm-start
    /// [`TraceRecord::Install`] records for every tenant that already has
    /// a model, so replay can rebuild pre-recording state; a resumed
    /// recorder (from [`TenantFleet::take_recorder`], e.g. across a kill +
    /// restore) continues its trace as-is.
    pub fn start_recording(&mut self, mut recorder: TraceRecorder) -> Result<(), OnlineError> {
        if self.recorder.is_some() {
            return Err(OnlineError::InvalidConfig(
                "a trace recording is already active on this fleet",
            ));
        }
        if recorder.records() == 0 {
            // Warm-start records need every trained model in hand; a
            // paged-out tenant's lives on disk. (A tenant that pages out
            // *during* the recording is fine — residency events capture
            // the transition and replay reproduces it.)
            if self.tenants.iter().any(|slot| {
                matches!(
                    slot,
                    TenantSlot::Paged(PagedTenant {
                        kind: PageKind::OnDisk { .. },
                        ..
                    })
                )
            }) {
                return Err(OnlineError::InvalidConfig(
                    "cannot start recording with paged-out tenants; wake the fleet first (wake_all)",
                ));
            }
            for (index, slot) in self.tenants.iter().enumerate() {
                let TenantSlot::Resident(tenant) = slot else {
                    continue;
                };
                if let Some(model) = tenant.scaler.model() {
                    recorder.record(&TraceRecord::Install {
                        round: recorder.round(),
                        tenant: index as u64,
                        at: tenant.scaler.last_refit_at().unwrap_or(0.0),
                        fingerprint: model_fingerprint(model),
                        model: model.clone(),
                    })?;
                }
            }
        }
        self.set_tracing(true);
        self.recorder = Some(recorder);
        Ok(())
    }

    /// Detach the active recorder without finalizing the trace: buffered
    /// events and direct arrivals are flushed, tracing is disabled, and
    /// the recorder is returned so a successor fleet (a restore of this
    /// one) can [`TenantFleet::start_recording`] it and continue the same
    /// trace. `None` when no recording is active.
    pub fn take_recorder(&mut self) -> Result<Option<TraceRecorder>, OnlineError> {
        let Some(mut recorder) = self.recorder.take() else {
            return Ok(None);
        };
        let pre = self.harvest_trace_events();
        recorder.flush_pending(pre)?;
        self.set_tracing(false);
        Ok(Some(recorder))
    }

    /// Finalize the active recording: flush buffered state, write the
    /// final QoS record (the fleet's aggregate serving and queue
    /// counters), and return the trace summary. `None` when no recording
    /// is active.
    pub fn finish_recording(&mut self) -> Result<Option<TraceSummary>, OnlineError> {
        let Some(recorder) = self.take_recorder()? else {
            return Ok(None);
        };
        let qos = QosRecord {
            stats: self.aggregate_stats(),
            queue: self.queue_stats(),
            hit_rate: None,
            rt_avg: None,
            relative_cost: None,
            queries: None,
        };
        Ok(Some(recorder.finish(qos)?))
    }

    /// Sum of all tenants' serving counters. Paged tenants contribute
    /// their counters as frozen at page-out — no page-in needed.
    pub fn aggregate_stats(&self) -> OnlineStats {
        let mut total = OnlineStats::default();
        for slot in &self.tenants {
            let s = match slot {
                TenantSlot::Resident(tenant) => tenant.scaler.stats(),
                TenantSlot::Paged(paged) => &paged.stats,
            };
            total.arrivals_ingested += s.arrivals_ingested;
            total.arrivals_dropped += s.arrivals_dropped;
            total.refits += s.refits;
            total.drift_refits += s.drift_refits;
            total.planning_rounds += s.planning_rounds;
            total.skipped_rounds += s.skipped_rounds;
            total.failed_rounds += s.failed_rounds;
            total.shared_planning_rounds += s.shared_planning_rounds;
            total.plan_cache_hits += s.plan_cache_hits;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustscaler_core::{RobustScalerConfig, RobustScalerVariant};

    fn fleet_config() -> OnlineConfig {
        let mut pipeline =
            RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability {
                target: 0.9,
            });
        pipeline.bucket_width = 10.0;
        pipeline.periodicity_aggregation = 2;
        pipeline.admm.max_iterations = 30;
        pipeline.monte_carlo_samples = 60;
        pipeline.planning_interval = 20.0;
        pipeline.mean_processing = 5.0;
        pipeline.forecast_horizon = 600.0;
        let mut config = OnlineConfig::new(pipeline);
        config.window_buckets = 120;
        config.min_training_buckets = 30;
        config
    }

    fn small_bus_config() -> BusConfig {
        BusConfig {
            capacity_per_tenant: 4_096,
            tenants_per_group: 2,
            ..BusConfig::default()
        }
    }

    /// Tenant `i` sees one arrival every `4 + i` seconds.
    fn ingest_uniform(fleet: &mut TenantFleet, duration: f64) {
        for index in 0..fleet.len() {
            let gap = 4.0 + index as f64;
            let n = (duration / gap) as usize;
            for k in 0..n {
                fleet.ingest(index, k as f64 * gap).unwrap();
            }
        }
    }

    /// Same traffic, enqueued on the bus instead of ingested directly.
    fn enqueue_uniform(fleet: &TenantFleet, duration: f64) {
        for index in 0..fleet.len() {
            let gap = 4.0 + index as f64;
            let n = (duration / gap) as usize;
            for k in 0..n {
                assert!(fleet.enqueue(index, k as f64 * gap).unwrap());
            }
        }
    }

    #[test]
    fn rejects_empty_fleets_and_bad_indices() {
        assert!(TenantFleet::new(&fleet_config(), 0.0, 0, 1).is_err());
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 2, 1).unwrap();
        assert!(fleet.ingest(2, 1.0).is_err());
        assert!(fleet.run_round(400.0, &[0]).is_err());
        // No bus attached: enqueue is a configuration error.
        assert!(fleet.enqueue(0, 1.0).is_err());
        assert!(fleet.queue_stats().is_none());
    }

    #[test]
    fn tenants_get_distinct_seeds_and_independent_plans() {
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 3, 7).unwrap();
        ingest_uniform(&mut fleet, 400.0);
        let rounds: Vec<_> = fleet
            .run_round_uniform(400.0, 0)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(rounds.len(), 3);
        // Different traffic levels → different expected arrivals per window.
        assert!(rounds[0].expected_arrivals_in_window > rounds[2].expected_arrivals_in_window);
        assert_eq!(fleet.aggregate_stats().refits, 3);
        assert!(fleet.tenant(0).unwrap().scaler.has_model());
    }

    #[test]
    fn one_failing_tenant_does_not_poison_the_round() {
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 3, 7).unwrap();
        // Tenants 0 and 2 get traffic; tenant 1 stays empty and cannot
        // train — its slot errors, the others still plan.
        for index in [0usize, 2] {
            for k in 0..100 {
                fleet.ingest(index, k as f64 * 4.0).unwrap();
            }
        }
        let rounds = fleet.run_round_uniform(400.0, 0).unwrap();
        assert!(rounds[0].is_ok());
        assert!(matches!(rounds[1], Err(OnlineError::NotTrained)));
        assert!(rounds[2].is_ok());
        assert!(!rounds[0].as_ref().unwrap().decisions.is_empty());
    }

    #[test]
    fn bus_fed_rounds_match_direct_ingestion() {
        let config = fleet_config();
        let mut direct = TenantFleet::new(&config, 0.0, 4, 11).unwrap();
        ingest_uniform(&mut direct, 400.0);
        let direct_rounds = direct.run_round_uniform(400.0, 0).unwrap();

        let mut bused = TenantFleet::new(&config, 0.0, 4, 11).unwrap();
        bused.attach_bus(small_bus_config()).unwrap();
        assert!(bused.attach_bus(small_bus_config()).is_err());
        enqueue_uniform(&bused, 400.0);
        // Queued, not yet ingested.
        assert_eq!(bused.aggregate_stats().arrivals_ingested, 0);
        let bused_rounds = bused.run_round_uniform(400.0, 0).unwrap();
        assert_eq!(direct_rounds, bused_rounds);
        assert_eq!(direct.aggregate_stats(), bused.aggregate_stats());
        let queue = bused.queue_stats().unwrap();
        assert_eq!(queue.drained, queue.enqueued);
        assert_eq!(queue.dropped_full, 0);
        assert!(queue.queued_peak > 0);
    }

    #[test]
    fn spawning_rounds_match_pool_rounds() {
        let config = fleet_config();
        let run = |spawning: bool| {
            let mut fleet = TenantFleet::new(&config, 0.0, 5, 3).unwrap();
            fleet.set_workers(3);
            fleet.attach_bus(small_bus_config()).unwrap();
            enqueue_uniform(&fleet, 400.0);
            if spawning {
                fleet.run_round_spawning(400.0, &[0; 5]).unwrap()
            } else {
                fleet.run_round(400.0, &[0; 5]).unwrap()
            }
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn drain_bus_flushes_queues_without_planning() {
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 3, 5).unwrap();
        assert_eq!(fleet.drain_bus().unwrap(), 0); // no bus: no-op
        fleet.attach_bus(small_bus_config()).unwrap();
        enqueue_uniform(&fleet, 200.0);
        let queued = fleet.queue_stats().unwrap().enqueued;
        assert_eq!(fleet.drain_bus().unwrap(), queued);
        let stats = fleet.aggregate_stats();
        assert_eq!(stats.arrivals_ingested, queued);
        assert_eq!(stats.planning_rounds, 0);
        assert_eq!(fleet.drain_bus().unwrap(), 0);
    }

    #[test]
    fn checkpoint_restore_round_trips_and_resumes_identically() {
        let dir =
            std::env::temp_dir().join(format!("robustscaler-fleet-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = fleet_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 5, 42).unwrap();
        ingest_uniform(&mut fleet, 400.0);
        fleet.run_round_uniform(400.0, 0).unwrap();
        let manifest = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert_eq!(manifest.tenant_count, 5);
        assert_eq!(manifest.shards.len(), 3);
        let mut restored = TenantFleet::restore(&dir, &config).unwrap();
        assert_eq!(restored.len(), fleet.len());
        assert_eq!(restored.aggregate_stats(), fleet.aggregate_stats());
        // Both fleets continue identically.
        for round in 1..4 {
            let now = 400.0 + 20.0 * round as f64;
            assert_eq!(
                fleet.run_round_uniform(now, round).unwrap(),
                restored.run_round_uniform(now, round).unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_restores_undrained_queues_mid_burst() {
        let dir = std::env::temp_dir().join(format!(
            "robustscaler-fleet-ckpt-burst-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = fleet_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 3, 9).unwrap();
        fleet.attach_bus(small_bus_config()).unwrap();
        enqueue_uniform(&fleet, 400.0);
        fleet.run_round_uniform(400.0, 0).unwrap();
        // Mid-burst: new arrivals queued but NOT drained yet.
        for index in 0..3 {
            for k in 0..15 {
                fleet.enqueue(index, 402.0 + k as f64 * 1.5).unwrap();
            }
        }
        let manifest = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert!(manifest.bus.is_some());
        let mut restored = TenantFleet::restore(&dir, &config).unwrap();
        assert_eq!(
            restored.queue_stats().unwrap(),
            fleet.queue_stats().unwrap()
        );
        // Both drain the same queued arrivals at the next round and stay
        // bit-identical through further enqueue + round cycles.
        for round in 1..4 {
            let now = 400.0 + 20.0 * round as f64;
            for index in 0..3 {
                let t = now - 5.0 + index as f64;
                fleet.enqueue(index, t).unwrap();
                restored.enqueue(index, t).unwrap();
            }
            assert_eq!(
                fleet.run_round_uniform(now, round).unwrap(),
                restored.run_round_uniform(now, round).unwrap()
            );
        }
        assert_eq!(fleet.aggregate_stats(), restored.aggregate_stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incremental_checkpoints_reuse_clean_shards() {
        let dir = std::env::temp_dir().join(format!(
            "robustscaler-fleet-ckpt-incr-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = fleet_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 6, 21).unwrap();
        fleet.attach_bus(small_bus_config()).unwrap();
        ingest_uniform(&mut fleet, 400.0);
        fleet.run_round_uniform(400.0, 0).unwrap();
        let first = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert!(first.shards.iter().all(|s| s.reused_from.is_none()));

        // Nothing changed since: every shard is reused.
        let second = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert_eq!(second.generation, 2);
        assert!(second.shards.iter().all(|s| s.reused_from == Some(1)));

        // Touch only tenant 0 (group 0) via direct ingest, and tenant 5's
        // queue (group 2) via the bus: groups 0 and 2 rewrite, group 1 is
        // reused.
        fleet.ingest(0, 401.0).unwrap();
        fleet.enqueue(5, 401.5).unwrap();
        let third = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert_eq!(third.shards[0].reused_from, None);
        assert_eq!(third.shards[1].reused_from, Some(1));
        assert_eq!(third.shards[2].reused_from, None);

        // The mixed-generation checkpoint restores completely.
        let restored = TenantFleet::restore(&dir, &config).unwrap();
        assert_eq!(restored.aggregate_stats(), fleet.aggregate_stats());
        assert_eq!(
            restored.queue_stats().unwrap(),
            fleet.queue_stats().unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_writes_to_the_checkpoint_dir_disable_shard_reuse() {
        let dir = std::env::temp_dir().join(format!(
            "robustscaler-fleet-ckpt-foreign-{}",
            std::process::id()
        ));
        let other_dir = std::env::temp_dir().join(format!(
            "robustscaler-fleet-ckpt-foreign-other-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&other_dir);
        let config = fleet_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 4, 13).unwrap();
        ingest_uniform(&mut fleet, 400.0);
        fleet.run_round_uniform(400.0, 0).unwrap();
        fleet.checkpoint_sharded(&dir, 2).unwrap();

        // A *different* fleet writes the next generation into the same
        // directory while ours believes it is clean.
        let mut foreign = TenantFleet::new(&config, 0.0, 4, 999).unwrap();
        ingest_uniform(&mut foreign, 200.0);
        foreign.checkpoint_sharded(&dir, 2).unwrap();

        // Our next checkpoint must NOT link the foreign shards: every
        // shard is rewritten fresh, and the restore returns OUR state.
        let manifest = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert!(manifest.shards.iter().all(|s| s.reused_from.is_none()));
        let restored = TenantFleet::restore(&dir, &config).unwrap();
        assert_eq!(restored.aggregate_stats(), fleet.aggregate_stats());

        // Switching to a fresh directory likewise rewrites everything,
        // even though the fleet itself is clean.
        let manifest = fleet.checkpoint_sharded(&other_dir, 2).unwrap();
        assert!(manifest.shards.iter().all(|s| s.reused_from.is_none()));
        // And back on its own directory with nothing changed, reuse works.
        let manifest = fleet.checkpoint_sharded(&other_dir, 2).unwrap();
        assert!(manifest.shards.iter().all(|s| s.reused_from.is_some()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&other_dir);
    }

    #[test]
    fn cloned_fleets_have_independent_buses_with_equal_contents() {
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 2, 3).unwrap();
        fleet.attach_bus(small_bus_config()).unwrap();
        fleet.enqueue(0, 1.0).unwrap();
        let clone = fleet.clone();
        assert_eq!(clone.queue_stats().unwrap(), fleet.queue_stats().unwrap());
        // Pushes to the clone do not show up in the original.
        clone.enqueue(0, 2.0).unwrap();
        assert_eq!(fleet.queue_stats().unwrap().enqueued, 1);
        assert_eq!(clone.queue_stats().unwrap().enqueued, 2);
    }

    /// Silence the default panic hook's stderr spew for *injected*
    /// panics (the `catch_unwind` boundaries still see the payload).
    /// Installed once; everything else forwards to the previous hook.
    fn silence_injected_panics() {
        use std::sync::Once;
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let message = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|m| (*m).to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                if !message.contains("injected") {
                    previous(info);
                }
            }));
        });
    }

    #[test]
    fn injected_tenant_panic_poisons_only_its_slot() {
        silence_injected_panics();
        let config = fleet_config();
        let mut clean = TenantFleet::new(&config, 0.0, 3, 7).unwrap();
        ingest_uniform(&mut clean, 400.0);
        let clean_rounds = clean.run_round_uniform(400.0, 0).unwrap();

        let mut faulted = TenantFleet::new(&config, 0.0, 3, 7).unwrap();
        faulted.set_faults(FaultPlan {
            seed: 1,
            plan_panic: 1.0,
            target_tenant: Some(1),
            ..FaultPlan::default()
        });
        ingest_uniform(&mut faulted, 400.0);
        let rounds = faulted.run_round_uniform(400.0, 0).unwrap();
        match &rounds[1] {
            Err(OnlineError::TenantPanicked { tenant: 1, message }) => {
                assert!(message.contains("injected"), "{message}");
            }
            other => panic!("expected a caught tenant panic, got {other:?}"),
        }
        // The neighbors' plans are bit-identical to the clean run.
        assert_eq!(rounds[0], clean_rounds[0]);
        assert_eq!(rounds[2], clean_rounds[2]);
        let stats = faulted.supervision_stats();
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.panics, 1);
        assert_eq!(faulted.tenant_health(1), Some(TenantHealth::Failing));
    }

    #[test]
    fn injected_worker_panic_aborts_the_round_but_not_the_fleet() {
        silence_injected_panics();
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 3, 7).unwrap();
        ingest_uniform(&mut fleet, 400.0);
        fleet.set_faults(FaultPlan {
            seed: 4,
            worker_panic: 1.0,
            ..FaultPlan::default()
        });
        let err = fleet.run_round_uniform(400.0, 0).unwrap_err();
        assert!(matches!(err, OnlineError::RoundPanicked { .. }), "{err:?}");
        // The aborted round still counts, so fault schedules and probe
        // deadlines stay on time.
        assert_eq!(fleet.round(), 1);
        // Clearing the fault lets the next round proceed normally.
        fleet.set_faults(FaultPlan::default());
        let rounds = fleet.run_round_uniform(420.0, 0).unwrap();
        assert!(rounds.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn quarantine_lifecycle_backs_off_and_recovers() {
        let config = fleet_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 2, 5).unwrap();
        fleet.set_supervisor(SupervisorConfig {
            quarantine_after: 2,
            probe_backoff: 2,
            max_backoff: 8,
            recovery: RecoveryAction::ForceRefit,
            snapshot_every: 0,
        });
        ingest_uniform(&mut fleet, 400.0);
        // Round 0: clean — captures tenant 0's last good plan.
        let round0 = fleet.run_round_supervised(400.0, &[0, 0]).unwrap();
        assert!(round0
            .outcomes
            .iter()
            .all(|o| o.health == TenantHealth::Healthy && !o.sticky));
        let last_good = round0.outcomes[0].plan.clone().unwrap();

        // Rounds 1-2: tenant 0 errors every round → quarantined after 2,
        // served the sticky fallback throughout.
        fleet.set_faults(FaultPlan {
            seed: 2,
            plan_error: 1.0,
            target_tenant: Some(0),
            ..FaultPlan::default()
        });
        let r1 = fleet.run_round_supervised(420.0, &[0, 0]).unwrap();
        assert_eq!(r1.outcomes[0].health, TenantHealth::Failing);
        assert!(r1.outcomes[0].sticky);
        assert_eq!(r1.outcomes[0].plan.as_ref(), Some(&last_good));
        assert_eq!(r1.degraded, 1);
        let r2 = fleet.run_round_supervised(440.0, &[0, 0]).unwrap();
        assert_eq!(r2.outcomes[0].health, TenantHealth::Quarantined);
        assert_eq!(fleet.supervision_stats().quarantined_now, 1);

        // Round 3: suspended (probe due at round 2 + backoff 2 = 4).
        let r3 = fleet.run_round_supervised(460.0, &[0, 0]).unwrap();
        assert!(matches!(
            r3.outcomes[0].error,
            Some(OnlineError::Quarantined {
                tenant: 0,
                until_round: 4
            })
        ));
        assert!(r3.outcomes[0].sticky);
        assert_eq!(r3.quarantined, 1);

        // Round 4: the probe runs, still faulted → backoff doubles to 4.
        let r4 = fleet.run_round_supervised(480.0, &[0, 0]).unwrap();
        assert_eq!(r4.outcomes[0].health, TenantHealth::Probing);
        assert_eq!(fleet.supervision_stats().probes, 1);
        assert_eq!(fleet.supervision_stats().recoveries, 0);

        // Rounds 5-7: suspended again (next probe at 4 + 4 = 8).
        for round in 5..8u64 {
            let now = 400.0 + 20.0 * round as f64;
            let r = fleet.run_round_supervised(now, &[0, 0]).unwrap();
            assert_eq!(
                r.outcomes[0].health,
                TenantHealth::Quarantined,
                "round {round}"
            );
        }

        // Faults cleared: round 8's probe succeeds and the tenant
        // recovers with a fresh (non-sticky) plan.
        fleet.set_faults(FaultPlan::default());
        let r8 = fleet.run_round_supervised(560.0, &[0, 0]).unwrap();
        assert_eq!(r8.outcomes[0].health, TenantHealth::Recovered);
        assert!(!r8.outcomes[0].sticky);
        assert!(r8.outcomes[0].plan.is_some());
        assert_eq!(r8.recovered, 1);
        let stats = fleet.supervision_stats();
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.probes, 2);
        assert_eq!(stats.quarantined_now, 0);
        assert_eq!(stats.failures, 3); // rounds 1, 2 and the failed probe
        let r9 = fleet.run_round_supervised(580.0, &[0, 0]).unwrap();
        assert_eq!(r9.outcomes[0].health, TenantHealth::Healthy);
        // Tenant 1 was never disturbed.
        assert_eq!(fleet.tenant_health(1), Some(TenantHealth::Healthy));
    }

    #[test]
    fn snapshot_recovery_restores_the_last_good_scaler() {
        let config = fleet_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 2, 19).unwrap();
        fleet.set_supervisor(SupervisorConfig {
            quarantine_after: 1,
            probe_backoff: 1,
            max_backoff: 4,
            recovery: RecoveryAction::RestoreSnapshot,
            snapshot_every: 1,
        });
        ingest_uniform(&mut fleet, 400.0);
        // Round 0 succeeds and (snapshot_every = 1) captures a snapshot.
        fleet.run_round_supervised(400.0, &[0, 0]).unwrap();
        // Round 1 fails → immediate quarantine; round 2 probes via the
        // captured snapshot and recovers.
        fleet.set_faults(FaultPlan {
            seed: 6,
            plan_error: 1.0,
            target_tenant: Some(0),
            ..FaultPlan::default()
        });
        let r1 = fleet.run_round_supervised(420.0, &[0, 0]).unwrap();
        assert_eq!(r1.outcomes[0].health, TenantHealth::Quarantined);
        fleet.set_faults(FaultPlan::default());
        let r2 = fleet.run_round_supervised(440.0, &[0, 0]).unwrap();
        assert_eq!(r2.outcomes[0].health, TenantHealth::Recovered);
        assert!(r2.outcomes[0].plan.is_some());
        assert_eq!(fleet.supervision_stats().recoveries, 1);
    }

    #[test]
    fn supervision_state_survives_checkpoint_restore() {
        let dir = std::env::temp_dir().join(format!(
            "robustscaler-fleet-sup-ckpt-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = fleet_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 3, 17).unwrap();
        fleet.set_supervisor(SupervisorConfig {
            quarantine_after: 1,
            probe_backoff: 4,
            ..SupervisorConfig::default()
        });
        ingest_uniform(&mut fleet, 400.0);
        fleet.run_round_uniform(400.0, 0).unwrap();
        fleet.set_faults(FaultPlan {
            seed: 3,
            plan_error: 1.0,
            target_tenant: Some(2),
            ..FaultPlan::default()
        });
        fleet.run_round_uniform(420.0, 0).unwrap();
        fleet.set_faults(FaultPlan::default());
        assert_eq!(fleet.tenant_health(2), Some(TenantHealth::Quarantined));

        fleet.checkpoint_sharded(&dir, 2).unwrap();
        let mut restored = TenantFleet::restore(&dir, &config).unwrap();
        // The policy is runtime wiring (like tracing), not checkpoint
        // state — re-apply it on the restored fleet.
        restored.set_supervisor(fleet.supervisor());
        assert_eq!(restored.round(), fleet.round());
        assert_eq!(restored.supervision_stats(), fleet.supervision_stats());
        assert_eq!(restored.tenant_health(2), Some(TenantHealth::Quarantined));

        // Both continue identically: the quarantined tenant probes on
        // the same round (1 + 4 = 5) and recovers in both fleets.
        let mut saw_recovery = false;
        for round in 2..8u64 {
            let now = 400.0 + 20.0 * round as f64;
            let ours = fleet.run_round_supervised(now, &[0, 0, 0]).unwrap();
            let theirs = restored.run_round_supervised(now, &[0, 0, 0]).unwrap();
            assert_eq!(ours, theirs, "round {round}");
            saw_recovery |= ours.recovered > 0;
        }
        assert!(saw_recovery, "the quarantined tenant never recovered");
        assert_eq!(fleet.supervision_stats(), restored.supervision_stats());
        assert_eq!(fleet.supervision_stats().quarantined_now, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_count_does_not_change_the_plans() {
        let run = |workers: usize| {
            let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 8, 42).unwrap();
            fleet.set_workers(workers);
            ingest_uniform(&mut fleet, 400.0);
            let mut all = Vec::new();
            for round in 0..3 {
                let now = 400.0 + 20.0 * round as f64;
                all.push(fleet.run_round_uniform(now, round).unwrap());
            }
            all
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(5));
    }

    /// Every tenant sees one arrival every `gap` seconds — identical
    /// traffic, so live forecasts quantize to one cluster.
    fn ingest_identical(fleet: &mut TenantFleet, duration: f64, gap: f64) {
        for index in 0..fleet.len() {
            let n = (duration / gap) as usize;
            for k in 0..n {
                fleet.ingest(index, k as f64 * gap).unwrap();
            }
        }
    }

    #[test]
    fn sharing_switch_validates_and_defaults_off() {
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 2, 1).unwrap();
        assert!(!fleet.sharing().enabled);
        let mut bad = SharingConfig::on();
        bad.quantization = 0.0;
        assert!(fleet.set_sharing(bad).is_err());
        bad.quantization = f64::NAN;
        assert!(fleet.set_sharing(bad).is_err());
        assert!(!fleet.sharing().enabled, "rejected config must not stick");
        fleet.set_sharing(SharingConfig::on()).unwrap();
        assert!(fleet.sharing().enabled);
    }

    #[test]
    fn shared_planning_is_deterministic_and_worker_invariant() {
        let run = |workers: usize| {
            let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 8, 42).unwrap();
            fleet.set_workers(workers);
            fleet.set_sharing(SharingConfig::on()).unwrap();
            ingest_identical(&mut fleet, 400.0, 5.0);
            let mut all = Vec::new();
            for round in 0..3 {
                let now = 400.0 + 20.0 * round as f64;
                all.push(fleet.run_round_uniform(now, round).unwrap());
            }
            (all, fleet.aggregate_stats())
        };
        let serial = run(1);
        assert!(
            serial.1.shared_planning_rounds > 0,
            "identical tenants never planned against a shared matrix: {:?}",
            serial.1
        );
        assert_eq!(serial, run(3));
        assert_eq!(serial, run(8));
    }

    /// The golden statistical-equivalence band: sharing swaps the Monte
    /// Carlo arrival universe, so plans need not be bit-identical to the
    /// private path — but the demand estimate (a pure function of the
    /// tenant's own forecast) must match exactly, every tenant must still
    /// plan, and capacity decisions must stay in a narrow band around the
    /// private plan.
    #[test]
    fn shared_plans_stay_inside_the_private_plan_band() {
        let run = |sharing: bool| {
            let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 6, 9).unwrap();
            if sharing {
                fleet.set_sharing(SharingConfig::on()).unwrap();
            }
            ingest_identical(&mut fleet, 400.0, 5.0);
            let rounds = fleet.run_round_uniform(400.0, 0).unwrap();
            (rounds, fleet.aggregate_stats())
        };
        let (private, private_stats) = run(false);
        let (shared, shared_stats) = run(true);
        assert_eq!(private_stats.shared_planning_rounds, 0);
        assert!(
            shared_stats.shared_planning_rounds > 0,
            "sharing never engaged: {shared_stats:?}"
        );
        for (p, s) in private.iter().zip(shared.iter()) {
            let p = p.as_ref().unwrap();
            let s = s.as_ref().unwrap();
            assert_eq!(p.expected_arrivals_in_window, s.expected_arrivals_in_window);
            let (pl, sl) = (p.decisions.len() as f64, s.decisions.len() as f64);
            assert!(
                (pl - sl).abs() <= 3.0_f64.max(0.5 * pl),
                "shared decision count {sl} left the band around private {pl}"
            );
        }
    }
}
