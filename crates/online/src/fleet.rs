//! Multi-tenant fleet planning: hundreds of independent [`OnlineScaler`]s
//! sharded across a persistent worker pool, fed by an event-driven
//! arrival bus.
//!
//! Each tenant owns its scaler — ring buffer, model, planner scratch and
//! RNG — so tenants never share mutable state and a round's output is a
//! pure function of (per-tenant seed, ingestion history, round sequence).
//! The fleet shards the tenant vector into contiguous chunks on a
//! [`WorkerPool`] whose threads park between rounds (no spawn/join on the
//! round's critical path); because chunking depends only on the worker
//! budget, chunk outputs are collected in chunk order, and no randomness
//! crosses tenant boundaries, the result is **identical for any worker
//! count**, which the online proptests pin.
//!
//! ## Ingestion runtime
//!
//! With an [`ArrivalBus`] attached ([`TenantFleet::attach_bus`]),
//! producers enqueue arrivals from any thread — including while a round
//! is planning — and each round worker *drains its tenants' queues first,
//! then plans*, making drain + plan one parallel pass over the shard.
//! Arrivals enqueued during round `N` are picked up by round `N + 1`'s
//! drain: the round boundary is the only synchronization point, so a
//! producer that finishes enqueueing window `N + 1` before round `N + 1`
//! starts gets bit-identical plans to fully synchronous ingestion
//! (pinned in `tests/online_props.rs`).
//!
//! ## Incremental checkpoints
//!
//! The fleet tracks per-tenant dirtiness (scaler mutated, or bus queue
//! mutated since the last successful checkpoint); a checkpoint reuses the
//! previous generation's shard files for groups whose tenants are all
//! clean instead of reserializing them (see
//! [`crate::checkpoint::CheckpointStore::write_with`]).

use crate::checkpoint::{
    CheckpointStore, Manifest, TenantSnapshot, WriteOptions, DEFAULT_TENANTS_PER_SHARD,
};
use crate::error::OnlineError;
use crate::ingest::{ArrivalBus, BusConfig, QueueCheckpoint, QueueStats};
use crate::replay::{
    model_fingerprint, QosRecord, ScalerEvent, SessionKind, TraceHeader, TraceRecord,
    TraceRecorder, TraceSummary, TRACE_FORMAT_VERSION,
};
use crate::scaler::{OnlineConfig, OnlineScaler, OnlineStats};
use robustscaler_parallel::{available_threads, map_chunks_mut, WorkerPool};
use robustscaler_scaling::PlanningRound;
use std::path::Path;
use std::sync::Arc;

/// SplitMix64 — the same stateless mixer the Monte Carlo sampler uses to
/// derive per-path streams; here it derives per-tenant RNG seeds from the
/// fleet seed so tenant plans are decorrelated but reproducible.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One tenant: a stable identifier plus its serving scaler.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// Stable tenant identifier (index at fleet construction).
    pub id: u64,
    /// The tenant's serving scaler.
    pub scaler: OnlineScaler,
}

/// Sentinel for "no checkpoint has captured this queue yet": a mutation
/// counter can never reach it, so comparisons always read "dirty".
const NEVER_CHECKPOINTED: u64 = u64::MAX;

/// Identity of the fleet's last successful checkpoint write — shard reuse
/// is offered only when the directory's current manifest is *verifiably
/// this fleet's own previous write* (same path, generation and per-shard
/// checksums). Without this, a second writer sharing the directory could
/// get its tenants' bytes silently linked into our next generation.
#[derive(Debug, Clone, PartialEq)]
struct LastCheckpoint {
    dir: std::path::PathBuf,
    generation: u64,
    checksums: Vec<String>,
    /// The shard size the previous generation was written with. Reuse is
    /// only sound when the new write groups tenants identically: with a
    /// different shard size, a group can *count-match* a previous shard
    /// that holds different tenants, and linking its bytes would corrupt
    /// the checkpoint (restore then fails on duplicate/missing tenants).
    tenants_per_shard: usize,
}

/// A fleet of independent tenants planned concurrently.
#[derive(Debug)]
pub struct TenantFleet {
    tenants: Vec<Tenant>,
    workers: usize,
    /// Persistent round workers, parked between rounds.
    pool: Arc<WorkerPool>,
    /// The ingestion runtime, when attached.
    bus: Option<Arc<ArrivalBus>>,
    /// Per-tenant: scaler mutated since the last successful checkpoint
    /// (ingested directly, planned, or handed out via `tenant_mut`).
    dirty: Vec<bool>,
    /// Per-tenant: the bus mutation counter captured by the last
    /// successful checkpoint ([`NEVER_CHECKPOINTED`] before the first).
    checkpointed_queue_mutations: Vec<u64>,
    /// What the last successful checkpoint wrote (see [`LastCheckpoint`]).
    last_checkpoint: Option<LastCheckpoint>,
    /// The session recorder, while a trace recording is active.
    recorder: Option<TraceRecorder>,
}

impl Clone for TenantFleet {
    /// Deep clone: tenants and dirtiness copy; the worker pool is shared
    /// (it holds no per-fleet state); the bus — if any — is rebuilt with
    /// identical queue contents and stats, so the clone drains the same
    /// arrivals but has its own producer endpoint. The clone starts fully
    /// dirty: its first checkpoint rewrites every shard. A recording is
    /// *not* cloned — a trace has exactly one writer — so the clone starts
    /// with tracing off.
    fn clone(&self) -> Self {
        let tenant_count = self.tenants.len();
        let bus = self.bus.as_ref().map(|bus| {
            let fresh =
                ArrivalBus::new(tenant_count, bus.config()).expect("existing bus config is valid");
            for (tenant, cp) in bus.checkpoint_queues().into_iter().enumerate() {
                fresh
                    .restore_tenant(tenant, cp.queued, cp.stats)
                    .expect("existing queue fits its own capacity");
            }
            Arc::new(fresh)
        });
        let mut tenants = self.tenants.clone();
        for tenant in &mut tenants {
            tenant.scaler.set_tracing(false);
            let _ = tenant.scaler.take_trace_events();
        }
        Self {
            tenants,
            workers: self.workers,
            pool: Arc::clone(&self.pool),
            bus,
            dirty: vec![true; tenant_count],
            checkpointed_queue_mutations: vec![NEVER_CHECKPOINTED; tenant_count],
            last_checkpoint: None,
            recorder: None,
        }
    }
}

impl TenantFleet {
    /// Build a fleet of `tenant_count` tenants sharing one configuration.
    ///
    /// Every tenant gets its own deterministic RNG seed derived from
    /// `base_seed` and its id, and its own ring anchored at `origin`. The
    /// worker budget defaults to the machine's available parallelism.
    pub fn new(
        config: &OnlineConfig,
        origin: f64,
        tenant_count: usize,
        base_seed: u64,
    ) -> Result<Self, OnlineError> {
        if tenant_count == 0 {
            return Err(OnlineError::InvalidConfig(
                "a fleet needs at least one tenant",
            ));
        }
        let tenants = (0..tenant_count as u64)
            .map(|id| {
                let seed = splitmix64(base_seed.wrapping_add(id));
                Ok(Tenant {
                    id,
                    scaler: OnlineScaler::with_seed(*config, origin, seed)?,
                })
            })
            .collect::<Result<Vec<_>, OnlineError>>()?;
        Ok(Self::assemble(tenants, available_threads(), None))
    }

    /// Wire up the non-tenant state around a tenant vector.
    fn assemble(tenants: Vec<Tenant>, workers: usize, bus: Option<Arc<ArrivalBus>>) -> Self {
        let tenant_count = tenants.len();
        Self {
            tenants,
            workers,
            pool: Arc::new(WorkerPool::new(workers)),
            bus,
            dirty: vec![true; tenant_count],
            checkpointed_queue_mutations: vec![NEVER_CHECKPOINTED; tenant_count],
            last_checkpoint: None,
            recorder: None,
        }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the fleet has no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The current worker-thread budget.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Set the worker-thread budget (≥ 1). Plans do not depend on it: it
    /// only controls how the tenant vector is chunked and how many pool
    /// threads may execute the chunks.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
        self.pool.ensure_threads(self.workers);
    }

    /// Attach the event-driven ingestion runtime: one bounded arrival
    /// queue per tenant, drained at the start of every round.
    ///
    /// Returns the producer endpoint — a cheaply clonable handle that any
    /// thread can [`ArrivalBus::push`] into, concurrently with planning.
    /// Fails if a bus is already attached (swapping one out mid-serving
    /// would silently discard queued arrivals).
    pub fn attach_bus(&mut self, config: BusConfig) -> Result<Arc<ArrivalBus>, OnlineError> {
        if self.bus.is_some() {
            return Err(OnlineError::InvalidConfig(
                "an arrival bus is already attached to this fleet",
            ));
        }
        let bus = Arc::new(ArrivalBus::new(self.tenants.len(), config)?);
        self.bus = Some(Arc::clone(&bus));
        Ok(bus)
    }

    /// The attached arrival bus, if any.
    pub fn bus(&self) -> Option<&Arc<ArrivalBus>> {
        self.bus.as_ref()
    }

    /// Enqueue one arrival for tenant `index` on the attached bus (the
    /// round-boundary drain will ingest it). Returns whether it was
    /// queued (`false` = shed by back-pressure).
    pub fn enqueue(&self, index: usize, arrival: f64) -> Result<bool, OnlineError> {
        let bus = self.bus.as_ref().ok_or(OnlineError::InvalidConfig(
            "no arrival bus attached; use attach_bus or ingest",
        ))?;
        bus.push(index, arrival)
    }

    /// Aggregate queue health across the attached bus's tenants.
    pub fn queue_stats(&self) -> Option<QueueStats> {
        self.bus.as_ref().map(|bus| bus.stats())
    }

    /// Borrow a tenant by index.
    pub fn tenant(&self, index: usize) -> Option<&Tenant> {
        self.tenants.get(index)
    }

    /// Mutably borrow a tenant by index (ingestion routed by the caller,
    /// warm-starting models, ...). Conservatively marks the tenant dirty
    /// for incremental checkpointing.
    pub fn tenant_mut(&mut self, index: usize) -> Option<&mut Tenant> {
        if let Some(flag) = self.dirty.get_mut(index) {
            *flag = true;
        }
        self.tenants.get_mut(index)
    }

    /// Ingest one arrival for tenant `index`, synchronously on the calling
    /// thread (the pre-bus path; kept for callers that already hold the
    /// arrival ordered and in hand).
    pub fn ingest(&mut self, index: usize, arrival: f64) -> Result<(), OnlineError> {
        let tenant = self
            .tenants
            .get_mut(index)
            .ok_or(OnlineError::InvalidConfig("tenant index out of range"))?;
        tenant.scaler.ingest(arrival);
        self.dirty[index] = true;
        if let Some(recorder) = &mut self.recorder {
            recorder.pend_direct(index, arrival);
        }
        Ok(())
    }

    /// Run one planning round for every tenant at time `now`, on the
    /// persistent worker pool.
    ///
    /// With a bus attached, each worker first drains its tenants' arrival
    /// queues (batched, in timestamp order, through the ring's bulk
    /// append) and then plans — drain + plan is one parallel pass, so
    /// ingestion work is off the caller's thread and amortized across the
    /// round workers.
    ///
    /// `covered[i]` is tenant `i`'s count of upcoming arrivals already
    /// covered by scheduled/pending/ready instances. The output vector is
    /// ordered by tenant index and is identical for any worker count.
    ///
    /// Tenant failures are isolated: a tenant whose round errors (still
    /// warming up, failed refit, ...) yields `Err` *in its own slot* while
    /// every other tenant's plan is returned normally — one bad tenant must
    /// never take down a round for the hundreds sharing the process. The
    /// outer `Err` is reserved for caller mistakes (wrong `covered` length).
    #[allow(clippy::type_complexity)]
    pub fn run_round(
        &mut self,
        now: f64,
        covered: &[usize],
    ) -> Result<Vec<Result<PlanningRound, OnlineError>>, OnlineError> {
        self.round_inner(now, covered, true)
    }

    /// [`TenantFleet::run_round`] executed on per-round *scoped threads*
    /// instead of the persistent pool — the legacy execution flavour, kept
    /// so the pool-vs-spawn round-latency comparison in `bench_fleet`
    /// measures both on identical code. Outputs are bit-identical to
    /// [`TenantFleet::run_round`].
    #[allow(clippy::type_complexity)]
    pub fn run_round_spawning(
        &mut self,
        now: f64,
        covered: &[usize],
    ) -> Result<Vec<Result<PlanningRound, OnlineError>>, OnlineError> {
        self.round_inner(now, covered, false)
    }

    #[allow(clippy::type_complexity)]
    fn round_inner(
        &mut self,
        now: f64,
        covered: &[usize],
        use_pool: bool,
    ) -> Result<Vec<Result<PlanningRound, OnlineError>>, OnlineError> {
        if covered.len() != self.tenants.len() {
            return Err(OnlineError::InvalidConfig(
                "covered must have one entry per tenant",
            ));
        }
        // Recording: capture everything a replay needs *before* the round
        // mutates it — the between-round scaler events (installs, explicit
        // refits) and the queued arrivals the round is about to drain
        // (stored in drain order so the replayed drain sees them
        // identically). Recording a bus-fed round assumes producers have
        // quiesced at the round boundary, per the ingestion contract.
        let (pre_events, bus_arrivals) = if self.recorder.is_some() {
            let pre: Vec<Vec<ScalerEvent>> = self
                .tenants
                .iter_mut()
                .map(|t| t.scaler.take_trace_events())
                .collect();
            let arrivals = self.bus.as_ref().map(|bus| {
                bus.checkpoint_queues()
                    .into_iter()
                    .map(|cp| {
                        let mut queued = cp.queued;
                        queued.sort_by(|a, b| a.total_cmp(b));
                        queued
                    })
                    .collect::<Vec<Vec<f64>>>()
            });
            (pre, arrivals)
        } else {
            (Vec::new(), None)
        };
        let workers = self.workers;
        let bus = self.bus.clone();
        let work = |start: usize, chunk: &mut [Tenant]| {
            // One drain buffer per worker chunk, reused across its tenants.
            let mut buf = Vec::new();
            chunk
                .iter_mut()
                .enumerate()
                .map(|(i, tenant)| {
                    if let Some(bus) = &bus {
                        match bus.drain_into(start + i, &mut buf) {
                            Ok(0) => {}
                            Ok(_) => tenant.scaler.ingest_batch(&buf),
                            Err(e) => return Err(e),
                        }
                    }
                    tenant.scaler.plan_round(now, covered[start + i])
                })
                .collect::<Vec<Result<PlanningRound, OnlineError>>>()
        };
        let per_chunk: Vec<Vec<Result<PlanningRound, OnlineError>>> = if use_pool {
            self.pool.map_chunks_mut(&mut self.tenants, workers, work)
        } else {
            map_chunks_mut(&mut self.tenants, workers, work)
        };
        // Every tenant's ring/stats advanced (plan_round touches both even
        // on the error path), so the whole fleet is dirty for checkpoints.
        self.dirty.fill(true);
        let results: Vec<Result<PlanningRound, OnlineError>> =
            per_chunk.into_iter().flatten().collect();
        // Detach the recorder while harvesting (the harvest borrows the
        // tenants mutably), then re-attach before propagating any error.
        if let Some(mut recorder) = self.recorder.take() {
            let post_events: Vec<Vec<ScalerEvent>> = self
                .tenants
                .iter_mut()
                .map(|t| t.scaler.take_trace_events())
                .collect();
            let queue = self.bus.as_ref().map(|bus| bus.stats());
            let outcome = recorder.record_round(
                now,
                covered,
                pre_events,
                bus_arrivals,
                &results,
                post_events,
                queue,
            );
            self.recorder = Some(recorder);
            outcome?;
        }
        Ok(results)
    }

    /// One planning round with the same `covered` count for every tenant.
    #[allow(clippy::type_complexity)]
    pub fn run_round_uniform(
        &mut self,
        now: f64,
        covered: usize,
    ) -> Result<Vec<Result<PlanningRound, OnlineError>>, OnlineError> {
        let covered = vec![covered; self.tenants.len()];
        self.run_round(now, &covered)
    }

    /// Drain every tenant's arrival queue into its ring *without*
    /// planning — a parallel ingestion-only pass (flushing before a
    /// checkpoint, and the `ingest_throughput` bench). Returns the total
    /// arrivals drained. A no-op without a bus.
    pub fn drain_bus(&mut self) -> Result<u64, OnlineError> {
        let Some(bus) = self.bus.clone() else {
            return Ok(0);
        };
        let workers = self.workers;
        let per_chunk: Vec<Result<Vec<u64>, OnlineError>> =
            self.pool
                .map_chunks_mut(&mut self.tenants, workers, |start, chunk| {
                    let mut buf = Vec::new();
                    chunk
                        .iter_mut()
                        .enumerate()
                        .map(|(i, tenant)| {
                            let n = bus.drain_into(start + i, &mut buf)?;
                            if n > 0 {
                                tenant.scaler.ingest_batch(&buf);
                            }
                            Ok(n as u64)
                        })
                        .collect()
                });
        let mut total = 0u64;
        for (index, n) in per_chunk
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .flatten()
            .enumerate()
        {
            if n > 0 {
                self.dirty[index] = true;
            }
            total += n;
        }
        Ok(total)
    }

    /// Checkpoint the whole fleet to `dir` with the default shard size
    /// ([`DEFAULT_TENANTS_PER_SHARD`] tenants per shard file). See
    /// [`TenantFleet::checkpoint_sharded`].
    pub fn checkpoint(&mut self, dir: impl AsRef<Path>) -> Result<Manifest, OnlineError> {
        self.checkpoint_sharded(dir, DEFAULT_TENANTS_PER_SHARD)
    }

    /// Checkpoint the whole fleet to `dir`, sharded into groups of
    /// `tenants_per_shard` consecutive tenants per file.
    ///
    /// Tenant snapshots are taken and serialized in parallel on the
    /// fleet's worker pool; the write is crash-safe (a new generation
    /// becomes current only at the final atomic manifest rename, so a crash
    /// mid-checkpoint leaves the previous checkpoint intact). The snapshot
    /// captures per-tenant seeds, RNG stream positions, serving counters,
    /// refit deadlines **and each tenant's undrained arrival queue**, so a
    /// fleet restored from the checkpoint — even one taken mid-burst, with
    /// arrivals still queued — plans bit-identically to one that never
    /// stopped.
    ///
    /// Checkpoints are **incremental**: shard groups whose tenants neither
    /// ingested nor planned since the last successful checkpoint (and
    /// whose queues did not change) are reused from the previous
    /// generation instead of reserialized; the manifest's `reused_from`
    /// fields record which. Reuse is offered only when the directory's
    /// current manifest is verifiably this fleet's own previous write
    /// (same path, generation and per-shard checksums) — a different
    /// writer sharing the directory, or a switch to a new directory,
    /// forces a full rewrite rather than linking foreign bytes.
    pub fn checkpoint_sharded(
        &mut self,
        dir: impl AsRef<Path>,
        tenants_per_shard: usize,
    ) -> Result<Manifest, OnlineError> {
        let tenants_per_shard = tenants_per_shard.max(1);
        let dir = dir.as_ref();
        // Capture queue contents first: scaler state cannot change under
        // us (`&mut self`), so the checkpoint is a consistent cut at the
        // capture instant — arrivals pushed after it belong to the next
        // generation and stay live on the bus.
        let queues: Option<Vec<QueueCheckpoint>> =
            self.bus.as_ref().map(|bus| bus.checkpoint_queues());
        // Full snapshots are taken even for clean groups: the reuse path
        // discards them, but they keep `CheckpointStore::write_with`'s
        // fallback (reserialize when the previous shard file cannot be
        // linked) self-contained. At 250 tenants this costs ~1 ms of the
        // steady-state incremental checkpoint — accepted trade-off over a
        // lazier, two-phase write API.
        let indexed: Vec<(usize, &Tenant)> = self.tenants.iter().enumerate().collect();
        let snapshots: Vec<TenantSnapshot> =
            self.pool
                .parallel_map(&indexed, self.workers, |&(index, tenant)| {
                    let mut snapshot = TenantSnapshot::new(tenant.id, tenant.scaler.snapshot());
                    if let Some(queues) = &queues {
                        let queue = &queues[index];
                        snapshot.queued = Some(queue.queued.clone());
                        snapshot.queue = Some(queue.stats);
                    }
                    snapshot
                });
        let store = CheckpointStore::new(dir);
        let clean: Vec<bool> = if self.previous_generation_is_ours(&store, dir, tenants_per_shard) {
            self.dirty
                .chunks(tenants_per_shard)
                .enumerate()
                .map(|(group, dirty)| {
                    dirty.iter().enumerate().all(|(offset, &tenant_dirty)| {
                        let i = group * tenants_per_shard + offset;
                        !tenant_dirty
                            && queues.as_ref().is_none_or(|queues| {
                                queues[i].mutations == self.checkpointed_queue_mutations[i]
                            })
                    })
                })
                .collect()
        } else {
            vec![false; self.tenants.len().div_ceil(tenants_per_shard)]
        };
        let manifest = store.write_with(
            &snapshots,
            &WriteOptions {
                tenants_per_shard,
                workers: self.workers,
                pool: Some(&self.pool),
                bus: self.bus.as_ref().map(|bus| bus.config()),
                clean_shards: Some(&clean),
            },
        )?;
        // Only a *successful* swap resets dirtiness; a failed write keeps
        // every tenant dirty so the next attempt rewrites conservatively.
        self.dirty.fill(false);
        if let Some(queues) = &queues {
            for (slot, queue) in self
                .checkpointed_queue_mutations
                .iter_mut()
                .zip(queues.iter())
            {
                *slot = queue.mutations;
            }
        }
        self.last_checkpoint = Some(LastCheckpoint {
            dir: dir.to_path_buf(),
            generation: manifest.generation,
            checksums: manifest.shards.iter().map(|s| s.checksum.clone()).collect(),
            tenants_per_shard,
        });
        Ok(manifest)
    }

    /// Whether `dir`'s current manifest is this fleet's own last write —
    /// the precondition for offering shard reuse. Any doubt (different
    /// directory, no prior write, unreadable manifest, generation or
    /// checksum mismatch from a concurrent writer) answers `false`, which
    /// only costs a full rewrite, never correctness. A shard-size change
    /// also answers `false`: reusing across different groupings could link
    /// a shard holding the wrong tenants (see [`LastCheckpoint`]).
    fn previous_generation_is_ours(
        &self,
        store: &CheckpointStore,
        dir: &Path,
        tenants_per_shard: usize,
    ) -> bool {
        let Some(last) = self
            .last_checkpoint
            .as_ref()
            .filter(|last| last.dir == dir && last.tenants_per_shard == tenants_per_shard)
        else {
            return false;
        };
        let Ok(manifest) = store.read_manifest() else {
            return false;
        };
        manifest.generation == last.generation
            && manifest.shards.len() == last.checksums.len()
            && manifest
                .shards
                .iter()
                .zip(&last.checksums)
                .all(|(shard, checksum)| &shard.checksum == checksum)
    }

    /// Restore a fleet from the checkpoint in `dir`, loading and
    /// deserializing shards in parallel.
    ///
    /// `config` is the shared serving configuration (per-tenant seeds and
    /// RNG positions come from the checkpoint, not from `config`'s seed).
    /// Shards are checksum-verified before parsing; a corrupt shard fails
    /// the restore with an error naming that shard. When the checkpoint
    /// was taken from a fleet with an arrival bus, the bus is rebuilt with
    /// every tenant's undrained queue and back-pressure accounting intact,
    /// so a restore mid-burst continues bit-identically. The restored
    /// fleet's worker budget defaults to the machine's available
    /// parallelism, and — as with a fresh fleet — its plans do not depend
    /// on it.
    pub fn restore(dir: impl AsRef<Path>, config: &OnlineConfig) -> Result<Self, OnlineError> {
        let workers = available_threads();
        let store = CheckpointStore::new(dir.as_ref());
        let (manifest, per_shard) = store.load_shards(workers)?;
        let mut snapshots = Vec::with_capacity(manifest.tenant_count);
        for result in per_shard {
            snapshots.extend(result?);
        }
        snapshots.sort_by_key(|s| s.id);
        if snapshots.windows(2).any(|w| w[0].id == w[1].id) {
            return Err(OnlineError::Checkpoint {
                shard: None,
                message: "duplicate tenant id across shards".to_string(),
            });
        }
        if snapshots.is_empty() {
            return Err(OnlineError::InvalidConfig(
                "a fleet needs at least one tenant",
            ));
        }
        let bus = match manifest.bus {
            Some(bus_config) => Some(Arc::new(ArrivalBus::new(snapshots.len(), bus_config)?)),
            None => None,
        };
        if let Some(bus) = &bus {
            for (index, snapshot) in snapshots.iter_mut().enumerate() {
                let queued = snapshot.queued.take().unwrap_or_default();
                let stats = snapshot.queue.take().unwrap_or_default();
                bus.restore_tenant(index, queued, stats)?;
            }
        }
        // Rebuild scalers in parallel *by value*: each worker takes its
        // snapshots out of the slots instead of cloning them — a snapshot
        // carries the full ring and model, and doubling peak memory on the
        // restore path would be real money at fleet scale.
        let mut slots: Vec<Option<TenantSnapshot>> = snapshots.into_iter().map(Some).collect();
        let tenants = map_chunks_mut(&mut slots, workers, |_, chunk| {
            chunk
                .iter_mut()
                .map(|slot| {
                    let snapshot = slot.take().expect("each slot is visited exactly once");
                    Ok(Tenant {
                        id: snapshot.id,
                        scaler: OnlineScaler::restore(snapshot.scaler, *config)?,
                    })
                })
                .collect::<Vec<Result<Tenant, OnlineError>>>()
        })
        .into_iter()
        .flatten()
        .collect::<Result<Vec<_>, OnlineError>>()?;
        Ok(Self::assemble(tenants, workers, bus))
    }

    /// Enable or disable trace-event capture on every tenant's scaler.
    pub fn set_tracing(&mut self, on: bool) {
        for tenant in &mut self.tenants {
            tenant.scaler.set_tracing(on);
        }
    }

    /// The [`TraceHeader`] describing this fleet session: everything a
    /// replay needs to rebuild it. `base_seed` must be the seed the fleet
    /// was constructed with (per-tenant seeds are derived from it and are
    /// not recoverable from the tenants).
    pub fn trace_header(&self, base_seed: u64) -> TraceHeader {
        let scaler = &self.tenants[0].scaler;
        TraceHeader {
            version: TRACE_FORMAT_VERSION,
            session: SessionKind::Fleet,
            seed: base_seed,
            tenants: self.tenants.len(),
            origin: scaler.ring().origin(),
            online: *scaler.config(),
            bus: self.bus.as_ref().map(|bus| bus.config()),
        }
    }

    /// Attach a [`TraceRecorder`] and start (or resume) recording this
    /// session: every subsequent `ingest`, round, refit and install is
    /// serialized to the trace.
    ///
    /// A recorder that has recorded nothing yet gets warm-start
    /// [`TraceRecord::Install`] records for every tenant that already has
    /// a model, so replay can rebuild pre-recording state; a resumed
    /// recorder (from [`TenantFleet::take_recorder`], e.g. across a kill +
    /// restore) continues its trace as-is.
    pub fn start_recording(&mut self, mut recorder: TraceRecorder) -> Result<(), OnlineError> {
        if self.recorder.is_some() {
            return Err(OnlineError::InvalidConfig(
                "a trace recording is already active on this fleet",
            ));
        }
        if recorder.records() == 0 {
            for (index, tenant) in self.tenants.iter().enumerate() {
                if let Some(model) = tenant.scaler.model() {
                    recorder.record(&TraceRecord::Install {
                        round: recorder.round(),
                        tenant: index as u64,
                        at: tenant.scaler.last_refit_at().unwrap_or(0.0),
                        fingerprint: model_fingerprint(model),
                        model: model.clone(),
                    })?;
                }
            }
        }
        self.set_tracing(true);
        self.recorder = Some(recorder);
        Ok(())
    }

    /// Detach the active recorder without finalizing the trace: buffered
    /// events and direct arrivals are flushed, tracing is disabled, and
    /// the recorder is returned so a successor fleet (a restore of this
    /// one) can [`TenantFleet::start_recording`] it and continue the same
    /// trace. `None` when no recording is active.
    pub fn take_recorder(&mut self) -> Result<Option<TraceRecorder>, OnlineError> {
        let Some(mut recorder) = self.recorder.take() else {
            return Ok(None);
        };
        let pre: Vec<Vec<ScalerEvent>> = self
            .tenants
            .iter_mut()
            .map(|t| t.scaler.take_trace_events())
            .collect();
        recorder.flush_pending(pre)?;
        self.set_tracing(false);
        Ok(Some(recorder))
    }

    /// Finalize the active recording: flush buffered state, write the
    /// final QoS record (the fleet's aggregate serving and queue
    /// counters), and return the trace summary. `None` when no recording
    /// is active.
    pub fn finish_recording(&mut self) -> Result<Option<TraceSummary>, OnlineError> {
        let Some(recorder) = self.take_recorder()? else {
            return Ok(None);
        };
        let qos = QosRecord {
            stats: self.aggregate_stats(),
            queue: self.queue_stats(),
            hit_rate: None,
            rt_avg: None,
            relative_cost: None,
            queries: None,
        };
        Ok(Some(recorder.finish(qos)?))
    }

    /// Sum of all tenants' serving counters.
    pub fn aggregate_stats(&self) -> OnlineStats {
        let mut total = OnlineStats::default();
        for tenant in &self.tenants {
            let s = tenant.scaler.stats();
            total.arrivals_ingested += s.arrivals_ingested;
            total.arrivals_dropped += s.arrivals_dropped;
            total.refits += s.refits;
            total.drift_refits += s.drift_refits;
            total.planning_rounds += s.planning_rounds;
            total.skipped_rounds += s.skipped_rounds;
            total.failed_rounds += s.failed_rounds;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustscaler_core::{RobustScalerConfig, RobustScalerVariant};

    fn fleet_config() -> OnlineConfig {
        let mut pipeline =
            RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability {
                target: 0.9,
            });
        pipeline.bucket_width = 10.0;
        pipeline.periodicity_aggregation = 2;
        pipeline.admm.max_iterations = 30;
        pipeline.monte_carlo_samples = 60;
        pipeline.planning_interval = 20.0;
        pipeline.mean_processing = 5.0;
        pipeline.forecast_horizon = 600.0;
        let mut config = OnlineConfig::new(pipeline);
        config.window_buckets = 120;
        config.min_training_buckets = 30;
        config
    }

    fn small_bus_config() -> BusConfig {
        BusConfig {
            capacity_per_tenant: 4_096,
            tenants_per_group: 2,
        }
    }

    /// Tenant `i` sees one arrival every `4 + i` seconds.
    fn ingest_uniform(fleet: &mut TenantFleet, duration: f64) {
        for index in 0..fleet.len() {
            let gap = 4.0 + index as f64;
            let n = (duration / gap) as usize;
            for k in 0..n {
                fleet.ingest(index, k as f64 * gap).unwrap();
            }
        }
    }

    /// Same traffic, enqueued on the bus instead of ingested directly.
    fn enqueue_uniform(fleet: &TenantFleet, duration: f64) {
        for index in 0..fleet.len() {
            let gap = 4.0 + index as f64;
            let n = (duration / gap) as usize;
            for k in 0..n {
                assert!(fleet.enqueue(index, k as f64 * gap).unwrap());
            }
        }
    }

    #[test]
    fn rejects_empty_fleets_and_bad_indices() {
        assert!(TenantFleet::new(&fleet_config(), 0.0, 0, 1).is_err());
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 2, 1).unwrap();
        assert!(fleet.ingest(2, 1.0).is_err());
        assert!(fleet.run_round(400.0, &[0]).is_err());
        // No bus attached: enqueue is a configuration error.
        assert!(fleet.enqueue(0, 1.0).is_err());
        assert!(fleet.queue_stats().is_none());
    }

    #[test]
    fn tenants_get_distinct_seeds_and_independent_plans() {
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 3, 7).unwrap();
        ingest_uniform(&mut fleet, 400.0);
        let rounds: Vec<_> = fleet
            .run_round_uniform(400.0, 0)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(rounds.len(), 3);
        // Different traffic levels → different expected arrivals per window.
        assert!(rounds[0].expected_arrivals_in_window > rounds[2].expected_arrivals_in_window);
        assert_eq!(fleet.aggregate_stats().refits, 3);
        assert!(fleet.tenant(0).unwrap().scaler.has_model());
    }

    #[test]
    fn one_failing_tenant_does_not_poison_the_round() {
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 3, 7).unwrap();
        // Tenants 0 and 2 get traffic; tenant 1 stays empty and cannot
        // train — its slot errors, the others still plan.
        for index in [0usize, 2] {
            for k in 0..100 {
                fleet.ingest(index, k as f64 * 4.0).unwrap();
            }
        }
        let rounds = fleet.run_round_uniform(400.0, 0).unwrap();
        assert!(rounds[0].is_ok());
        assert!(matches!(rounds[1], Err(OnlineError::NotTrained)));
        assert!(rounds[2].is_ok());
        assert!(!rounds[0].as_ref().unwrap().decisions.is_empty());
    }

    #[test]
    fn bus_fed_rounds_match_direct_ingestion() {
        let config = fleet_config();
        let mut direct = TenantFleet::new(&config, 0.0, 4, 11).unwrap();
        ingest_uniform(&mut direct, 400.0);
        let direct_rounds = direct.run_round_uniform(400.0, 0).unwrap();

        let mut bused = TenantFleet::new(&config, 0.0, 4, 11).unwrap();
        bused.attach_bus(small_bus_config()).unwrap();
        assert!(bused.attach_bus(small_bus_config()).is_err());
        enqueue_uniform(&bused, 400.0);
        // Queued, not yet ingested.
        assert_eq!(bused.aggregate_stats().arrivals_ingested, 0);
        let bused_rounds = bused.run_round_uniform(400.0, 0).unwrap();
        assert_eq!(direct_rounds, bused_rounds);
        assert_eq!(direct.aggregate_stats(), bused.aggregate_stats());
        let queue = bused.queue_stats().unwrap();
        assert_eq!(queue.drained, queue.enqueued);
        assert_eq!(queue.dropped_full, 0);
        assert!(queue.queued_peak > 0);
    }

    #[test]
    fn spawning_rounds_match_pool_rounds() {
        let config = fleet_config();
        let run = |spawning: bool| {
            let mut fleet = TenantFleet::new(&config, 0.0, 5, 3).unwrap();
            fleet.set_workers(3);
            fleet.attach_bus(small_bus_config()).unwrap();
            enqueue_uniform(&fleet, 400.0);
            if spawning {
                fleet.run_round_spawning(400.0, &[0; 5]).unwrap()
            } else {
                fleet.run_round(400.0, &[0; 5]).unwrap()
            }
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn drain_bus_flushes_queues_without_planning() {
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 3, 5).unwrap();
        assert_eq!(fleet.drain_bus().unwrap(), 0); // no bus: no-op
        fleet.attach_bus(small_bus_config()).unwrap();
        enqueue_uniform(&fleet, 200.0);
        let queued = fleet.queue_stats().unwrap().enqueued;
        assert_eq!(fleet.drain_bus().unwrap(), queued);
        let stats = fleet.aggregate_stats();
        assert_eq!(stats.arrivals_ingested, queued);
        assert_eq!(stats.planning_rounds, 0);
        assert_eq!(fleet.drain_bus().unwrap(), 0);
    }

    #[test]
    fn checkpoint_restore_round_trips_and_resumes_identically() {
        let dir =
            std::env::temp_dir().join(format!("robustscaler-fleet-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = fleet_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 5, 42).unwrap();
        ingest_uniform(&mut fleet, 400.0);
        fleet.run_round_uniform(400.0, 0).unwrap();
        let manifest = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert_eq!(manifest.tenant_count, 5);
        assert_eq!(manifest.shards.len(), 3);
        let mut restored = TenantFleet::restore(&dir, &config).unwrap();
        assert_eq!(restored.len(), fleet.len());
        assert_eq!(restored.aggregate_stats(), fleet.aggregate_stats());
        // Both fleets continue identically.
        for round in 1..4 {
            let now = 400.0 + 20.0 * round as f64;
            assert_eq!(
                fleet.run_round_uniform(now, round).unwrap(),
                restored.run_round_uniform(now, round).unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_restores_undrained_queues_mid_burst() {
        let dir = std::env::temp_dir().join(format!(
            "robustscaler-fleet-ckpt-burst-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = fleet_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 3, 9).unwrap();
        fleet.attach_bus(small_bus_config()).unwrap();
        enqueue_uniform(&fleet, 400.0);
        fleet.run_round_uniform(400.0, 0).unwrap();
        // Mid-burst: new arrivals queued but NOT drained yet.
        for index in 0..3 {
            for k in 0..15 {
                fleet.enqueue(index, 402.0 + k as f64 * 1.5).unwrap();
            }
        }
        let manifest = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert!(manifest.bus.is_some());
        let mut restored = TenantFleet::restore(&dir, &config).unwrap();
        assert_eq!(
            restored.queue_stats().unwrap(),
            fleet.queue_stats().unwrap()
        );
        // Both drain the same queued arrivals at the next round and stay
        // bit-identical through further enqueue + round cycles.
        for round in 1..4 {
            let now = 400.0 + 20.0 * round as f64;
            for index in 0..3 {
                let t = now - 5.0 + index as f64;
                fleet.enqueue(index, t).unwrap();
                restored.enqueue(index, t).unwrap();
            }
            assert_eq!(
                fleet.run_round_uniform(now, round).unwrap(),
                restored.run_round_uniform(now, round).unwrap()
            );
        }
        assert_eq!(fleet.aggregate_stats(), restored.aggregate_stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incremental_checkpoints_reuse_clean_shards() {
        let dir = std::env::temp_dir().join(format!(
            "robustscaler-fleet-ckpt-incr-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = fleet_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 6, 21).unwrap();
        fleet.attach_bus(small_bus_config()).unwrap();
        ingest_uniform(&mut fleet, 400.0);
        fleet.run_round_uniform(400.0, 0).unwrap();
        let first = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert!(first.shards.iter().all(|s| s.reused_from.is_none()));

        // Nothing changed since: every shard is reused.
        let second = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert_eq!(second.generation, 2);
        assert!(second.shards.iter().all(|s| s.reused_from == Some(1)));

        // Touch only tenant 0 (group 0) via direct ingest, and tenant 5's
        // queue (group 2) via the bus: groups 0 and 2 rewrite, group 1 is
        // reused.
        fleet.ingest(0, 401.0).unwrap();
        fleet.enqueue(5, 401.5).unwrap();
        let third = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert_eq!(third.shards[0].reused_from, None);
        assert_eq!(third.shards[1].reused_from, Some(1));
        assert_eq!(third.shards[2].reused_from, None);

        // The mixed-generation checkpoint restores completely.
        let restored = TenantFleet::restore(&dir, &config).unwrap();
        assert_eq!(restored.aggregate_stats(), fleet.aggregate_stats());
        assert_eq!(
            restored.queue_stats().unwrap(),
            fleet.queue_stats().unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_writes_to_the_checkpoint_dir_disable_shard_reuse() {
        let dir = std::env::temp_dir().join(format!(
            "robustscaler-fleet-ckpt-foreign-{}",
            std::process::id()
        ));
        let other_dir = std::env::temp_dir().join(format!(
            "robustscaler-fleet-ckpt-foreign-other-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&other_dir);
        let config = fleet_config();
        let mut fleet = TenantFleet::new(&config, 0.0, 4, 13).unwrap();
        ingest_uniform(&mut fleet, 400.0);
        fleet.run_round_uniform(400.0, 0).unwrap();
        fleet.checkpoint_sharded(&dir, 2).unwrap();

        // A *different* fleet writes the next generation into the same
        // directory while ours believes it is clean.
        let mut foreign = TenantFleet::new(&config, 0.0, 4, 999).unwrap();
        ingest_uniform(&mut foreign, 200.0);
        foreign.checkpoint_sharded(&dir, 2).unwrap();

        // Our next checkpoint must NOT link the foreign shards: every
        // shard is rewritten fresh, and the restore returns OUR state.
        let manifest = fleet.checkpoint_sharded(&dir, 2).unwrap();
        assert!(manifest.shards.iter().all(|s| s.reused_from.is_none()));
        let restored = TenantFleet::restore(&dir, &config).unwrap();
        assert_eq!(restored.aggregate_stats(), fleet.aggregate_stats());

        // Switching to a fresh directory likewise rewrites everything,
        // even though the fleet itself is clean.
        let manifest = fleet.checkpoint_sharded(&other_dir, 2).unwrap();
        assert!(manifest.shards.iter().all(|s| s.reused_from.is_none()));
        // And back on its own directory with nothing changed, reuse works.
        let manifest = fleet.checkpoint_sharded(&other_dir, 2).unwrap();
        assert!(manifest.shards.iter().all(|s| s.reused_from.is_some()));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&other_dir);
    }

    #[test]
    fn cloned_fleets_have_independent_buses_with_equal_contents() {
        let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 2, 3).unwrap();
        fleet.attach_bus(small_bus_config()).unwrap();
        fleet.enqueue(0, 1.0).unwrap();
        let clone = fleet.clone();
        assert_eq!(clone.queue_stats().unwrap(), fleet.queue_stats().unwrap());
        // Pushes to the clone do not show up in the original.
        clone.enqueue(0, 2.0).unwrap();
        assert_eq!(fleet.queue_stats().unwrap().enqueued, 1);
        assert_eq!(clone.queue_stats().unwrap().enqueued, 2);
    }

    #[test]
    fn worker_count_does_not_change_the_plans() {
        let run = |workers: usize| {
            let mut fleet = TenantFleet::new(&fleet_config(), 0.0, 8, 42).unwrap();
            fleet.set_workers(workers);
            ingest_uniform(&mut fleet, 400.0);
            let mut all = Vec::new();
            for round in 0..3 {
                let now = 400.0 + 20.0 * round as f64;
                all.push(fleet.run_round_uniform(now, round).unwrap());
            }
            all
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(5));
    }
}
