//! Symmetric banded matrices and a banded Cholesky factorization.
//!
//! The ADMM system matrix `A_k` of the NHPP trainer is symmetric positive
//! definite with half-bandwidth `max(2, L)` where `L` is the detected period
//! length. Storing only the lower band and factorizing within the band gives
//! the `O(T·L²)` per-iteration cost the paper cites (Section V, referring to
//! Rue & Held 2005, §2.4).

use crate::error::LinalgError;

/// Symmetric banded matrix stored by diagonals (lower band only).
///
/// `bands[d][i]` holds entry `(i + d, i)` — i.e. `bands[0]` is the main
/// diagonal of length `n`, `bands[d]` is the `d`-th sub-diagonal of length
/// `n − d`.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricBandedMatrix {
    n: usize,
    half_bandwidth: usize,
    bands: Vec<Vec<f64>>,
}

impl SymmetricBandedMatrix {
    /// Create a zero matrix of size `n` with the given half-bandwidth
    /// (number of sub-diagonals stored).
    pub fn zeros(n: usize, half_bandwidth: usize) -> Self {
        let hb = half_bandwidth.min(n.saturating_sub(1));
        let bands = (0..=hb).map(|d| vec![0.0; n - d]).collect();
        Self {
            n,
            half_bandwidth: hb,
            bands,
        }
    }

    /// Dimension of the matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Half-bandwidth (number of stored sub-diagonals).
    pub fn half_bandwidth(&self) -> usize {
        self.half_bandwidth
    }

    /// Get the entry `(i, j)`; returns 0 outside the band.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        let d = hi - lo;
        if d > self.half_bandwidth {
            0.0
        } else {
            self.bands[d][lo]
        }
    }

    /// Add `value` to the entry `(i, j)` (and by symmetry `(j, i)`).
    ///
    /// Returns an error if the entry lies outside the stored band.
    pub fn add_at(&mut self, i: usize, j: usize, value: f64) -> Result<(), LinalgError> {
        let (hi, lo) = if i >= j { (i, j) } else { (j, i) };
        let d = hi - lo;
        if hi >= self.n {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n,
                actual: hi + 1,
                context: "SymmetricBandedMatrix::add_at",
            });
        }
        if d > self.half_bandwidth {
            return Err(LinalgError::InvalidArgument(
                "entry outside the stored band",
            ));
        }
        self.bands[d][lo] += value;
        Ok(())
    }

    /// Add `values[i]` to the diagonal entries.
    pub fn add_diagonal(&mut self, values: &[f64]) -> Result<(), LinalgError> {
        if values.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n,
                actual: values.len(),
                context: "SymmetricBandedMatrix::add_diagonal",
            });
        }
        for (d, v) in self.bands[0].iter_mut().zip(values.iter()) {
            *d += v;
        }
        Ok(())
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n,
                actual: x.len(),
                context: "SymmetricBandedMatrix::matvec",
            });
        }
        let mut y = vec![0.0; self.n];
        // Main diagonal.
        for i in 0..self.n {
            y[i] += self.bands[0][i] * x[i];
        }
        // Off-diagonals contribute symmetrically.
        for d in 1..=self.half_bandwidth {
            let band = &self.bands[d];
            for (lo, &v) in band.iter().enumerate() {
                if v != 0.0 {
                    let hi = lo + d;
                    y[hi] += v * x[lo];
                    y[lo] += v * x[hi];
                }
            }
        }
        Ok(y)
    }

    /// Banded Cholesky factorization `A = L Lᵀ`; the factor reuses the same
    /// banded layout. Complexity `O(n·w²)` for half-bandwidth `w`.
    pub fn cholesky(&self) -> Result<BandedCholesky, LinalgError> {
        let n = self.n;
        let w = self.half_bandwidth;
        let mut l = self.bands.clone();
        for j in 0..n {
            // Diagonal update.
            let mut diag = l[0][j];
            let kmin = j.saturating_sub(w);
            for k in kmin..j {
                let d = j - k;
                let v = l[d][k];
                diag -= v * v;
            }
            if diag <= 0.0 {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let diag = diag.sqrt();
            l[0][j] = diag;
            // Column below the diagonal.
            let imax = (j + w).min(n - 1);
            for i in j + 1..=imax {
                let mut v = if i - j <= w { l[i - j][j] } else { 0.0 };
                let kmin = i.saturating_sub(w).max(j.saturating_sub(w));
                for k in kmin..j {
                    if i - k <= w && j - k <= w {
                        v -= l[i - k][k] * l[j - k][k];
                    }
                }
                l[i - j][j] = v / diag;
            }
        }
        Ok(BandedCholesky {
            n,
            half_bandwidth: w,
            bands: l,
        })
    }

    /// Solve `A x = b` through the banded Cholesky factorization.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.cholesky()?.solve(b)
    }
}

/// The lower Cholesky factor of a [`SymmetricBandedMatrix`], stored banded.
#[derive(Debug, Clone)]
pub struct BandedCholesky {
    n: usize,
    half_bandwidth: usize,
    bands: Vec<Vec<f64>>,
}

impl BandedCholesky {
    /// Solve `L Lᵀ x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                expected: self.n,
                actual: b.len(),
                context: "BandedCholesky::solve",
            });
        }
        let n = self.n;
        let w = self.half_bandwidth;
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut v = b[i];
            let kmin = i.saturating_sub(w);
            for k in kmin..i {
                v -= self.bands[i - k][k] * y[k];
            }
            y[i] = v / self.bands[0][i];
        }
        // Backward substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut v = y[i];
            let kmax = (i + w).min(n - 1);
            for k in i + 1..=kmax {
                v -= self.bands[k - i][i] * x[k];
            }
            x[i] = v / self.bands[0][i];
        }
        Ok(x)
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Build a random SPD banded matrix (diagonally dominant) plus its dense copy.
    fn random_spd_banded(
        n: usize,
        w: usize,
        rng: &mut StdRng,
    ) -> (SymmetricBandedMatrix, DenseMatrix) {
        let mut banded = SymmetricBandedMatrix::zeros(n, w);
        let mut dense = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for d in 1..=w.min(i) {
                let v = rng.gen_range(-1.0..1.0);
                banded.add_at(i, i - d, v).unwrap();
                dense[(i, i - d)] += v;
                dense[(i - d, i)] += v;
            }
        }
        for i in 0..n {
            // Strong diagonal ensures positive definiteness.
            let v = 2.0 * w as f64 + 1.0 + rng.gen_range(0.0..1.0);
            banded.add_at(i, i, v).unwrap();
            dense[(i, i)] += v;
        }
        (banded, dense)
    }

    #[test]
    fn get_and_add_respect_band() {
        let mut m = SymmetricBandedMatrix::zeros(5, 2);
        assert_eq!(m.dim(), 5);
        assert_eq!(m.half_bandwidth(), 2);
        m.add_at(2, 0, 3.0).unwrap();
        assert_eq!(m.get(2, 0), 3.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(0, 4), 0.0);
        assert!(m.add_at(0, 4, 1.0).is_err());
        assert!(m.add_at(5, 0, 1.0).is_err());
        m.add_diagonal(&[1.0; 5]).unwrap();
        assert_eq!(m.get(3, 3), 1.0);
        assert!(m.add_diagonal(&[1.0; 4]).is_err());
    }

    #[test]
    fn bandwidth_is_clamped_to_dimension() {
        let m = SymmetricBandedMatrix::zeros(3, 10);
        assert_eq!(m.half_bandwidth(), 2);
    }

    #[test]
    fn matvec_matches_dense() {
        let mut rng = StdRng::seed_from_u64(5);
        let (banded, dense) = random_spd_banded(20, 3, &mut rng);
        let x: Vec<f64> = (0..20).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let yb = banded.matvec(&x).unwrap();
        let yd = dense.matvec(&x).unwrap();
        for (a, b) in yb.iter().zip(yd.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
        assert!(banded.matvec(&[1.0]).is_err());
    }

    #[test]
    fn cholesky_solve_matches_dense_solve() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(n, w) in &[(10usize, 1usize), (30, 3), (50, 7), (64, 15)] {
            let (banded, dense) = random_spd_banded(n, w, &mut rng);
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let b = dense.matvec(&x_true).unwrap();
            let x_banded = banded.solve(&b).unwrap();
            let x_dense = dense.solve_spd(&b).unwrap();
            for i in 0..n {
                assert!(
                    (x_banded[i] - x_true[i]).abs() < 1e-8,
                    "n={n} w={w} i={i}: {} vs {}",
                    x_banded[i],
                    x_true[i]
                );
                assert!((x_banded[i] - x_dense[i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn cholesky_detects_indefinite_matrix() {
        let mut m = SymmetricBandedMatrix::zeros(3, 1);
        m.add_diagonal(&[1.0, -5.0, 1.0]).unwrap();
        assert!(matches!(
            m.cholesky(),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        ));
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let mut m = SymmetricBandedMatrix::zeros(3, 1);
        m.add_diagonal(&[2.0, 2.0, 2.0]).unwrap();
        assert!(m.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn tridiagonal_system_solution_is_exact() {
        // Classic -1, 2, -1 Laplacian with Dirichlet boundaries.
        let n = 12;
        let mut m = SymmetricBandedMatrix::zeros(n, 1);
        m.add_diagonal(&vec![2.0; n]).unwrap();
        for i in 1..n {
            m.add_at(i, i - 1, -1.0).unwrap();
        }
        // With b = e_k, the solution is known in closed form; verify A x = b.
        let mut b = vec![0.0; n];
        b[4] = 1.0;
        let x = m.solve(&b).unwrap();
        let back = m.matvec(&x).unwrap();
        for i in 0..n {
            assert!((back[i] - b[i]).abs() < 1e-10);
        }
    }
}
