//! Jacobi-preconditioned conjugate gradient for matrix-free SPD systems.
//!
//! When the detected period length `L` is large (e.g. a weekly period at
//! one-minute resolution), the banded Cholesky's `O(T·L²)` cost becomes the
//! ADMM bottleneck. The system matrix
//! `A_k = Δt·diag(e^{r_k}) + ρ D₂ᵀD₂ + ρ D_LᵀD_L` has only `O(T)` non-zero
//! entries, so a matrix-free CG with the diagonal (Jacobi) preconditioner
//! solves it in a handful of `O(T)` products.

use crate::error::LinalgError;
use crate::vector::{axpy, dot, norm2, xpby};

/// A symmetric positive definite linear operator given by its action on a
/// vector.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;
    /// Compute `y = A x`. `y` has been zeroed by the caller.
    fn apply(&self, x: &[f64], y: &mut [f64]);
    /// The diagonal of the operator, used for Jacobi preconditioning.
    /// Implementations may return `None` to disable preconditioning.
    fn diagonal(&self) -> Option<Vec<f64>> {
        None
    }
}

impl LinearOperator for crate::banded::SymmetricBandedMatrix {
    fn dim(&self) -> usize {
        self.dim()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let result = self.matvec(x).expect("dimension checked by caller");
        y.copy_from_slice(&result);
    }
    fn diagonal(&self) -> Option<Vec<f64>> {
        Some((0..self.dim()).map(|i| self.get(i, i)).collect())
    }
}

/// Options controlling the conjugate gradient iteration.
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Relative residual tolerance `‖r‖ / ‖b‖`.
    pub tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iterations: 1000,
        }
    }
}

/// Convergence report returned together with the solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOutcome {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual.
    pub relative_residual: f64,
}

/// Solve `A x = b` with preconditioned conjugate gradient, warm-started from
/// `x0` (pass zeros for a cold start). Returns the solution and a
/// convergence report, or an error if the tolerance was not reached.
pub fn conjugate_gradient<A: LinearOperator>(
    operator: &A,
    b: &[f64],
    x0: &[f64],
    options: CgOptions,
) -> Result<(Vec<f64>, CgOutcome), LinalgError> {
    let n = operator.dim();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            actual: b.len(),
            context: "conjugate_gradient rhs",
        });
    }
    if x0.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            actual: x0.len(),
            context: "conjugate_gradient initial guess",
        });
    }

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        return Ok((
            vec![0.0; n],
            CgOutcome {
                iterations: 0,
                relative_residual: 0.0,
            },
        ));
    }

    let precond: Option<Vec<f64>> = operator.diagonal().map(|diag| {
        diag.iter()
            .map(|&d| {
                if d.abs() > f64::MIN_POSITIVE {
                    1.0 / d
                } else {
                    1.0
                }
            })
            .collect()
    });
    let apply_precond = |r: &[f64]| -> Vec<f64> {
        match &precond {
            Some(inv_diag) => r.iter().zip(inv_diag.iter()).map(|(a, m)| a * m).collect(),
            None => r.to_vec(),
        }
    };

    let mut x = x0.to_vec();
    let mut ax = vec![0.0; n];
    operator.apply(&x, &mut ax);
    let mut r: Vec<f64> = b.iter().zip(ax.iter()).map(|(bi, ai)| bi - ai).collect();
    let mut z = apply_precond(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);

    let mut relative_residual = norm2(&r) / b_norm;
    if relative_residual <= options.tolerance {
        return Ok((
            x,
            CgOutcome {
                iterations: 0,
                relative_residual,
            },
        ));
    }

    let mut ap = vec![0.0; n];
    for iter in 1..=options.max_iterations {
        ap.iter_mut().for_each(|v| *v = 0.0);
        operator.apply(&p, &mut ap);
        let p_ap = dot(&p, &ap);
        if p_ap <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: iter });
        }
        let alpha = rz / p_ap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        relative_residual = norm2(&r) / b_norm;
        if relative_residual <= options.tolerance {
            return Ok((
                x,
                CgOutcome {
                    iterations: iter,
                    relative_residual,
                },
            ));
        }
        z = apply_precond(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        // p ← z + β p.
        xpby(&z, beta, &mut p);
    }

    Err(LinalgError::NonConvergence {
        iterations: options.max_iterations,
        residual: relative_residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::SymmetricBandedMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_spd(n: usize, w: usize, seed: u64) -> SymmetricBandedMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = SymmetricBandedMatrix::zeros(n, w);
        for i in 0..n {
            for d in 1..=w.min(i) {
                m.add_at(i, i - d, rng.gen_range(-1.0..1.0)).unwrap();
            }
            m.add_at(i, i, 2.0 * w as f64 + 1.5).unwrap();
        }
        m
    }

    #[test]
    fn solves_banded_spd_system_to_high_accuracy() {
        let n = 200;
        let m = random_spd(n, 4, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b = m.matvec(&x_true).unwrap();
        let (x, outcome) = conjugate_gradient(&m, &b, &vec![0.0; n], CgOptions::default()).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-7, "i = {i}");
        }
        assert!(outcome.relative_residual <= 1e-10);
        assert!(outcome.iterations <= n);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 300;
        let m = random_spd(n, 3, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b = m.matvec(&x_true).unwrap();
        let cold = conjugate_gradient(&m, &b, &vec![0.0; n], CgOptions::default()).unwrap();
        // Warm start from a slightly perturbed solution.
        let near: Vec<f64> = x_true.iter().map(|v| v + 1e-6).collect();
        let warm = conjugate_gradient(&m, &b, &near, CgOptions::default()).unwrap();
        assert!(warm.1.iterations < cold.1.iterations);
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let m = random_spd(10, 2, 31);
        let (x, outcome) =
            conjugate_gradient(&m, &[0.0; 10], &[1.0; 10], CgOptions::default()).unwrap();
        assert!(x.iter().all(|&v| v == 0.0));
        assert_eq!(outcome.iterations, 0);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let m = random_spd(10, 2, 41);
        assert!(conjugate_gradient(&m, &[1.0; 9], &[0.0; 10], CgOptions::default()).is_err());
        assert!(conjugate_gradient(&m, &[1.0; 10], &[0.0; 9], CgOptions::default()).is_err());
    }

    #[test]
    fn reports_non_convergence_when_iteration_budget_is_tiny() {
        let n = 400;
        let m = random_spd(n, 6, 51);
        let mut rng = StdRng::seed_from_u64(52);
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let result = conjugate_gradient(
            &m,
            &b,
            &vec![0.0; n],
            CgOptions {
                tolerance: 1e-14,
                max_iterations: 2,
            },
        );
        assert!(matches!(result, Err(LinalgError::NonConvergence { .. })));
    }

    #[test]
    fn detects_indefinite_operator() {
        struct Negative;
        impl LinearOperator for Negative {
            fn dim(&self) -> usize {
                3
            }
            fn apply(&self, x: &[f64], y: &mut [f64]) {
                for (yi, xi) in y.iter_mut().zip(x.iter()) {
                    *yi = -xi;
                }
            }
        }
        let result =
            conjugate_gradient(&Negative, &[1.0, 2.0, 3.0], &[0.0; 3], CgOptions::default());
        assert!(matches!(
            result,
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }
}
