//! Error type for the linear algebra substrate.

use std::fmt;

/// Errors produced by factorizations and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Dimensions of operands do not agree.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
        /// Which operation raised the error.
        context: &'static str,
    },
    /// A matrix expected to be positive definite was not.
    NotPositiveDefinite {
        /// The pivot index where the factorization broke down.
        pivot: usize,
    },
    /// An iterative solver did not reach the requested tolerance.
    NonConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Relative residual at the last iteration.
        residual: f64,
    },
    /// A parameter was invalid (e.g. zero bandwidth request on empty matrix).
    InvalidArgument(&'static str),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NonConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (residual {residual:e})"
            ),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_mention_context() {
        let e = LinalgError::DimensionMismatch {
            expected: 4,
            actual: 3,
            context: "matvec",
        };
        assert!(e.to_string().contains("matvec"));
        assert!(LinalgError::NotPositiveDefinite { pivot: 2 }
            .to_string()
            .contains("pivot 2"));
        assert!(LinalgError::NonConvergence {
            iterations: 10,
            residual: 1e-3
        }
        .to_string()
        .contains("10"));
        assert!(LinalgError::InvalidArgument("bad")
            .to_string()
            .contains("bad"));
    }
}
