//! Linear algebra substrate for the RobustScaler reproduction.
//!
//! The ADMM training loop of the NHPP model (paper Algorithm 2) repeatedly
//! solves a sparse symmetric positive definite system
//! `A_k = Δt·diag(e^{r_k}) + ρ D₂ᵀD₂ + ρ D_LᵀD_L`. This crate provides, from
//! scratch:
//!
//! * dense vectors and a small dense matrix with a reference Cholesky
//!   factorization (used for testing and tiny problems),
//! * a symmetric banded matrix with a banded Cholesky factorization whose
//!   cost is `O(T·w²)` for bandwidth `w` — matching the `O(T·L²)` complexity
//!   the paper quotes,
//! * a Jacobi-preconditioned conjugate gradient solver for the matrix-free
//!   representation of `A_k` (far cheaper than a banded factorization when
//!   the period length `L` is large), and
//! * the second-order and L-step forward difference operators `D₂`, `D_L`
//!   together with their transposes and Gram products.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod banded;
pub mod cg;
pub mod dense;
pub mod difference;
pub mod error;
pub mod vector;

pub use banded::SymmetricBandedMatrix;
pub use cg::{conjugate_gradient, CgOptions, CgOutcome, LinearOperator};
pub use dense::DenseMatrix;
pub use difference::{DifferenceOperator, ForwardDifference, SecondDifference};
pub use error::LinalgError;
