//! Difference operators used by the NHPP regularizers.
//!
//! The paper's loss (eq. 1) penalizes `‖D₂ r‖₁` (second-order smoothness,
//! the ℓ1 trend-filtering operator) and `‖D_L r‖₂²` (smoothness across one
//! period of length `L`). Both operators are sparse stencils; this module
//! implements their forward action, transpose action and the banded Gram
//! matrices `D₂ᵀD₂`, `D_LᵀD_L` needed to assemble the ADMM system matrix.

use crate::banded::SymmetricBandedMatrix;
use crate::error::LinalgError;

/// A sparse difference operator mapping `R^T → R^m`.
pub trait DifferenceOperator {
    /// Length of the input vector `T`.
    fn input_dim(&self) -> usize;
    /// Number of rows `m` of the operator.
    fn output_dim(&self) -> usize;
    /// Forward action `D x`.
    fn apply(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError>;
    /// Transpose action `Dᵀ y`.
    fn apply_transpose(&self, y: &[f64]) -> Result<Vec<f64>, LinalgError>;
    /// Half-bandwidth of the Gram matrix `DᵀD`.
    fn gram_half_bandwidth(&self) -> usize;

    /// Add `weight · DᵀD` into a symmetric banded accumulator.
    fn add_gram_to(
        &self,
        target: &mut SymmetricBandedMatrix,
        weight: f64,
    ) -> Result<(), LinalgError>;
}

/// Second-order difference operator `D₂ ∈ R^{(T−2)×T}` with stencil
/// `[1, −2, 1]` on consecutive triplets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondDifference {
    t: usize,
}

impl SecondDifference {
    /// Create the operator for series length `t` (requires `t ≥ 3` to have
    /// any rows; shorter inputs yield an empty operator).
    pub fn new(t: usize) -> Self {
        Self { t }
    }
}

impl DifferenceOperator for SecondDifference {
    fn input_dim(&self) -> usize {
        self.t
    }

    fn output_dim(&self) -> usize {
        self.t.saturating_sub(2)
    }

    fn apply(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.t {
            return Err(LinalgError::DimensionMismatch {
                expected: self.t,
                actual: x.len(),
                context: "SecondDifference::apply",
            });
        }
        Ok((0..self.output_dim())
            .map(|i| x[i] - 2.0 * x[i + 1] + x[i + 2])
            .collect())
    }

    fn apply_transpose(&self, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if y.len() != self.output_dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.output_dim(),
                actual: y.len(),
                context: "SecondDifference::apply_transpose",
            });
        }
        let mut x = vec![0.0; self.t];
        for (i, &v) in y.iter().enumerate() {
            x[i] += v;
            x[i + 1] -= 2.0 * v;
            x[i + 2] += v;
        }
        Ok(x)
    }

    fn gram_half_bandwidth(&self) -> usize {
        2
    }

    fn add_gram_to(
        &self,
        target: &mut SymmetricBandedMatrix,
        weight: f64,
    ) -> Result<(), LinalgError> {
        if target.dim() != self.t {
            return Err(LinalgError::DimensionMismatch {
                expected: self.t,
                actual: target.dim(),
                context: "SecondDifference::add_gram_to",
            });
        }
        // Each row contributes the 3x3 outer product of [1, -2, 1].
        const STENCIL: [f64; 3] = [1.0, -2.0, 1.0];
        for row in 0..self.output_dim() {
            for a in 0..3 {
                for b in a..3 {
                    target.add_at(row + b, row + a, weight * STENCIL[a] * STENCIL[b])?;
                }
            }
        }
        Ok(())
    }
}

/// L-step forward difference operator `D_L ∈ R^{(T−L)×T}` with rows
/// `e_iᵀ − e_{i+L}ᵀ` (paper Section V).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForwardDifference {
    t: usize,
    lag: usize,
}

impl ForwardDifference {
    /// Create the operator for series length `t` and lag `lag ≥ 1`.
    pub fn new(t: usize, lag: usize) -> Result<Self, LinalgError> {
        if lag == 0 {
            return Err(LinalgError::InvalidArgument(
                "forward difference lag must be >= 1",
            ));
        }
        Ok(Self { t, lag })
    }

    /// The lag (period length `L`).
    pub fn lag(&self) -> usize {
        self.lag
    }
}

impl DifferenceOperator for ForwardDifference {
    fn input_dim(&self) -> usize {
        self.t
    }

    fn output_dim(&self) -> usize {
        self.t.saturating_sub(self.lag)
    }

    fn apply(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.t {
            return Err(LinalgError::DimensionMismatch {
                expected: self.t,
                actual: x.len(),
                context: "ForwardDifference::apply",
            });
        }
        Ok((0..self.output_dim())
            .map(|i| x[i] - x[i + self.lag])
            .collect())
    }

    fn apply_transpose(&self, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if y.len() != self.output_dim() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.output_dim(),
                actual: y.len(),
                context: "ForwardDifference::apply_transpose",
            });
        }
        let mut x = vec![0.0; self.t];
        for (i, &v) in y.iter().enumerate() {
            x[i] += v;
            x[i + self.lag] -= v;
        }
        Ok(x)
    }

    fn gram_half_bandwidth(&self) -> usize {
        self.lag
    }

    fn add_gram_to(
        &self,
        target: &mut SymmetricBandedMatrix,
        weight: f64,
    ) -> Result<(), LinalgError> {
        if target.dim() != self.t {
            return Err(LinalgError::DimensionMismatch {
                expected: self.t,
                actual: target.dim(),
                context: "ForwardDifference::add_gram_to",
            });
        }
        for row in 0..self.output_dim() {
            target.add_at(row, row, weight)?;
            target.add_at(row + self.lag, row + self.lag, weight)?;
            target.add_at(row + self.lag, row, -weight)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    fn dense_from_operator<D: DifferenceOperator>(op: &D) -> DenseMatrix {
        let t = op.input_dim();
        let m = op.output_dim();
        let mut dense = DenseMatrix::zeros(m, t);
        for j in 0..t {
            let mut e = vec![0.0; t];
            e[j] = 1.0;
            let col = op.apply(&e).unwrap();
            for i in 0..m {
                dense[(i, j)] = col[i];
            }
        }
        dense
    }

    #[test]
    fn second_difference_matches_definition() {
        let d2 = SecondDifference::new(5);
        assert_eq!(d2.input_dim(), 5);
        assert_eq!(d2.output_dim(), 3);
        let x = [1.0, 2.0, 4.0, 7.0, 11.0];
        assert_eq!(d2.apply(&x).unwrap(), vec![1.0, 1.0, 1.0]);
        // A straight line has zero second difference.
        let line = [3.0, 5.0, 7.0, 9.0, 11.0];
        assert_eq!(d2.apply(&line).unwrap(), vec![0.0, 0.0, 0.0]);
        assert!(d2.apply(&[1.0]).is_err());
    }

    #[test]
    fn forward_difference_matches_definition() {
        let dl = ForwardDifference::new(6, 2).unwrap();
        assert_eq!(dl.lag(), 2);
        assert_eq!(dl.output_dim(), 4);
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(dl.apply(&x).unwrap(), vec![-2.0, -2.0, -2.0, -2.0]);
        // A 2-periodic signal has zero lag-2 difference.
        let periodic = [1.0, 5.0, 1.0, 5.0, 1.0, 5.0];
        assert_eq!(dl.apply(&periodic).unwrap(), vec![0.0; 4]);
        assert!(ForwardDifference::new(6, 0).is_err());
    }

    #[test]
    fn transpose_agrees_with_dense_transpose() {
        let d2 = SecondDifference::new(8);
        let dl = ForwardDifference::new(8, 3).unwrap();
        let dense2 = dense_from_operator(&d2);
        let densel = dense_from_operator(&dl);
        let y2: Vec<f64> = (0..d2.output_dim()).map(|i| (i as f64) - 2.0).collect();
        let yl: Vec<f64> = (0..dl.output_dim())
            .map(|i| (i as f64) * 0.5 + 1.0)
            .collect();
        assert_eq!(
            d2.apply_transpose(&y2).unwrap(),
            dense2.matvec_transpose(&y2).unwrap()
        );
        assert_eq!(
            dl.apply_transpose(&yl).unwrap(),
            densel.matvec_transpose(&yl).unwrap()
        );
        assert!(d2.apply_transpose(&[1.0]).is_err());
        assert!(dl.apply_transpose(&[1.0]).is_err());
    }

    #[test]
    fn gram_matrix_matches_dense_gram() {
        for (t, lag) in [(10usize, 3usize), (12, 5), (9, 1)] {
            let d2 = SecondDifference::new(t);
            let dl = ForwardDifference::new(t, lag).unwrap();
            let weight2 = 0.7;
            let weightl = 1.3;

            let mut banded = SymmetricBandedMatrix::zeros(
                t,
                d2.gram_half_bandwidth().max(dl.gram_half_bandwidth()),
            );
            d2.add_gram_to(&mut banded, weight2).unwrap();
            dl.add_gram_to(&mut banded, weightl).unwrap();

            let dense2 = dense_from_operator(&d2).gram();
            let densel = dense_from_operator(&dl).gram();
            for i in 0..t {
                for j in 0..t {
                    let expected = weight2 * dense2[(i, j)] + weightl * densel[(i, j)];
                    assert!(
                        (banded.get(i, j) - expected).abs() < 1e-12,
                        "t={t} lag={lag} ({i},{j}): {} vs {expected}",
                        banded.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn gram_accumulation_rejects_wrong_dimension() {
        let d2 = SecondDifference::new(10);
        let mut target = SymmetricBandedMatrix::zeros(9, 2);
        assert!(d2.add_gram_to(&mut target, 1.0).is_err());
        let dl = ForwardDifference::new(10, 2).unwrap();
        assert!(dl.add_gram_to(&mut target, 1.0).is_err());
    }

    #[test]
    fn short_series_yield_empty_operators() {
        let d2 = SecondDifference::new(2);
        assert_eq!(d2.output_dim(), 0);
        assert_eq!(d2.apply(&[1.0, 2.0]).unwrap(), Vec::<f64>::new());
        let dl = ForwardDifference::new(3, 5).unwrap();
        assert_eq!(dl.output_dim(), 0);
        assert_eq!(dl.apply(&[1.0, 2.0, 3.0]).unwrap(), Vec::<f64>::new());
    }
}
