//! Dense vector helpers used across the workspace.
//!
//! Operations are written against plain `&[f64]` / `&mut [f64]` slices so
//! call sites never need to convert into a bespoke vector type.

/// Dot product `xᵀy`. Panics in debug builds if lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `‖x‖∞`.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
}

/// L1 norm `‖x‖₁`.
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// `y ← a·x + y` (the BLAS `axpy`).
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += a * xi;
    }
}

/// `y ← x + b·y` (the BLAS `xpby`), useful for CG direction updates.
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi = xi + b * *yi;
    }
}

/// Scale a vector in place: `x ← a·x`.
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Elementwise subtraction `x - y` into a new vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a - b).collect()
}

/// Elementwise addition `x + y` into a new vector.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a + b).collect()
}

/// Elementwise soft-thresholding operator
/// `SoftThreshold(x, c) = sign(x)·max(|x| − c, 0)` (paper Algorithm 2,
/// line 3). `c` must be non-negative.
pub fn soft_threshold(x: &[f64], c: f64) -> Vec<f64> {
    debug_assert!(c >= 0.0, "soft threshold requires c >= 0");
    x.iter()
        .map(|&v| v.signum() * (v.abs() - c).max(0.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, -5.0, 6.0];
        assert_eq!(dot(&x, &y), 12.0);
        assert!((norm2(&x) - 14.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(norm_inf(&y), 6.0);
        assert_eq!(norm1(&y), 15.0);
    }

    #[test]
    fn axpy_and_xpby() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 10.0, 10.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 14.0, 16.0]);

        let r = [1.0, 1.0, 1.0];
        let mut p = [2.0, 4.0, 6.0];
        xpby(&r, 0.5, &mut p);
        assert_eq!(p, [2.0, 3.0, 4.0]);
    }

    #[test]
    fn scale_add_sub() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn soft_threshold_shrinks_towards_zero() {
        let x = [3.0, -3.0, 0.5, -0.5, 0.0];
        let s = soft_threshold(&x, 1.0);
        assert_eq!(s, vec![2.0, -2.0, 0.0, 0.0, 0.0]);
        // c = 0 is the identity.
        assert_eq!(soft_threshold(&x, 0.0), x.to_vec());
    }

    #[test]
    fn soft_threshold_never_increases_magnitude_or_flips_sign() {
        let xs = [-5.0, -0.1, 0.0, 0.2, 7.5];
        for &c in &[0.0, 0.1, 1.0, 10.0] {
            for (orig, new) in xs.iter().zip(soft_threshold(&xs, c)) {
                assert!(new.abs() <= orig.abs() + 1e-15);
                assert!(new * orig >= 0.0);
            }
        }
    }
}
