//! Small dense matrices with a reference Cholesky factorization.
//!
//! The dense path exists for correctness testing of the banded and iterative
//! solvers and for tiny systems (e.g. unit tests); the production ADMM path
//! uses [`crate::banded`] or [`crate::cg`].

use crate::error::LinalgError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major slice.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
                context: "DenseMatrix::from_rows",
            });
        }
        Ok(Self {
            rows,
            cols,
            data: data.to_vec(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
                context: "DenseMatrix::matvec",
            });
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            y[i] = row.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        }
        Ok(y)
    }

    /// Transpose-vector product `Aᵀ x`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.rows,
                actual: x.len(),
                context: "DenseMatrix::matvec_transpose",
            });
        }
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (yj, a) in y.iter_mut().zip(row.iter()) {
                *yj += a * x[i];
            }
        }
        Ok(y)
    }

    /// Gram matrix `AᵀA`.
    pub fn gram(&self) -> DenseMatrix {
        let mut g = DenseMatrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for a in 0..self.cols {
                if row[a] == 0.0 {
                    continue;
                }
                for b in 0..self.cols {
                    g[(a, b)] += row[a] * row[b];
                }
            }
        }
        g
    }

    /// Cholesky factorization `A = L Lᵀ` for a symmetric positive definite
    /// matrix; returns the lower factor.
    pub fn cholesky(&self) -> Result<DenseMatrix, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::InvalidArgument(
                "cholesky requires a square matrix",
            ));
        }
        let n = self.rows;
        let mut l = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let mut diag = self[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            l[(j, j)] = diag.sqrt();
            for i in j + 1..n {
                let mut v = self[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / l[(j, j)];
            }
        }
        Ok(l)
    }

    /// Solve `A x = b` for symmetric positive definite `A` via Cholesky.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
                context: "DenseMatrix::solve_spd",
            });
        }
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward substitution L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut v = b[i];
            for k in 0..i {
                v -= l[(i, k)] * y[k];
            }
            y[i] = v / l[(i, i)];
        }
        // Backward substitution Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut v = y[i];
            for k in i + 1..n {
                v -= l[(k, i)] * x[k];
            }
            x[i] = v / l[(i, i)];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = DenseMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert!(DenseMatrix::from_rows(2, 2, &[1.0]).is_err());
        let id = DenseMatrix::identity(3);
        assert_eq!(id[(1, 1)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
    }

    #[test]
    fn matvec_and_transpose() {
        let m = DenseMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![6.0, 15.0]);
        assert_eq!(
            m.matvec_transpose(&[1.0, 1.0]).unwrap(),
            vec![5.0, 7.0, 9.0]
        );
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_transpose(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn gram_matches_manual_computation() {
        let m = DenseMatrix::from_rows(3, 2, &[1.0, 0.0, 1.0, 1.0, 0.0, 2.0]).unwrap();
        let g = m.gram();
        assert_eq!(g[(0, 0)], 2.0);
        assert_eq!(g[(0, 1)], 1.0);
        assert_eq!(g[(1, 0)], 1.0);
        assert_eq!(g[(1, 1)], 5.0);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2,0],[2,5,2],[0,2,6]] is SPD.
        let a =
            DenseMatrix::from_rows(3, 3, &[4.0, 2.0, 0.0, 2.0, 5.0, 2.0, 0.0, 2.0, 6.0]).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve_spd(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_detects_non_spd() {
        let a = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        let rect = DenseMatrix::zeros(2, 3);
        assert!(rect.cholesky().is_err());
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = DenseMatrix::identity(3);
        assert!(a.solve_spd(&[1.0, 2.0]).is_err());
    }
}
