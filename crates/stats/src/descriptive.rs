//! Descriptive statistics: means, variances, robust location/scale and
//! autocorrelation, used throughout the evaluation harness (QoS variance in
//! Fig. 5, robust filters in the time-series crate, etc.).

use crate::error::StatsError;

/// Arithmetic mean; returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n − 1 denominator); 0 for fewer than 2 points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() as f64 - 1.0)
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median of a sample.
pub fn median(xs: &[f64]) -> Result<f64, StatsError> {
    crate::quantile::empirical_quantile(xs, 0.5)
}

/// Median absolute deviation (consistent with the standard deviation under
/// normality when multiplied by 1.4826, which this function does *not* do).
pub fn mad(xs: &[f64]) -> Result<f64, StatsError> {
    let med = median(xs)?;
    let deviations: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&deviations)
}

/// Lag-`k` sample autocorrelation, used by the periodicity detector.
///
/// Returns 0 when the series is too short or has zero variance.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    let n = xs.len();
    if lag >= n || n < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom <= f64::EPSILON {
        return 0.0;
    }
    let numer: f64 = (0..n - lag).map(|i| (xs[i] - m) * (xs[i + lag] - m)).sum();
    numer / denom
}

/// A compact descriptive summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample; errors on an empty slice.
    pub fn from_sample(xs: &[f64]) -> Result<Self, StatsError> {
        if xs.is_empty() {
            return Err(StatsError::EmptySample);
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Ok(Self {
            count: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min,
            median: median(xs)?,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert!(median(&[]).is_err());
        assert!(Summary::from_sample(&[]).is_err());
    }

    #[test]
    fn median_and_mad() {
        let xs = [1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0];
        assert_eq!(median(&xs).unwrap(), 2.0);
        // |x - 2| = [1,1,0,0,2,4,7], median = 1.
        assert_eq!(mad(&xs).unwrap(), 1.0);
    }

    #[test]
    fn autocorrelation_of_periodic_signal_peaks_at_period() {
        let n = 400;
        let period = 25;
        let xs: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / period as f64).sin())
            .collect();
        let at_period = autocorrelation(&xs, period);
        let off_period = autocorrelation(&xs, period / 2);
        assert!(at_period > 0.9, "acf at period = {at_period}");
        assert!(off_period < 0.0, "acf off period = {off_period}");
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
        assert_eq!(autocorrelation(&[3.0; 10], 2), 0.0);
        // Lag 0 of any non-constant series is 1.
        let xs = [1.0, 5.0, 2.0, 8.0];
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_reports_all_fields() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        let s = Summary::from_sample(&xs).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.mean - 2.8).abs() < 1e-12);
    }
}
