//! Monte Carlo estimation helpers.
//!
//! The scaling decisions (paper eqs. 3, 5, 7) are stochastic root-finding
//! problems approximated with R Monte Carlo samples; this module provides the
//! estimator plumbing and confidence intervals used to validate accuracy
//! (Table I discussion).

use crate::descriptive::{mean, std_dev};
use crate::error::StatsError;

/// A Monte Carlo estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloEstimate {
    /// Point estimate (sample mean of the evaluations).
    pub estimate: f64,
    /// Standard error of the estimate.
    pub standard_error: f64,
    /// Number of samples used.
    pub samples: usize,
}

impl MonteCarloEstimate {
    /// Two-sided confidence interval at the given normal quantile multiplier
    /// (e.g. 1.96 for ~95%).
    pub fn confidence_interval(&self, z: f64) -> (f64, f64) {
        (
            self.estimate - z * self.standard_error,
            self.estimate + z * self.standard_error,
        )
    }
}

/// Estimate `E[f(X)]` from pre-drawn samples of `X`.
pub fn monte_carlo_mean<F>(samples: &[f64], f: F) -> Result<MonteCarloEstimate, StatsError>
where
    F: Fn(f64) -> f64,
{
    if samples.is_empty() {
        return Err(StatsError::EmptySample);
    }
    let evals: Vec<f64> = samples.iter().map(|&x| f(x)).collect();
    let estimate = mean(&evals);
    let standard_error = std_dev(&evals) / (evals.len() as f64).sqrt();
    Ok(MonteCarloEstimate {
        estimate,
        standard_error,
        samples: samples.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{ContinuousDistribution, Uniform};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_sample() {
        assert!(monte_carlo_mean(&[], |x| x).is_err());
    }

    #[test]
    fn estimates_integral_of_x_squared() {
        // E[U^2] over U ~ Uniform(0,1) is 1/3.
        let u = Uniform::standard();
        let mut rng = StdRng::seed_from_u64(99);
        let samples = u.sample_n(&mut rng, 100_000);
        let est = monte_carlo_mean(&samples, |x| x * x).unwrap();
        assert!((est.estimate - 1.0 / 3.0).abs() < 5.0 * est.standard_error);
        assert!(est.standard_error < 0.002);
        assert_eq!(est.samples, 100_000);
    }

    #[test]
    fn confidence_interval_brackets_estimate() {
        let est = MonteCarloEstimate {
            estimate: 2.0,
            standard_error: 0.1,
            samples: 100,
        };
        let (lo, hi) = est.confidence_interval(1.96);
        assert!(lo < 2.0 && hi > 2.0);
        assert!((hi - lo - 2.0 * 1.96 * 0.1).abs() < 1e-12);
    }
}
