//! Empirical quantiles.
//!
//! The HP-constrained scaling rule (paper eq. 3) is literally "the α-quantile
//! of (ξ_i − τ_i)" over Monte Carlo samples, and the evaluation reports
//! response-time quantiles (Table II), so quantile computation is a core
//! primitive.

use crate::error::StatsError;

/// Empirical quantile of an unsorted sample using linear interpolation
/// between order statistics (type-7 / default of R and NumPy).
///
/// Returns an error if the sample is empty or `p` is outside `[0, 1]`.
pub fn empirical_quantile(sample: &[f64], p: f64) -> Result<f64, StatsError> {
    if sample.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidProbability(p));
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    Ok(quantile_of_sorted(&sorted, p))
}

/// Empirical quantile of a sample that is already sorted ascending.
///
/// This avoids re-sorting when many quantile levels are queried against the
/// same sample (e.g. Table II's 75/95/99/99.9% response-time quantiles).
pub fn empirical_quantile_sorted(sorted: &[f64], p: f64) -> Result<f64, StatsError> {
    if sorted.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidProbability(p));
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted ascending"
    );
    Ok(quantile_of_sorted(sorted, p))
}

/// Compute several quantile levels of one sample with a single sort.
pub fn quantiles(sample: &[f64], levels: &[f64]) -> Result<Vec<f64>, StatsError> {
    if sample.is_empty() {
        return Err(StatsError::EmptySample);
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    levels
        .iter()
        .map(|&p| empirical_quantile_sorted(&sorted, p))
        .collect()
}

fn quantile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = h - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_invalid_levels() {
        assert!(matches!(
            empirical_quantile(&[], 0.5),
            Err(StatsError::EmptySample)
        ));
        assert!(matches!(
            empirical_quantile(&[1.0], 1.5),
            Err(StatsError::InvalidProbability(_))
        ));
        assert!(quantiles(&[], &[0.5]).is_err());
    }

    #[test]
    fn single_element_sample() {
        assert_eq!(empirical_quantile(&[42.0], 0.0).unwrap(), 42.0);
        assert_eq!(empirical_quantile(&[42.0], 1.0).unwrap(), 42.0);
        assert_eq!(empirical_quantile(&[42.0], 0.37).unwrap(), 42.0);
    }

    #[test]
    fn matches_known_interpolated_values() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(empirical_quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(empirical_quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((empirical_quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((empirical_quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn order_of_input_does_not_matter() {
        let a = [5.0, 1.0, 4.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        for &p in &[0.1, 0.37, 0.5, 0.9] {
            assert_eq!(
                empirical_quantile(&a, p).unwrap(),
                empirical_quantile(&b, p).unwrap()
            );
        }
    }

    #[test]
    fn sorted_variant_matches_unsorted() {
        let xs = [9.0, 3.0, 7.0, 1.0, 5.0, 2.0];
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &p in &[0.0, 0.33, 0.66, 1.0] {
            assert_eq!(
                empirical_quantile(&xs, p).unwrap(),
                empirical_quantile_sorted(&sorted, p).unwrap()
            );
        }
    }

    #[test]
    fn multi_level_helper_is_consistent() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let qs = quantiles(&xs, &[0.75, 0.95, 0.99, 0.999]).unwrap();
        assert!((qs[0] - 75.0).abs() < 1e-9);
        assert!((qs[1] - 95.0).abs() < 1e-9);
        assert!((qs[2] - 99.0).abs() < 1e-9);
        assert!((qs[3] - 99.9).abs() < 1e-9);
    }

    #[test]
    fn quantile_is_monotone_in_level() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let q = empirical_quantile(&xs, p).unwrap();
            assert!(q >= prev);
            prev = q;
        }
    }
}
