//! Empirical quantiles.
//!
//! The HP-constrained scaling rule (paper eq. 3) is literally "the α-quantile
//! of (ξ_i − τ_i)" over Monte Carlo samples, and the evaluation reports
//! response-time quantiles (Table II), so quantile computation is a core
//! primitive.

use crate::error::StatsError;

/// Empirical quantile of an unsorted sample using linear interpolation
/// between order statistics (type-7 / default of R and NumPy).
///
/// Returns an error if the sample is empty or `p` is outside `[0, 1]`.
pub fn empirical_quantile(sample: &[f64], p: f64) -> Result<f64, StatsError> {
    if sample.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidProbability(p));
    }
    let mut scratch = sample.to_vec();
    empirical_quantile_unstable(&mut scratch, p)
}

/// Empirical quantile by in-place selection, reordering `sample`.
///
/// Same estimator as [`empirical_quantile`] (type-7 linear interpolation)
/// but `O(n)` expected instead of `O(n log n)`: the two order statistics the
/// interpolation needs are found with `select_nth_unstable_by` rather than a
/// full sort. This is the hot-path variant — the HP decision rule evaluates
/// one quantile per upcoming query per planning round (paper eq. 3), and
/// never needs the sample again afterwards.
pub fn empirical_quantile_unstable(sample: &mut [f64], p: f64) -> Result<f64, StatsError> {
    if sample.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidProbability(p));
    }
    let n = sample.len();
    if n == 1 {
        return Ok(sample[0]);
    }
    let h = p * (n as f64 - 1.0);
    let lo = h.floor() as usize;
    let (_, &mut lo_value, above) =
        sample.select_nth_unstable_by(lo, |a, b| a.partial_cmp(b).expect("NaN in sample"));
    if lo as f64 == h {
        return Ok(lo_value);
    }
    // The (lo+1)-th order statistic is the minimum of the partition above
    // the pivot; `h` is fractional here, so `lo < n - 1` and `above` is
    // non-empty.
    let hi_value = above.iter().copied().fold(f64::INFINITY, f64::min);
    let w = h - lo as f64;
    Ok(lo_value * (1.0 - w) + hi_value * w)
}

/// Empirical quantile of a sample that is already sorted ascending.
///
/// This avoids re-sorting when many quantile levels are queried against the
/// same sample (e.g. Table II's 75/95/99/99.9% response-time quantiles).
pub fn empirical_quantile_sorted(sorted: &[f64], p: f64) -> Result<f64, StatsError> {
    if sorted.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidProbability(p));
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted ascending"
    );
    Ok(quantile_of_sorted(sorted, p))
}

/// Compute several quantile levels of one sample with a single sort.
pub fn quantiles(sample: &[f64], levels: &[f64]) -> Result<Vec<f64>, StatsError> {
    if sample.is_empty() {
        return Err(StatsError::EmptySample);
    }
    let mut sorted = sample.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    levels
        .iter()
        .map(|&p| empirical_quantile_sorted(&sorted, p))
        .collect()
}

fn quantile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = p * (n as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = h - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_invalid_levels() {
        assert!(matches!(
            empirical_quantile(&[], 0.5),
            Err(StatsError::EmptySample)
        ));
        assert!(matches!(
            empirical_quantile(&[1.0], 1.5),
            Err(StatsError::InvalidProbability(_))
        ));
        assert!(quantiles(&[], &[0.5]).is_err());
    }

    #[test]
    fn single_element_sample() {
        assert_eq!(empirical_quantile(&[42.0], 0.0).unwrap(), 42.0);
        assert_eq!(empirical_quantile(&[42.0], 1.0).unwrap(), 42.0);
        assert_eq!(empirical_quantile(&[42.0], 0.37).unwrap(), 42.0);
    }

    #[test]
    fn matches_known_interpolated_values() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(empirical_quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(empirical_quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((empirical_quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((empirical_quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn order_of_input_does_not_matter() {
        let a = [5.0, 1.0, 4.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        for &p in &[0.1, 0.37, 0.5, 0.9] {
            assert_eq!(
                empirical_quantile(&a, p).unwrap(),
                empirical_quantile(&b, p).unwrap()
            );
        }
    }

    #[test]
    fn sorted_variant_matches_unsorted() {
        let xs = [9.0, 3.0, 7.0, 1.0, 5.0, 2.0];
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &p in &[0.0, 0.33, 0.66, 1.0] {
            assert_eq!(
                empirical_quantile(&xs, p).unwrap(),
                empirical_quantile_sorted(&sorted, p).unwrap()
            );
        }
    }

    #[test]
    fn multi_level_helper_is_consistent() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let qs = quantiles(&xs, &[0.75, 0.95, 0.99, 0.999]).unwrap();
        assert!((qs[0] - 75.0).abs() < 1e-9);
        assert!((qs[1] - 95.0).abs() < 1e-9);
        assert!((qs[2] - 99.0).abs() < 1e-9);
        assert!((qs[3] - 99.9).abs() < 1e-9);
    }

    #[test]
    fn unstable_selection_matches_the_sorting_estimator() {
        // Pseudo-random sample (LCG) over a grid of levels, including the
        // exact-index and interpolated cases and both endpoints.
        let mut state = 88172645463325252u64;
        let xs: Vec<f64> = (0..257)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 10_000) as f64 / 100.0 - 50.0
            })
            .collect();
        for i in 0..=64 {
            let p = i as f64 / 64.0;
            let expected = empirical_quantile(&xs, p).unwrap();
            let mut scratch = xs.clone();
            let got = empirical_quantile_unstable(&mut scratch, p).unwrap();
            assert_eq!(got, expected, "p = {p}");
        }
        assert!(empirical_quantile_unstable(&mut [], 0.5).is_err());
        assert!(empirical_quantile_unstable(&mut [1.0], -0.1).is_err());
        assert_eq!(empirical_quantile_unstable(&mut [7.0], 0.9).unwrap(), 7.0);
    }

    #[test]
    fn heavily_duplicated_samples_select_correctly() {
        // Exercises the equal-to-pivot grouping pass of the quickselect.
        let mut xs = vec![5.0; 100];
        xs.extend(vec![1.0; 100]);
        xs.extend(vec![9.0; 57]);
        for i in 0..=32 {
            let p = i as f64 / 32.0;
            let expected = empirical_quantile(&xs, p).unwrap();
            let mut scratch = xs.clone();
            assert_eq!(
                empirical_quantile_unstable(&mut scratch, p).unwrap(),
                expected,
                "p = {p}"
            );
        }
    }

    #[test]
    fn quantile_is_monotone_in_level() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let q = empirical_quantile(&xs, p).unwrap();
            assert!(q >= prev);
            prev = q;
        }
    }
}
