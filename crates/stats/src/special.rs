//! Special functions needed by the distribution layer.
//!
//! The Gamma CDF/quantile (used by the κ threshold of Algorithm 4 and the
//! time-rescaling argument of Proposition 2) requires the regularized lower
//! incomplete gamma function and its inverse; the normal CDF requires `erf`.
//! All routines are implemented from scratch following the classic
//! series/continued-fraction formulations (Numerical Recipes style) with
//! double precision accuracy sufficient for the paper's experiments.

/// Natural logarithm of the Gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with g = 7 and 9 coefficients, accurate to
/// roughly 15 significant digits over the positive real axis.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];

    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }

    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, x)` is the CDF at `x` of a Gamma distribution with shape `a` and
/// scale 1. Returns values in `[0, 1]`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

/// Series expansion of `P(a, x)`, effective for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;

    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction (modified Lentz) expansion of `Q(a, x)`, effective for
/// `x >= a + 1`.
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Inverse of the regularized lower incomplete gamma function.
///
/// Returns `x` such that `P(a, x) = p`. This is the quantile function of a
/// Gamma(shape = a, scale = 1) distribution. Uses a Wilson–Hilferty starting
/// guess followed by safeguarded Newton iterations.
pub fn gamma_p_inverse(a: f64, p: f64) -> f64 {
    debug_assert!(a > 0.0, "gamma_p_inverse requires a > 0, got {a}");
    debug_assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }

    let ln_gamma_a = ln_gamma(a);
    // Wilson-Hilferty approximation as the starting point.
    let mut x = if a > 1.0 {
        let z = normal_quantile(p);
        let t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * a.sqrt());
        (a * t * t * t).max(1e-12)
    } else {
        // Small-shape initial guess from the series P(a,x) ~ x^a / (a Γ(a)).
        let t = 1.0 - a * (0.253 + a * 0.12);
        if p < t {
            (p / t).powf(1.0 / a)
        } else {
            1.0 - (1.0 - (p - t) / (1.0 - t)).ln()
        }
    };

    // Safeguarded Newton iterations on P(a, x) - p = 0.
    let mut lo = 0.0_f64;
    let mut hi = f64::INFINITY;
    for _ in 0..100 {
        if x <= 0.0 {
            x = 0.5 * (lo + if hi.is_finite() { hi } else { lo + 1.0 });
        }
        let err = gamma_p(a, x) - p;
        if err > 0.0 {
            hi = hi.min(x);
        } else {
            lo = lo.max(x);
        }
        if err.abs() < 1e-12 {
            return x;
        }
        // pdf of Gamma(a, 1) at x.
        let ln_pdf = (a - 1.0) * x.ln() - x - ln_gamma_a;
        let pdf = ln_pdf.exp();
        let mut step = if pdf > 0.0 { err / pdf } else { 0.0 };
        let mut x_new = x - step;
        if x_new <= lo || (hi.is_finite() && x_new >= hi) || step == 0.0 {
            // Fall back to bisection when Newton leaves the bracket.
            x_new = if hi.is_finite() {
                0.5 * (lo + hi)
            } else {
                (x * 2.0).max(lo + 1.0)
            };
            step = x - x_new;
        }
        x = x_new;
        if step.abs() < 1e-14 * x.max(1.0) {
            return x;
        }
    }
    x
}

/// Error function `erf(x)`.
///
/// Computed through the identity `erf(x) = P(1/2, x²)` for `x ≥ 0` (and odd
/// symmetry), inheriting the ~1e-15 accuracy of the incomplete gamma
/// series/continued-fraction evaluation.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Uses `erfc(x) = Q(1/2, x²)` for `x ≥ 0` to retain accuracy in the far
/// right tail where `1 - erf(x)` would cancel catastrophically.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` via the Acklam rational approximation
/// refined with one Halley step (accuracy ~1e-9 on (0, 1)).
pub fn normal_quantile(p: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }

    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the high-precision erfc.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural logarithm of `n!` computed via `ln Γ(n + 1)`.
pub fn ln_factorial(n: u64) -> f64 {
    // Small cases exactly to avoid accumulation error in Poisson pmf tests.
    const TABLE: [f64; 11] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5_040.0,
        40_320.0,
        362_880.0,
        3_628_800.0,
    ];
    if (n as usize) < TABLE.len() {
        TABLE[n as usize].ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "expected {b}, got {a} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(3.0), 2.0_f64.ln(), 1e-12);
        assert_close(ln_gamma(6.0), 120.0_f64.ln(), 1e-12);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(10.5) = 1133278.3889487855...
        assert_close(ln_gamma(10.5), 1_133_278.388_948_785_5_f64.ln(), 1e-10);
    }

    #[test]
    fn gamma_p_matches_exponential_cdf_for_shape_one() {
        // P(1, x) = 1 - exp(-x).
        for &x in &[0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert_close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn gamma_p_matches_erlang_cdf() {
        // For integer shape k, P(k, x) = 1 - exp(-x) * sum_{i<k} x^i / i!.
        let k = 5_u64;
        for &x in &[0.5, 1.0, 3.0, 5.0, 8.0, 20.0] {
            let mut sum = 0.0;
            let mut term = 1.0;
            for i in 0..k {
                if i > 0 {
                    term *= x / i as f64;
                }
                sum += term;
            }
            let expected = 1.0 - (-x).exp() * sum;
            assert_close(gamma_p(k as f64, x), expected, 1e-12);
        }
    }

    #[test]
    fn gamma_p_and_q_sum_to_one() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.01, 0.5, 1.0, 2.0, 10.0, 60.0] {
                assert_close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn gamma_p_inverse_round_trips() {
        for &a in &[0.5, 1.0, 2.0, 5.0, 17.0, 100.0] {
            for &p in &[0.001, 0.05, 0.1, 0.5, 0.9, 0.95, 0.999] {
                let x = gamma_p_inverse(a, p);
                assert_close(gamma_p(a, x), p, 1e-8);
            }
        }
    }

    #[test]
    fn gamma_p_inverse_handles_extremes() {
        assert_eq!(gamma_p_inverse(3.0, 0.0), 0.0);
        assert!(gamma_p_inverse(3.0, 1.0).is_infinite());
    }

    #[test]
    fn erf_matches_known_values() {
        assert_close(erf(0.0), 0.0, 1e-12);
        assert_close(erf(1.0), 0.842_700_792_949_715, 1e-6);
        assert_close(erf(-1.0), -0.842_700_792_949_715, 1e-6);
        assert_close(erf(2.0), 0.995_322_265_018_953, 1e-6);
    }

    #[test]
    fn normal_cdf_and_quantile_are_inverse() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert_close(normal_cdf(x), p, 1e-8);
        }
        assert_close(normal_quantile(0.975), 1.959_963_984_540_054, 1e-6);
        assert_close(normal_quantile(0.5), 0.0, 1e-9);
    }

    #[test]
    fn ln_factorial_matches_direct_computation() {
        assert_close(ln_factorial(0), 0.0, 1e-12);
        assert_close(ln_factorial(5), 120.0_f64.ln(), 1e-12);
        assert_close(ln_factorial(20), 2.432_902_008_176_64e18_f64.ln(), 1e-10);
    }
}
