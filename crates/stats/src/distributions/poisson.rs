//! Poisson distribution over counts, the per-bucket law of the NHPP model.

use super::DiscreteDistribution;
use crate::error::StatsError;
use crate::special::{gamma_q, ln_factorial};
use rand::Rng;

/// Poisson distribution with mean `λ > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Create a Poisson distribution with the given mean.
    pub fn new(mean: f64) -> Result<Self, StatsError> {
        if !(mean > 0.0) || !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { mean })
    }

    /// The mean/rate parameter λ.
    pub fn lambda(&self) -> f64 {
        self.mean
    }

    /// Knuth's multiplication method, efficient for small means.
    fn sample_knuth<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let l = (-self.mean).exp();
        let mut k = 0_u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// PTRS transformed-rejection sampling (Hörmann 1993) for large means.
    fn sample_ptrs<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mu = self.mean;
        let b = 0.931 + 2.53 * mu.sqrt();
        let a = -0.059 + 0.024_83 * b;
        let inv_alpha = 1.123_9 + 1.132_8 / (b - 3.4);
        let v_r = 0.9277 - 3.6224 / (b - 2.0);

        loop {
            let u: f64 = rng.gen::<f64>() - 0.5;
            let v: f64 = rng.gen::<f64>();
            let us = 0.5 - u.abs();
            let k = ((2.0 * a / us + b) * u + mu + 0.43).floor();
            if us >= 0.07 && v <= v_r {
                return k.max(0.0) as u64;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            let lhs = v.ln() + inv_alpha.ln() - (a / (us * us) + b).ln();
            let rhs = -mu + k * mu.ln() - ln_factorial(k as u64);
            if lhs <= rhs {
                return k as u64;
            }
        }
    }
}

impl DiscreteDistribution for Poisson {
    fn pmf(&self, k: u64) -> f64 {
        (-self.mean + k as f64 * self.mean.ln() - ln_factorial(k)).exp()
    }

    fn cdf(&self, k: u64) -> f64 {
        // P(X <= k) = Q(k + 1, λ) (regularized upper incomplete gamma).
        gamma_q(k as f64 + 1.0, self.mean)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.mean
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.mean < 10.0 {
            self.sample_knuth(rng)
        } else {
            self.sample_ptrs(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_mean() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-3.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let p = Poisson::new(4.5).unwrap();
        let total: f64 = (0..100).map(|k| p.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn cdf_matches_pmf_partial_sums() {
        let p = Poisson::new(7.3).unwrap();
        let mut acc = 0.0;
        for k in 0..30_u64 {
            acc += p.pmf(k);
            assert!((p.cdf(k) - acc).abs() < 1e-9, "k = {k}");
        }
    }

    #[test]
    fn small_mean_sampler_matches_moments() {
        let p = Poisson::new(2.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let xs = p.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<u64>() as f64 / n as f64;
        let var = xs
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / (n as f64 - 1.0);
        assert!((mean - 2.5).abs() < 0.03, "mean {mean}");
        assert!((var - 2.5).abs() < 0.08, "var {var}");
    }

    #[test]
    fn large_mean_sampler_matches_moments() {
        let p = Poisson::new(250.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let xs = p.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<u64>() as f64 / n as f64;
        let var = xs
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / (n as f64 - 1.0);
        assert!((mean - 250.0).abs() / 250.0 < 0.01, "mean {mean}");
        assert!((var - 250.0).abs() / 250.0 < 0.05, "var {var}");
    }

    #[test]
    fn large_mean_sampler_matches_pmf_histogram() {
        let p = Poisson::new(40.0).unwrap();
        let mut rng = StdRng::seed_from_u64(19);
        let n = 200_000;
        let mut counts = vec![0_u64; 120];
        for _ in 0..n {
            let k = p.sample(&mut rng) as usize;
            if k < counts.len() {
                counts[k] += 1;
            }
        }
        // Chi-square-like check on the central bins.
        for k in 25..=55_u64 {
            let expected = p.pmf(k) * n as f64;
            let observed = counts[k as usize] as f64;
            assert!(
                (observed - expected).abs() < 6.0 * expected.sqrt() + 5.0,
                "k={k} expected {expected} observed {observed}"
            );
        }
    }
}
