//! Parametric probability distributions implemented from scratch.
//!
//! All continuous distributions implement [`ContinuousDistribution`] (pdf,
//! cdf, quantile, moments, sampling); discrete ones implement
//! [`DiscreteDistribution`]. Sampling is generic over any [`rand::Rng`] so
//! experiments stay reproducible with seeded RNGs.

mod bernoulli;
mod exponential;
mod gamma;
mod lognormal;
mod normal;
mod poisson;
mod uniform;
mod weibull;

pub use bernoulli::Bernoulli;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use lognormal::LogNormal;
pub use normal::Normal;
pub use poisson::Poisson;
pub use uniform::Uniform;
pub use weibull::Weibull;

use rand::Rng;

/// Common interface of continuous distributions on (a subset of) the reals.
pub trait ContinuousDistribution {
    /// Probability density function evaluated at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution function evaluated at `x`.
    fn cdf(&self, x: f64) -> f64;
    /// Quantile (inverse CDF) at probability level `p ∈ [0, 1]`.
    fn quantile(&self, p: f64) -> f64;
    /// Expected value.
    fn mean(&self) -> f64;
    /// Variance.
    fn variance(&self) -> f64;
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draw `n` independent samples into a vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Standard deviation, `sqrt(variance)`.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Common interface of integer-valued distributions.
pub trait DiscreteDistribution {
    /// Probability mass function at `k`.
    fn pmf(&self, k: u64) -> f64;
    /// Cumulative distribution function at `k` (inclusive).
    fn cdf(&self, k: u64) -> f64;
    /// Expected value.
    fn mean(&self) -> f64;
    /// Variance.
    fn variance(&self) -> f64;
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64;

    /// Draw `n` independent samples into a vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Draw `n` samples and return (sample mean, sample variance).
    pub fn sample_moments<D: ContinuousDistribution>(d: &D, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs = d.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        (mean, var)
    }

    /// Kolmogorov–Smirnov statistic of `n` samples against the CDF of `d`.
    pub fn ks_statistic<D: ContinuousDistribution>(d: &D, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = d.sample_n(&mut rng, n);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut ks: f64 = 0.0;
        for (i, &x) in xs.iter().enumerate() {
            let f = d.cdf(x);
            let lo = i as f64 / n as f64;
            let hi = (i + 1) as f64 / n as f64;
            ks = ks.max((f - lo).abs()).max((f - hi).abs());
        }
        ks
    }
}
