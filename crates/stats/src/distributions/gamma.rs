//! Gamma distribution.
//!
//! The Gamma distribution with integer shape `i` and scale 1 is the law of
//! the waiting time until the `i`-th arrival of a unit-rate Poisson process,
//! which is exactly what Algorithm 4's κ threshold (paper eq. 8) and the
//! time-rescaling argument of Proposition 2 need.

use super::ContinuousDistribution;
use crate::error::StatsError;
use crate::special::{gamma_p, gamma_p_inverse, ln_gamma};
use rand::Rng;

/// Gamma distribution with shape `k > 0` and scale `θ > 0` (mean `kθ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Create a Gamma distribution with the given shape and scale.
    pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
        if !(shape > 0.0) || !shape.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "shape",
                value: shape,
                constraint: "must be finite and > 0",
            });
        }
        if !(scale > 0.0) || !scale.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "scale",
                value: scale,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { shape, scale })
    }

    /// Gamma with unit scale — the distribution of the `shape`-th arrival time
    /// of a unit-rate Poisson process (Erlang when `shape` is an integer).
    pub fn with_unit_scale(shape: f64) -> Result<Self, StatsError> {
        Self::new(shape, 1.0)
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Marsaglia–Tsang sampling for shape ≥ 1.
    fn sample_marsaglia_tsang<R: Rng + ?Sized>(&self, rng: &mut R, shape: f64) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // Standard normal via Box–Muller (avoids depending on rand_distr).
            let (u1, u2): (f64, f64) = (rng.gen::<f64>(), rng.gen::<f64>());
            let z = (-2.0 * (1.0 - u1).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let v = 1.0 + c * z;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u: f64 = rng.gen::<f64>();
            if u < 1.0 - 0.033_1 * z * z * z * z {
                return d * v;
            }
            if u.ln() < 0.5 * z * z + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl ContinuousDistribution for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return if self.shape < 1.0 {
                f64::INFINITY
            } else if self.shape == 1.0 {
                1.0 / self.scale
            } else {
                0.0
            };
        }
        let k = self.shape;
        let t = self.scale;
        ((k - 1.0) * (x / t).ln() - x / t - ln_gamma(k)).exp() / t
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, x / self.scale)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        gamma_p_inverse(self.shape, p) * self.scale
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia–Tsang with the shape < 1 boost.
        if self.shape >= 1.0 {
            self.scale * self.sample_marsaglia_tsang(rng, self.shape)
        } else {
            let g = self.sample_marsaglia_tsang(rng, self.shape + 1.0);
            let u: f64 = rng.gen::<f64>();
            self.scale * g * u.powf(1.0 / self.shape)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ks_statistic, sample_moments};
    use super::*;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-2.0, 1.0).is_err());
        assert!(Gamma::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn shape_one_reduces_to_exponential() {
        let g = Gamma::new(1.0, 2.0).unwrap();
        for &x in &[0.1, 0.5, 1.0, 4.0] {
            let expected = 1.0 - (-x / 2.0_f64).exp();
            assert!((g.cdf(x) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let g = Gamma::new(7.0, 3.0).unwrap();
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = g.quantile(p);
            assert!((g.cdf(x) - p).abs() < 1e-8, "p = {p}");
        }
    }

    #[test]
    fn erlang_quantile_matches_poisson_tail() {
        // P(Gamma(k,1) <= x) = P(Poisson(x) >= k).
        let k = 4_u64;
        let g = Gamma::with_unit_scale(k as f64).unwrap();
        let x = 6.5_f64;
        let mut poisson_lt_k = 0.0;
        let mut term = (-x).exp();
        for i in 0..k {
            if i > 0 {
                term *= x / i as f64;
            }
            poisson_lt_k += term;
        }
        assert!((g.cdf(x) - (1.0 - poisson_lt_k)).abs() < 1e-10);
    }

    #[test]
    fn sample_moments_match_theory_large_shape() {
        let g = Gamma::new(9.0, 2.0).unwrap();
        let (m, v) = sample_moments(&g, 200_000, 17);
        assert!((m - g.mean()).abs() / g.mean() < 0.02);
        assert!((v - g.variance()).abs() / g.variance() < 0.05);
    }

    #[test]
    fn sample_moments_match_theory_small_shape() {
        let g = Gamma::new(0.5, 1.5).unwrap();
        let (m, v) = sample_moments(&g, 300_000, 23);
        assert!((m - g.mean()).abs() / g.mean() < 0.03);
        assert!((v - g.variance()).abs() / g.variance() < 0.08);
    }

    #[test]
    fn samples_pass_ks_test() {
        let g = Gamma::new(3.0, 2.0).unwrap();
        let ks = ks_statistic(&g, 20_000, 29);
        assert!(ks < 1.63 / (20_000_f64).sqrt() * 1.5, "ks = {ks}");
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = Gamma::new(2.5, 1.3).unwrap();
        // Simple trapezoidal integration over a wide range.
        let (a, b, n) = (0.0, 60.0, 60_000);
        let h = (b - a) / n as f64;
        let mut integral = 0.0;
        for i in 0..=n {
            let x = a + i as f64 * h;
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            integral += w * g.pdf(x);
        }
        integral *= h;
        assert!((integral - 1.0).abs() < 1e-6, "integral = {integral}");
    }
}
