//! Exponential distribution, used for query processing times and as the
//! inter-arrival law of homogeneous Poisson segments.

use super::ContinuousDistribution;
use crate::error::StatsError;
use rand::Rng;

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create an exponential distribution with the given rate `λ > 0`.
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        if !(rate > 0.0) || !rate.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "rate",
                value: rate,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { rate })
    }

    /// Create an exponential distribution from its mean `1/λ > 0`.
    pub fn with_mean(mean: f64) -> Result<Self, StatsError> {
        if !(mean > 0.0) || !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and > 0",
            });
        }
        Self::new(1.0 / mean)
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDistribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p));
        if p >= 1.0 {
            f64::INFINITY
        } else {
            -(1.0 - p).ln() / self.rate
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform on (0, 1]; `1 - U` avoids ln(0).
        let u: f64 = rng.gen::<f64>();
        -(1.0 - u).ln() / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ks_statistic, sample_moments};
    use super::*;

    #[test]
    fn rejects_invalid_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::with_mean(0.0).is_err());
    }

    #[test]
    fn moments_are_correct() {
        let d = Exponential::new(0.25).unwrap();
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert!((d.variance() - 16.0).abs() < 1e-12);
        assert!((d.std_dev() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_and_quantile_are_inverse() {
        let d = Exponential::with_mean(20.0).unwrap();
        for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-12);
        }
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.pdf(-1.0), 0.0);
    }

    #[test]
    fn sample_moments_match_theory() {
        let d = Exponential::new(0.05).unwrap(); // mean 20
        let (m, v) = sample_moments(&d, 200_000, 7);
        assert!((m - d.mean()).abs() / d.mean() < 0.02, "mean {m}");
        assert!((v - d.variance()).abs() / d.variance() < 0.05, "var {v}");
    }

    #[test]
    fn samples_pass_ks_test() {
        let d = Exponential::new(2.0).unwrap();
        let ks = ks_statistic(&d, 20_000, 11);
        // 1% critical value ≈ 1.63 / sqrt(n).
        assert!(ks < 1.63 / (20_000_f64).sqrt() * 1.5, "ks = {ks}");
    }
}
