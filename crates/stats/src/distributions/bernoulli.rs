//! Bernoulli distribution, used for hit/miss bookkeeping and randomized
//! perturbation decisions in the experiment harness.

use crate::error::StatsError;
use rand::Rng;

/// Bernoulli distribution with success probability `p ∈ [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Create a Bernoulli distribution.
    pub fn new(p: f64) -> Result<Self, StatsError> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(StatsError::InvalidProbability(p));
        }
        Ok(Self { p })
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Expected value `p`.
    pub fn mean(&self) -> f64 {
        self.p
    }

    /// Variance `p (1 - p)`.
    pub fn variance(&self) -> f64 {
        self.p * (1.0 - self.p)
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_probability() {
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
        assert!(Bernoulli::new(f64::NAN).is_err());
    }

    #[test]
    fn extreme_probabilities_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let zero = Bernoulli::new(0.0).unwrap();
        let one = Bernoulli::new(1.0).unwrap();
        for _ in 0..100 {
            assert!(!zero.sample(&mut rng));
            assert!(one.sample(&mut rng));
        }
    }

    #[test]
    fn empirical_frequency_matches_p() {
        let b = Bernoulli::new(0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let hits = (0..n).filter(|_| b.sample(&mut rng)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq = {freq}");
        assert!((b.variance() - 0.21).abs() < 1e-12);
    }
}
