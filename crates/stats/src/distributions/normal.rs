//! Normal (Gaussian) distribution, used for noise injection in synthetic
//! traces and as a building block of the log-normal distribution.

use super::ContinuousDistribution;
use crate::error::StatsError;
use crate::special::{normal_cdf, normal_quantile};
use rand::Rng;

/// Normal distribution with mean `μ` and standard deviation `σ > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite",
            });
        }
        if !(std_dev > 0.0) || !std_dev.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "std_dev",
                value: std_dev,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { mean, std_dev })
    }

    /// The standard normal distribution (μ = 0, σ = 1).
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Draw a standard normal sample with the Box–Muller transform.
    pub fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * (1.0 - u1).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl ContinuousDistribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        normal_cdf((x - self.mean) / self.std_dev)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mean + self.std_dev * normal_quantile(p)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Self::sample_standard(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ks_statistic, sample_moments};
    use super::*;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn standard_normal_known_values() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((n.cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-6);
        assert!((n.quantile(0.975) - 1.959_963_984_540_054).abs() < 1e-6);
        assert!((n.pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-9);
    }

    #[test]
    fn affine_parameters_shift_and_scale() {
        let n = Normal::new(10.0, 3.0).unwrap();
        assert!((n.mean() - 10.0).abs() < 1e-12);
        assert!((n.variance() - 9.0).abs() < 1e-12);
        assert!((n.quantile(0.5) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sample_moments_match_theory() {
        let n = Normal::new(-2.0, 0.7).unwrap();
        let (m, v) = sample_moments(&n, 200_000, 41);
        assert!((m - n.mean()).abs() < 0.01);
        assert!((v - n.variance()).abs() / n.variance() < 0.03);
    }

    #[test]
    fn samples_pass_ks_test() {
        let n = Normal::new(5.0, 2.0).unwrap();
        let ks = ks_statistic(&n, 20_000, 43);
        assert!(ks < 1.63 / (20_000_f64).sqrt() * 1.5, "ks = {ks}");
    }
}
