//! Continuous uniform distribution, used for order-statistics placement of
//! NHPP arrivals within buckets and for jitter in synthetic traces.

use super::ContinuousDistribution;
use crate::error::StatsError;
use rand::Rng;

/// Uniform distribution on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Create a uniform distribution on `[low, high)` with `low < high`.
    pub fn new(low: f64, high: f64) -> Result<Self, StatsError> {
        if !low.is_finite() || !high.is_finite() || !(low < high) {
            return Err(StatsError::InvalidParameter {
                name: "low/high",
                value: high - low,
                constraint: "low and high must be finite with low < high",
            });
        }
        Ok(Self { low, high })
    }

    /// The standard uniform distribution on `[0, 1)`.
    pub fn standard() -> Self {
        Self {
            low: 0.0,
            high: 1.0,
        }
    }

    /// Lower bound of the support.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound of the support.
    pub fn high(&self) -> f64 {
        self.high
    }
}

impl ContinuousDistribution for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.low || x >= self.high {
            0.0
        } else {
            1.0 / (self.high - self.low)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.low {
            0.0
        } else if x >= self.high {
            1.0
        } else {
            (x - self.low) / (self.high - self.low)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        self.low + p * (self.high - self.low)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.low + self.high)
    }

    fn variance(&self) -> f64 {
        let w = self.high - self.low;
        w * w / 12.0
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.low + (self.high - self.low) * rng.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::sample_moments;
    use super::*;

    #[test]
    fn rejects_degenerate_intervals() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
        assert!(Uniform::new(f64::NEG_INFINITY, 0.0).is_err());
    }

    #[test]
    fn cdf_is_linear_on_support() {
        let u = Uniform::new(2.0, 6.0).unwrap();
        assert_eq!(u.cdf(1.0), 0.0);
        assert_eq!(u.cdf(7.0), 1.0);
        assert!((u.cdf(4.0) - 0.5).abs() < 1e-12);
        assert!((u.quantile(0.25) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn moments_match_theory() {
        let u = Uniform::new(-1.0, 3.0).unwrap();
        assert!((u.mean() - 1.0).abs() < 1e-12);
        assert!((u.variance() - 16.0 / 12.0).abs() < 1e-12);
        let (m, v) = sample_moments(&u, 100_000, 83);
        assert!((m - 1.0).abs() < 0.02);
        assert!((v - 16.0 / 12.0).abs() < 0.03);
    }
}
