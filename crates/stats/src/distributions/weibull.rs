//! Weibull distribution, an alternative pending-time model with tunable tail
//! behaviour used in the failure-injection and sensitivity experiments.

use super::ContinuousDistribution;
use crate::error::StatsError;
use crate::special::ln_gamma;
use rand::Rng;

/// Weibull distribution with shape `k > 0` and scale `λ > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Create a Weibull distribution.
    pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
        if !(shape > 0.0) || !shape.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "shape",
                value: shape,
                constraint: "must be finite and > 0",
            });
        }
        if !(scale > 0.0) || !scale.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "scale",
                value: scale,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { shape, scale })
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDistribution for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let k = self.shape;
        let l = self.scale;
        let z = x / l;
        (k / l) * z.powf(k - 1.0) * (-z.powf(k)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        if p >= 1.0 {
            f64::INFINITY
        } else {
            self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
        }
    }

    fn mean(&self) -> f64 {
        self.scale * (ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }

    fn variance(&self) -> f64 {
        let g1 = (ln_gamma(1.0 + 1.0 / self.shape)).exp();
        let g2 = (ln_gamma(1.0 + 2.0 / self.shape)).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>();
        self.quantile(u)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ks_statistic, sample_moments};
    use super::*;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn shape_one_reduces_to_exponential() {
        let w = Weibull::new(1.0, 5.0).unwrap();
        for &x in &[0.1, 1.0, 5.0, 20.0] {
            let expected = 1.0 - (-x / 5.0_f64).exp();
            assert!((w.cdf(x) - expected).abs() < 1e-12);
        }
        assert!((w.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let w = Weibull::new(2.3, 7.0).unwrap();
        for &p in &[0.01, 0.3, 0.5, 0.8, 0.99] {
            let x = w.quantile(p);
            assert!((w.cdf(x) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn sample_moments_match_theory() {
        let w = Weibull::new(1.5, 13.0).unwrap();
        let (m, v) = sample_moments(&w, 200_000, 71);
        assert!((m - w.mean()).abs() / w.mean() < 0.02);
        assert!((v - w.variance()).abs() / w.variance() < 0.06);
    }

    #[test]
    fn samples_pass_ks_test() {
        let w = Weibull::new(0.8, 2.0).unwrap();
        let ks = ks_statistic(&w, 20_000, 73);
        assert!(ks < 1.63 / (20_000_f64).sqrt() * 1.5, "ks = {ks}");
    }
}
