//! Log-normal distribution, used to model heavy-tailed processing and
//! instance pending (startup) times in synthetic workloads.

use super::{ContinuousDistribution, Normal};
use crate::error::StatsError;
use rand::Rng;

/// Log-normal distribution: `exp(N(μ, σ²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Create a log-normal distribution from the parameters of the underlying
    /// normal distribution (`mu`, `sigma`).
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        Ok(Self {
            normal: Normal::new(mu, sigma)?,
        })
    }

    /// Create a log-normal distribution with the requested mean and standard
    /// deviation of the log-normal variable itself (moment matching).
    pub fn from_mean_std(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
        if !(mean > 0.0) || !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and > 0",
            });
        }
        if !(std_dev > 0.0) || !std_dev.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "std_dev",
                value: std_dev,
                constraint: "must be finite and > 0",
            });
        }
        let cv2 = (std_dev / mean) * (std_dev / mean);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        Self::new(mu, sigma2.sqrt())
    }

    /// Location parameter `μ` of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.normal.mean()
    }

    /// Scale parameter `σ` of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.normal.std_dev()
    }
}

impl ContinuousDistribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.normal.pdf(x.ln()) / x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.normal.cdf(x.ln())
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        self.normal.quantile(p).exp()
    }

    fn mean(&self) -> f64 {
        let s2 = self.sigma() * self.sigma();
        (self.mu() + 0.5 * s2).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma() * self.sigma();
        (s2.exp() - 1.0) * (2.0 * self.mu() + s2).exp()
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_util::{ks_statistic, sample_moments};
    use super::*;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::from_mean_std(-1.0, 1.0).is_err());
        assert!(LogNormal::from_mean_std(1.0, 0.0).is_err());
    }

    #[test]
    fn moment_matching_constructor_matches_requested_moments() {
        let d = LogNormal::from_mean_std(20.0, 8.0).unwrap();
        assert!((d.mean() - 20.0).abs() < 1e-9);
        assert!((d.variance() - 64.0).abs() < 1e-8);
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-8);
        }
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.pdf(-0.5), 0.0);
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(2.0, 0.3).unwrap();
        assert!((d.quantile(0.5) - 2.0_f64.exp()).abs() < 1e-6);
    }

    #[test]
    fn sample_moments_match_theory() {
        let d = LogNormal::from_mean_std(13.0, 4.0).unwrap();
        let (m, v) = sample_moments(&d, 300_000, 61);
        assert!((m - 13.0).abs() / 13.0 < 0.02, "mean {m}");
        assert!((v - 16.0).abs() / 16.0 < 0.08, "var {v}");
    }

    #[test]
    fn samples_pass_ks_test() {
        let d = LogNormal::new(0.5, 0.75).unwrap();
        let ks = ks_statistic(&d, 20_000, 67);
        assert!(ks < 1.63 / (20_000_f64).sqrt() * 1.5, "ks = {ks}");
    }
}
