//! Probability and statistics substrate for the RobustScaler reproduction.
//!
//! The crate provides, from scratch, everything the higher layers need:
//!
//! * special functions (`ln Γ`, regularized incomplete gamma, `erf`) used by
//!   the Gamma quantiles of Algorithm 4's κ threshold (paper eq. 8),
//! * parametric distributions (exponential, gamma, Poisson, normal,
//!   log-normal, Weibull, uniform) with sampling, CDFs and quantiles,
//! * empirical statistics (quantiles, ECDF, descriptive summaries,
//!   autocorrelation) used by the evaluation harness, and
//! * small Monte Carlo helpers used by the decision optimizer.
//!
//! Everything is deterministic given an RNG seed so that experiments are
//! reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod descriptive;
pub mod distributions;
pub mod ecdf;
pub mod error;
pub mod montecarlo;
pub mod quantile;
pub mod special;

pub use descriptive::{autocorrelation, mad, mean, median, std_dev, variance, Summary};
pub use distributions::{
    Bernoulli, ContinuousDistribution, DiscreteDistribution, Exponential, Gamma, LogNormal, Normal,
    Poisson, Uniform, Weibull,
};
pub use ecdf::Ecdf;
pub use error::StatsError;
pub use montecarlo::{monte_carlo_mean, MonteCarloEstimate};
pub use quantile::{
    empirical_quantile, empirical_quantile_sorted, empirical_quantile_unstable, quantiles,
};
