//! Empirical cumulative distribution function.

use crate::error::StatsError;

/// Empirical CDF built from a sample; evaluation is `O(log n)` per query.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build the ECDF of a sample (NaNs are rejected by a debug assertion).
    pub fn new(sample: &[f64]) -> Result<Self, StatsError> {
        if sample.is_empty() {
            return Err(StatsError::EmptySample);
        }
        debug_assert!(sample.iter().all(|x| !x.is_nan()), "NaN in ECDF sample");
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Ok(Self { sorted })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no observations (never true for a constructed
    /// value, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F̂(x)` — the fraction of observations `≤ x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point returns the count of elements <= x when we ask for
        // the first index where the element is > x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile (inverse ECDF) at level `p ∈ [0, 1]`.
    pub fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        crate::quantile::empirical_quantile_sorted(&self.sorted, p)
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Borrow the sorted observations.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_sample() {
        assert!(Ecdf::new(&[]).is_err());
    }

    #[test]
    fn step_function_values() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(2.5), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 3.0);
    }

    #[test]
    fn eval_is_monotone_and_bounded() {
        let e = Ecdf::new(&[5.0, -1.0, 3.0, 3.0, 8.0, 0.0]).unwrap();
        let mut prev = 0.0;
        for i in -20..=20 {
            let x = i as f64 / 2.0;
            let f = e.eval(x);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn quantile_inverts_eval_on_observations() {
        let xs = [2.0, 4.0, 6.0, 8.0, 10.0];
        let e = Ecdf::new(&xs).unwrap();
        assert_eq!(e.quantile(0.0).unwrap(), 2.0);
        assert_eq!(e.quantile(1.0).unwrap(), 10.0);
        assert!((e.quantile(0.5).unwrap() - 6.0).abs() < 1e-12);
    }
}
