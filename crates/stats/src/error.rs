//! Error type shared by the statistics substrate.

use std::fmt;

/// Errors produced by distribution constructors and estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human readable constraint, e.g. "must be > 0".
        constraint: &'static str,
    },
    /// An empirical estimator was handed an empty sample.
    EmptySample,
    /// A probability level was outside `[0, 1]`.
    InvalidProbability(f64),
    /// A numerical routine failed to converge.
    NonConvergence {
        /// Which routine failed.
        routine: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "invalid parameter {name} = {value}: {constraint}"),
            StatsError::EmptySample => write!(f, "empty sample"),
            StatsError::InvalidProbability(p) => {
                write!(f, "probability {p} outside the unit interval")
            }
            StatsError::NonConvergence {
                routine,
                iterations,
            } => write!(
                f,
                "{routine} failed to converge after {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StatsError::InvalidParameter {
            name: "rate",
            value: -1.0,
            constraint: "must be > 0",
        };
        assert!(e.to_string().contains("rate"));
        assert!(e.to_string().contains("must be > 0"));

        assert_eq!(StatsError::EmptySample.to_string(), "empty sample");
        assert!(StatsError::InvalidProbability(1.5)
            .to_string()
            .contains("1.5"));
        let n = StatsError::NonConvergence {
            routine: "gamma_quantile",
            iterations: 200,
        };
        assert!(n.to_string().contains("gamma_quantile"));
    }
}
