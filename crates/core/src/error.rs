//! Error type for the RobustScaler pipeline.

use robustscaler_nhpp::NhppError;
use robustscaler_scaling::ScalingError;
use robustscaler_simulator::SimulatorError;
use robustscaler_timeseries::TimeSeriesError;
use std::fmt;

/// Errors produced by the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration value was invalid.
    InvalidConfig(&'static str),
    /// The time-series layer failed.
    TimeSeries(TimeSeriesError),
    /// The NHPP layer failed.
    Nhpp(NhppError),
    /// The scaling decision layer failed.
    Scaling(ScalingError),
    /// The simulator failed.
    Simulator(SimulatorError),
    /// The training trace is unusable (too few queries, zero duration, ...).
    InvalidTrainingData(&'static str),
    /// A decision rule of one kind was required where another was
    /// configured (e.g. serving code expecting the HP rule's α from an
    /// RT-configured tenant). Carrying this as an error instead of
    /// panicking keeps a misconfigured tenant from aborting a serving
    /// process that hosts hundreds of others.
    RuleMismatch {
        /// The rule kind the caller required.
        expected: &'static str,
        /// The rule kind actually configured.
        got: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::TimeSeries(e) => write!(f, "time-series error: {e}"),
            CoreError::Nhpp(e) => write!(f, "NHPP error: {e}"),
            CoreError::Scaling(e) => write!(f, "scaling error: {e}"),
            CoreError::Simulator(e) => write!(f, "simulator error: {e}"),
            CoreError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            CoreError::RuleMismatch { expected, got } => {
                write!(f, "decision rule mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<TimeSeriesError> for CoreError {
    fn from(e: TimeSeriesError) -> Self {
        CoreError::TimeSeries(e)
    }
}

impl From<NhppError> for CoreError {
    fn from(e: NhppError) -> Self {
        CoreError::Nhpp(e)
    }
}

impl From<ScalingError> for CoreError {
    fn from(e: ScalingError) -> Self {
        CoreError::Scaling(e)
    }
}

impl From<SimulatorError> for CoreError {
    fn from(e: SimulatorError) -> Self {
        CoreError::Simulator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = TimeSeriesError::AllMissing.into();
        assert!(e.to_string().contains("time-series"));
        let e: CoreError = NhppError::InvalidParameter("x").into();
        assert!(e.to_string().contains("NHPP"));
        let e: CoreError = ScalingError::InvalidParameter("x").into();
        assert!(e.to_string().contains("scaling"));
        let e: CoreError = SimulatorError::EmptyMetrics.into();
        assert!(e.to_string().contains("simulator"));
        assert!(CoreError::InvalidConfig("bucket")
            .to_string()
            .contains("bucket"));
        assert!(CoreError::InvalidTrainingData("empty")
            .to_string()
            .contains("empty"));
        let mismatch = CoreError::RuleMismatch {
            expected: "hitting-probability",
            got: "response-time",
        };
        assert!(mismatch.to_string().contains("hitting-probability"));
        assert!(mismatch.to_string().contains("response-time"));
    }
}
