//! Configuration of the end-to-end RobustScaler pipeline.

use crate::error::CoreError;
use crate::variants::RobustScalerVariant;
use robustscaler_nhpp::{AdmmConfig, ForecastConfig};
use robustscaler_scaling::PendingTimeModel;
use robustscaler_timeseries::PeriodicityConfig;
use serde::{Deserialize, Serialize};

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RobustScalerConfig {
    /// Bucket width Δt (seconds) used to aggregate arrivals into the count
    /// series the NHPP is trained on. The paper uses 60 s.
    pub bucket_width: f64,
    /// Time-aggregation factor (in buckets) applied before periodicity
    /// detection, reducing random effects as described in §IV.
    pub periodicity_aggregation: usize,
    /// Periodicity detector settings.
    pub periodicity: PeriodicityConfig,
    /// ADMM trainer settings (β₁, β₂, ρ, iteration budget).
    pub admm: AdmmConfig,
    /// Intensity forecasting settings.
    pub forecast: ForecastConfig,
    /// Which constrained variant to run.
    pub variant: RobustScalerVariant,
    /// Pending (startup) time model used when planning.
    pub pending: PendingTimeModel,
    /// Mean processing time `µ_s` (seconds), used to translate RT/cost
    /// targets into waiting/idle budgets.
    pub mean_processing: f64,
    /// Planning interval Δ in seconds (the paper uses 1 s; larger values
    /// trade cost for fewer planning rounds, Fig. 10 d).
    pub planning_interval: f64,
    /// Monte Carlo sample count R for the decision rules.
    pub monte_carlo_samples: usize,
    /// How far ahead (seconds) one forecast is reused before being refreshed.
    pub forecast_horizon: f64,
    /// Hard cap on creations scheduled per planning round.
    pub max_decisions_per_round: usize,
    /// RNG seed for the Monte Carlo machinery inside the policy.
    pub seed: u64,
    /// Charge the wall-clock time spent computing decisions against the
    /// schedule (the "real environment" mode of Table IV).
    pub charge_compute_latency: bool,
}

impl RobustScalerConfig {
    /// A reasonable default configuration for a given variant: Δt = 60 s,
    /// pending time 13 s, planning every 30 s with 300 Monte Carlo samples.
    pub fn for_variant(variant: RobustScalerVariant) -> Self {
        Self {
            bucket_width: 60.0,
            periodicity_aggregation: 5,
            periodicity: PeriodicityConfig::default(),
            admm: AdmmConfig::default(),
            forecast: ForecastConfig::default(),
            variant,
            pending: PendingTimeModel::Deterministic(13.0),
            mean_processing: 20.0,
            planning_interval: 30.0,
            monte_carlo_samples: 300,
            forecast_horizon: 3_600.0,
            max_decisions_per_round: 2_000,
            seed: 7,
            charge_compute_latency: false,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.bucket_width > 0.0) {
            return Err(CoreError::InvalidConfig("bucket_width must be > 0"));
        }
        if self.periodicity_aggregation == 0 {
            return Err(CoreError::InvalidConfig(
                "periodicity_aggregation must be >= 1",
            ));
        }
        if !(self.mean_processing >= 0.0) || !self.mean_processing.is_finite() {
            return Err(CoreError::InvalidConfig(
                "mean_processing must be finite and >= 0",
            ));
        }
        if !(self.planning_interval > 0.0) {
            return Err(CoreError::InvalidConfig("planning_interval must be > 0"));
        }
        if self.monte_carlo_samples == 0 {
            return Err(CoreError::InvalidConfig("monte_carlo_samples must be >= 1"));
        }
        if !(self.forecast_horizon > self.planning_interval) {
            return Err(CoreError::InvalidConfig(
                "forecast_horizon must exceed the planning interval",
            ));
        }
        if self.max_decisions_per_round == 0 {
            return Err(CoreError::InvalidConfig(
                "max_decisions_per_round must be >= 1",
            ));
        }
        self.pending
            .validate()
            .map_err(|_| CoreError::InvalidConfig("invalid pending-time model"))?;
        // Validate the variant translation once with the configured means.
        self.variant
            .to_rule(self.mean_processing, self.pending.mean())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_for_all_variants() {
        for variant in [
            RobustScalerVariant::HittingProbability { target: 0.9 },
            RobustScalerVariant::ResponseTime { target: 25.0 },
            RobustScalerVariant::CostBudget { budget: 60.0 },
        ] {
            RobustScalerConfig::for_variant(variant).validate().unwrap();
        }
    }

    #[test]
    fn validation_catches_each_bad_field() {
        let base = RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability {
            target: 0.9,
        });
        let mut c = base;
        c.bucket_width = 0.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.periodicity_aggregation = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.mean_processing = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = base;
        c.planning_interval = 0.0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.monte_carlo_samples = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.forecast_horizon = c.planning_interval;
        assert!(c.validate().is_err());
        let mut c = base;
        c.max_decisions_per_round = 0;
        assert!(c.validate().is_err());
        let mut c = base;
        c.variant = RobustScalerVariant::HittingProbability { target: 2.0 };
        assert!(c.validate().is_err());
    }
}
