//! Evaluation helpers shared by the integration tests, the examples and the
//! experiment harness: run a policy over a test trace and report the
//! paper's metrics (hit rate, rt_avg, total cost, relative cost).

use crate::error::CoreError;
use robustscaler_simulator::{
    Autoscaler, Reactive, SimulationConfig, SimulationMetrics, Simulator, Trace,
};
use serde::{Deserialize, Serialize};

/// The paper's headline metrics for one (policy, trace) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationResult {
    /// Name of the evaluated policy.
    pub policy: String,
    /// Fraction of queries that found a ready instance.
    pub hit_rate: f64,
    /// Average response time in seconds.
    pub rt_avg: f64,
    /// Total cost (sum of instance lifecycle lengths, seconds).
    pub total_cost: f64,
    /// Cost of the purely reactive strategy on the same trace and seed.
    pub reactive_cost: f64,
    /// `total_cost / reactive_cost` — the paper's `relative_cost`.
    pub relative_cost: f64,
    /// Number of queries replayed.
    pub queries: usize,
}

/// `total / reactive`, guarding against a zero denominator.
pub fn relative_cost(total: f64, reactive: f64) -> f64 {
    if reactive <= 0.0 {
        if total <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        total / reactive
    }
}

/// Run `policy` on `trace` and compute the headline metrics, including the
/// relative cost against the reactive baseline simulated with the same
/// configuration.
pub fn evaluate_policy<A: Autoscaler>(
    trace: &Trace,
    policy: &mut A,
    sim_config: SimulationConfig,
) -> Result<(EvaluationResult, SimulationMetrics), CoreError> {
    let simulator = Simulator::new(sim_config)?;
    let metrics = simulator.run(trace, policy)?;
    let mut reactive = Reactive::new();
    let reactive_metrics = simulator.run(trace, &mut reactive)?;
    let result = EvaluationResult {
        policy: policy.name().to_string(),
        hit_rate: metrics.hit_rate(),
        rt_avg: metrics.rt_avg(),
        total_cost: metrics.total_cost(),
        reactive_cost: reactive_metrics.total_cost(),
        relative_cost: relative_cost(metrics.total_cost(), reactive_metrics.total_cost()),
        queries: metrics.query_count(),
    };
    Ok((result, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustscaler_simulator::{BackupPool, PendingTimeDistribution, Query};

    fn trace() -> Trace {
        Trace::new(
            "t",
            (0..200)
                .map(|i| Query {
                    arrival: i as f64 * 40.0,
                    processing: 5.0,
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn relative_cost_handles_degenerate_denominators() {
        assert_eq!(relative_cost(10.0, 5.0), 2.0);
        assert_eq!(relative_cost(0.0, 0.0), 1.0);
        assert!(relative_cost(3.0, 0.0).is_infinite());
    }

    #[test]
    fn reactive_policy_has_relative_cost_one() {
        let mut policy = Reactive::new();
        let (result, metrics) = evaluate_policy(
            &trace(),
            &mut policy,
            SimulationConfig {
                pending: PendingTimeDistribution::Deterministic(13.0),
                seed: 1,
                recent_history_window: 600.0,
            },
        )
        .unwrap();
        assert!((result.relative_cost - 1.0).abs() < 1e-9);
        assert_eq!(result.queries, 200);
        assert_eq!(result.policy, "reactive");
        assert_eq!(result.hit_rate, 0.0);
        assert_eq!(metrics.query_count(), 200);
    }

    #[test]
    fn backup_pool_trades_cost_for_hits() {
        let sim_config = SimulationConfig {
            pending: PendingTimeDistribution::Deterministic(13.0),
            seed: 2,
            recent_history_window: 600.0,
        };
        let mut pool = BackupPool::new(2);
        let (result, _) = evaluate_policy(&trace(), &mut pool, sim_config).unwrap();
        assert!(result.relative_cost > 1.0);
        assert!(result.hit_rate > 0.9);
        assert!(result.rt_avg < 18.0);
    }
}
