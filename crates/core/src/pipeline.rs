//! The training half of the pipeline: modules 1–3 of Fig. 2.

use crate::config::RobustScalerConfig;
use crate::error::CoreError;
use crate::policy::RobustScalerPolicy;
use robustscaler_nhpp::{Forecaster, NhppModel};
use robustscaler_simulator::Trace;
use robustscaler_timeseries::{detect_period, refine_period, PeriodicityResult, TimeSeries};

/// Output of the training phase, ready to drive the scaling plan module.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// The fitted NHPP.
    pub model: NhppModel,
    /// The detected dominant periodicity, if any. `period` is expressed in
    /// Δt buckets and refined at full resolution; `acf`/`harmonic_support`
    /// are the detection evidence from the aggregated series.
    pub periodicity: Option<PeriodicityResult>,
    /// The aggregated count series the model was trained on.
    pub counts: TimeSeries,
}

impl TrainedModel {
    /// Build the forecaster for this model.
    pub fn forecaster(&self, config: &RobustScalerConfig) -> Result<Forecaster, CoreError> {
        Forecaster::new(self.model.clone(), config.forecast).map_err(CoreError::from)
    }
}

/// The RobustScaler training pipeline.
#[derive(Debug, Clone)]
pub struct RobustScalerPipeline {
    config: RobustScalerConfig,
}

impl RobustScalerPipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: RobustScalerConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &RobustScalerConfig {
        &self.config
    }

    /// Run modules 1–3 on a training trace: aggregate, detect periodicity,
    /// fit the regularized NHPP.
    pub fn train(&self, training: &Trace) -> Result<TrainedModel, CoreError> {
        if training.len() < 10 {
            return Err(CoreError::InvalidTrainingData(
                "training trace needs at least 10 queries",
            ));
        }
        if training.duration() < 10.0 * self.config.bucket_width {
            return Err(CoreError::InvalidTrainingData(
                "training trace must span at least 10 buckets",
            ));
        }

        // Module 1 input: per-bucket counts over the training window.
        let start = training.start();
        let end = training.end() + self.config.bucket_width;
        let counts = TimeSeries::from_event_times(
            &training.arrival_times(),
            start,
            end,
            self.config.bucket_width,
        )?;
        self.train_on_counts(counts)
    }

    /// Run modules 1–3 on an already aggregated count series.
    ///
    /// This is the entry point for the online serving layer, whose ring
    /// buffer maintains the count series incrementally and refits from a
    /// snapshot instead of re-aggregating a raw trace on every refit. The
    /// series' bucket width must match the configured `bucket_width`.
    /// Takes the series by value — it is moved into the returned
    /// [`TrainedModel`] without a copy.
    pub fn train_on_counts(&self, counts: TimeSeries) -> Result<TrainedModel, CoreError> {
        if (counts.bucket_width() - self.config.bucket_width).abs() > 1e-9 {
            return Err(CoreError::InvalidTrainingData(
                "count series bucket width differs from the configured bucket_width",
            ));
        }
        if counts.len() < 10 {
            return Err(CoreError::InvalidTrainingData(
                "count series needs at least 10 buckets",
            ));
        }

        // Module 1: periodicity detection on the time-aggregated QPS series.
        let aggregated = counts.aggregate_mean(self.config.periodicity_aggregation)?;
        let periodicity = match detect_period(&aggregated, &self.config.periodicity) {
            Ok(result) => result.map(|r| {
                // Convert the period back to Δt buckets. The aggregated ACF
                // peak is quantized to the aggregation grid and can drift a
                // few aggregated lags under noise or secondary (weekly)
                // structure, which would dephase the forecast over the many
                // cycles it extrapolates — so re-estimate the period at full
                // resolution within a ±5% window.
                let coarse = r.period * self.config.periodicity_aggregation;
                let slack = (coarse / 20).max(self.config.periodicity_aggregation);
                let period = refine_period(&counts, coarse, slack, &self.config.periodicity)
                    .unwrap_or(coarse);
                // `acf`/`harmonic_support` remain the aggregated-series
                // detection evidence; only `period` is the refined
                // full-resolution value.
                PeriodicityResult { period, ..r }
            }),
            // Short traces simply skip the periodic regularizer.
            Err(_) => None,
        };
        // A period is only usable if at least two full cycles are observed.
        let usable_period = periodicity
            .as_ref()
            .map(|r| r.period)
            .filter(|&p| p >= 2 && counts.len() >= 2 * p);

        // Module 2: fit the regularized NHPP with ADMM.
        let model = NhppModel::fit(&counts, usable_period, self.config.admm)?;

        Ok(TrainedModel {
            model,
            periodicity,
            counts,
        })
    }

    /// Train and wrap the result into a simulator-ready policy
    /// (modules 1–4).
    pub fn build_policy(&self, training: &Trace) -> Result<RobustScalerPolicy, CoreError> {
        let trained = self.train(training)?;
        RobustScalerPolicy::new(self.config, trained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::RobustScalerVariant;
    use robustscaler_nhpp::Intensity;
    use robustscaler_simulator::Query;
    use robustscaler_traces::{google_like, TraceConfig};

    fn config() -> RobustScalerConfig {
        let mut c = RobustScalerConfig::for_variant(RobustScalerVariant::HittingProbability {
            target: 0.9,
        });
        // Keep the unit tests fast.
        c.admm.max_iterations = 60;
        c.monte_carlo_samples = 100;
        c
    }

    #[test]
    fn rejects_tiny_training_traces() {
        let pipeline = RobustScalerPipeline::new(config()).unwrap();
        let tiny = Trace::new(
            "tiny",
            (0..5)
                .map(|i| Query {
                    arrival: i as f64,
                    processing: 1.0,
                })
                .collect(),
        )
        .unwrap();
        assert!(matches!(
            pipeline.train(&tiny),
            Err(CoreError::InvalidTrainingData(_))
        ));
    }

    #[test]
    fn trains_on_a_periodic_trace_and_detects_the_period() {
        // Four days of the Google-like diurnal workload, so the daily period
        // sits comfortably inside the detector's lag window.
        let trace = google_like(&TraceConfig {
            duration: 4.0 * 86_400.0,
            traffic_scale: 0.3,
            ..TraceConfig::google_default()
        });
        let pipeline = RobustScalerPipeline::new(config()).unwrap();
        let trained = pipeline.train(&trace).unwrap();
        // The fitted intensity must roughly integrate to the number of
        // observed queries.
        let intensity = trained.model.historical_intensity();
        let expected = intensity.integrated(trace.start(), trace.end());
        let observed = trace.len() as f64;
        assert!(
            (expected - observed).abs() / observed < 0.2,
            "expected {expected} vs observed {observed}"
        );
        // A daily period (1440 buckets of 60 s) should be detected; allow a
        // few percent of slack because the ACF peak of a noisy, spiky series
        // can land a handful of aggregated buckets off the exact day.
        let period = trained.periodicity.expect("period expected").period;
        assert!(
            (period as i64 - 1_440).abs() <= 72,
            "period {period} buckets"
        );
    }

    #[test]
    fn aperiodic_traces_train_without_a_period() {
        // A short homogeneous burst of traffic — no meaningful periodicity.
        let queries: Vec<Query> = (0..400)
            .map(|i| Query {
                arrival: i as f64 * 7.3,
                processing: 5.0,
            })
            .collect();
        let trace = Trace::new("flat", queries).unwrap();
        let pipeline = RobustScalerPipeline::new(config()).unwrap();
        let trained = pipeline.train(&trace).unwrap();
        assert!(trained.model.period().is_none());
        // The fitted rate should hover around 1/7.3 ≈ 0.137 QPS.
        let mean_rate: f64 =
            trained.model.rates().iter().sum::<f64>() / trained.model.rates().len() as f64;
        assert!(
            (mean_rate - 1.0 / 7.3).abs() / (1.0 / 7.3) < 0.25,
            "mean rate {mean_rate}"
        );
    }

    #[test]
    fn build_policy_produces_a_named_policy() {
        let trace = google_like(&TraceConfig {
            duration: 43_200.0,
            traffic_scale: 0.5,
            ..TraceConfig::google_default()
        });
        let pipeline = RobustScalerPipeline::new(config()).unwrap();
        let policy = pipeline.build_policy(&trace).unwrap();
        use robustscaler_simulator::Autoscaler;
        assert_eq!(policy.name(), "robustscaler-hp");
    }
}
