//! The RobustScaler autoscaling policy (module 4 wired to the simulator).
//!
//! At every planning tick the policy refreshes its intensity forecast if
//! needed, asks the sequential planner which instance creations must start
//! within the next planning window, and emits the corresponding scheduling
//! commands. A cheap sufficiency check skips the Monte Carlo work entirely
//! when the instances already on the way clearly cover everything the
//! forecast expects in the window — this is what keeps planning every few
//! seconds affordable on week-long traces.

use crate::config::RobustScalerConfig;
use crate::error::CoreError;
use crate::pipeline::TrainedModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use robustscaler_nhpp::{Forecaster, Intensity, PiecewiseConstantIntensity};
use robustscaler_scaling::{DecisionConfig, PlannerConfig, PlannerState, SequentialPlanner};
use robustscaler_simulator::{Autoscaler, ScalingCommand, SystemState};
use std::time::Instant;

/// The RobustScaler policy, generic over the HP/RT/cost variant through the
/// configured decision rule.
pub struct RobustScalerPolicy {
    config: RobustScalerConfig,
    forecaster: Forecaster,
    planner: SequentialPlanner,
    rng: StdRng,
    cached_forecast: Option<PiecewiseConstantIntensity>,
    cached_until: f64,
    /// Cumulative seconds spent computing decisions (reported by the
    /// real-environment experiment).
    compute_seconds: f64,
    planning_rounds: usize,
}

impl RobustScalerPolicy {
    /// Build a policy from a trained model.
    pub fn new(config: RobustScalerConfig, trained: TrainedModel) -> Result<Self, CoreError> {
        config.validate()?;
        let forecaster = trained.forecaster(&config)?;
        let rule = config
            .variant
            .to_rule(config.mean_processing, config.pending.mean())?;
        let planner = SequentialPlanner::new(PlannerConfig {
            decision: DecisionConfig {
                rule,
                pending: config.pending,
                monte_carlo_samples: config.monte_carlo_samples,
            },
            planning_interval: config.planning_interval,
            max_decisions_per_round: config.max_decisions_per_round,
        })?;
        Ok(Self {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            forecaster,
            planner,
            cached_forecast: None,
            cached_until: f64::NEG_INFINITY,
            compute_seconds: 0.0,
            planning_rounds: 0,
        })
    }

    /// Total wall-clock seconds spent inside planning so far.
    pub fn compute_seconds(&self) -> f64 {
        self.compute_seconds
    }

    /// Number of planning rounds that actually ran the optimizer.
    pub fn planning_rounds(&self) -> usize {
        self.planning_rounds
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &RobustScalerConfig {
        &self.config
    }

    fn refresh_forecast(&mut self, now: f64) -> Result<(), CoreError> {
        let needs_refresh = match &self.cached_forecast {
            None => true,
            Some(_) => now + self.config.planning_interval > self.cached_until,
        };
        if needs_refresh {
            let from = now.max(self.forecaster.model().start());
            let forecast = self
                .forecaster
                .forecast(from, self.config.forecast_horizon)?;
            self.cached_until = from + self.config.forecast_horizon;
            self.cached_forecast = Some(forecast);
        }
        Ok(())
    }

    /// Cheap test: are the instances already on the way clearly enough for
    /// everything the forecast expects before the end of the window (plus the
    /// startup lead time)? If so, skip the Monte Carlo planning entirely.
    fn clearly_covered(&self, state: &SystemState) -> bool {
        let Some(forecast) = &self.cached_forecast else {
            return false;
        };
        let lead = self.config.pending.mean().max(1.0);
        let horizon_end = state.now + self.config.planning_interval + 2.0 * lead;
        let expected = forecast.integrated(state.now, horizon_end);
        let slack = 4.0 * (expected + 1.0).sqrt() + 2.0;
        (state.covered() as f64) >= expected + slack
    }
}

impl Autoscaler for RobustScalerPolicy {
    fn name(&self) -> &str {
        self.config.variant.name()
    }

    fn planning_interval(&self) -> Option<f64> {
        Some(self.config.planning_interval)
    }

    fn on_planning_tick(&mut self, state: &SystemState) -> Vec<ScalingCommand> {
        let started = Instant::now();
        if self.refresh_forecast(state.now).is_err() {
            return Vec::new();
        }
        if self.clearly_covered(state) {
            return Vec::new();
        }
        let forecast = self
            .cached_forecast
            .as_ref()
            .expect("refresh_forecast populated the cache");
        let round = match self.planner.plan_window(
            forecast,
            state.now,
            PlannerState {
                covered: state.covered(),
            },
            &mut self.rng,
        ) {
            Ok(round) => round,
            Err(_) => return Vec::new(),
        };
        self.planning_rounds += 1;
        let elapsed = started.elapsed().as_secs_f64();
        self.compute_seconds += elapsed;
        // In the real-environment mode the decisions only become actionable
        // after they have been computed.
        let latency = if self.config.charge_compute_latency {
            elapsed
        } else {
            0.0
        };
        round
            .decisions
            .iter()
            .map(|d| ScalingCommand::CreateAt(d.creation_time + latency))
            .collect()
    }

    fn cancel_scheduled_on_cold_start(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RobustScalerPipeline;
    use crate::variants::RobustScalerVariant;
    use robustscaler_simulator::{
        PendingTimeDistribution, Query, SimulationConfig, Simulator, Trace,
    };

    /// A Poisson-ish uniform trace: one query every `gap` seconds.
    fn uniform_trace(duration: f64, gap: f64, processing: f64) -> Trace {
        let n = (duration / gap) as usize;
        Trace::new(
            "uniform",
            (0..n)
                .map(|i| Query {
                    arrival: i as f64 * gap,
                    processing,
                })
                .collect(),
        )
        .unwrap()
    }

    fn fast_config(variant: RobustScalerVariant) -> RobustScalerConfig {
        let mut c = RobustScalerConfig::for_variant(variant);
        c.admm.max_iterations = 40;
        c.monte_carlo_samples = 120;
        c.planning_interval = 20.0;
        c.mean_processing = 5.0;
        c.seed = 3;
        c
    }

    #[test]
    fn hp_policy_reaches_a_high_hit_rate_on_steady_traffic() {
        // Train and test on steady traffic: 1 query / 30 s, processing 5 s.
        let trace = uniform_trace(6.0 * 3_600.0, 30.0, 5.0);
        let (train, test) = trace.split_at(4.0 * 3_600.0).unwrap();
        let config = fast_config(RobustScalerVariant::HittingProbability { target: 0.9 });
        let pipeline = RobustScalerPipeline::new(config).unwrap();
        let mut policy = pipeline.build_policy(&train).unwrap();

        let sim = Simulator::new(SimulationConfig {
            pending: PendingTimeDistribution::Deterministic(13.0),
            seed: 5,
            recent_history_window: 600.0,
        })
        .unwrap();
        let metrics = sim.run(&test, &mut policy).unwrap();
        assert!(
            metrics.hit_rate() > 0.8,
            "hit rate {} too low",
            metrics.hit_rate()
        );
        // Proactive creations mean the average response time is close to the
        // pure processing time, far below the cold-start 18 s.
        assert!(metrics.rt_avg() < 10.0, "rt_avg {}", metrics.rt_avg());
        assert!(policy.planning_rounds() > 0);
        assert!(policy.compute_seconds() >= 0.0);
    }

    #[test]
    fn cost_variant_spends_less_than_hp_variant() {
        let trace = uniform_trace(4.0 * 3_600.0, 45.0, 5.0);
        let (train, test) = trace.split_at(3.0 * 3_600.0).unwrap();
        let sim = Simulator::new(SimulationConfig {
            pending: PendingTimeDistribution::Deterministic(13.0),
            seed: 6,
            recent_history_window: 600.0,
        })
        .unwrap();

        let hp_config = fast_config(RobustScalerVariant::HittingProbability { target: 0.95 });
        let mut hp_policy = RobustScalerPipeline::new(hp_config)
            .unwrap()
            .build_policy(&train)
            .unwrap();
        let hp_metrics = sim.run(&test, &mut hp_policy).unwrap();

        // A tight per-instance budget (just the fixed pending + processing
        // cost) forbids almost any idling.
        let cost_config = fast_config(RobustScalerVariant::CostBudget { budget: 19.0 });
        let mut cost_policy = RobustScalerPipeline::new(cost_config)
            .unwrap()
            .build_policy(&train)
            .unwrap();
        let cost_metrics = sim.run(&test, &mut cost_policy).unwrap();

        assert!(
            cost_metrics.total_cost() < hp_metrics.total_cost(),
            "cost-variant {} should be cheaper than HP {}",
            cost_metrics.total_cost(),
            hp_metrics.total_cost()
        );
        assert!(hp_metrics.hit_rate() > cost_metrics.hit_rate());
    }

    #[test]
    fn real_environment_mode_tracks_compute_latency() {
        let trace = uniform_trace(2.0 * 3_600.0, 60.0, 5.0);
        let (train, test) = trace.split_at(3_600.0).unwrap();
        let mut config = fast_config(RobustScalerVariant::HittingProbability { target: 0.9 });
        config.charge_compute_latency = true;
        let mut policy = RobustScalerPipeline::new(config)
            .unwrap()
            .build_policy(&train)
            .unwrap();
        let sim = Simulator::new(SimulationConfig::default()).unwrap();
        let metrics = sim.run(&test, &mut policy).unwrap();
        // Decisions are computed in well under a millisecond, so charging the
        // latency must not collapse the hit rate (Table IV's conclusion).
        assert!(metrics.hit_rate() > 0.5, "hit rate {}", metrics.hit_rate());
        assert!(policy.compute_seconds() > 0.0);
    }
}
