//! RobustScaler — the end-to-end proactive autoscaling pipeline
//! (paper Section IV, Fig. 2).
//!
//! The pipeline wires the four modules together:
//!
//! 1. **Periodicity detection** (`robustscaler-timeseries`) on the
//!    aggregated QPS series of the training trace,
//! 2. **Historical query arrival modeling** (`robustscaler-nhpp`): the
//!    periodicity-regularized NHPP fitted with ADMM,
//! 3. **Query arrival prediction**: periodic extrapolation of the fitted
//!    intensity, and
//! 4. **Scaling plan** (`robustscaler-scaling`): HP/RT/cost-constrained
//!    decisions executed by the sequential planner.
//!
//! The result is an [`Autoscaler`](robustscaler_simulator::Autoscaler)
//! implementation ([`policy::RobustScalerPolicy`]) that can be replayed
//! against any trace by the simulator, plus evaluation helpers used by the
//! experiment harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod error;
pub mod evaluation;
pub mod pipeline;
pub mod policy;
pub mod variants;

pub use config::RobustScalerConfig;
pub use error::CoreError;
pub use evaluation::{evaluate_policy, relative_cost, EvaluationResult};
pub use pipeline::{RobustScalerPipeline, TrainedModel};
pub use policy::RobustScalerPolicy;
pub use variants::{cost_target_idle, hp_alpha, rt_target_waiting, rule_kind, RobustScalerVariant};
