//! The three RobustScaler variants of the evaluation (§VII-A1).

use crate::error::CoreError;
use robustscaler_scaling::DecisionRule;
use serde::{Deserialize, Serialize};

/// Which constraint the autoscaler enforces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RobustScalerVariant {
    /// RobustScaler-HP: target hitting probability (e.g. 0.9).
    HittingProbability {
        /// Desired probability that an instance is ready upon arrival.
        target: f64,
    },
    /// RobustScaler-RT: target expected response time `d` in seconds
    /// (including the mean processing time).
    ResponseTime {
        /// Desired expected response time in seconds.
        target: f64,
    },
    /// RobustScaler-cost: per-instance cost budget `B` in seconds of
    /// lifecycle (including pending and processing).
    CostBudget {
        /// Desired expected per-instance lifecycle cost in seconds.
        budget: f64,
    },
}

impl RobustScalerVariant {
    /// Short name used in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            RobustScalerVariant::HittingProbability { .. } => "robustscaler-hp",
            RobustScalerVariant::ResponseTime { .. } => "robustscaler-rt",
            RobustScalerVariant::CostBudget { .. } => "robustscaler-cost",
        }
    }

    /// Translate the variant into the decision rule of the scaling layer,
    /// given the mean processing time `µ_s` and mean pending time `µ_τ`.
    ///
    /// * HP: the rule's `alpha` is `1 − target`.
    /// * RT: the rule's waiting budget is `d − µ_s` (infeasible if `d ≤ µ_s`).
    /// * cost: the rule's idle budget is `B − µ_τ − µ_s` (clamped at 0 when
    ///   the budget is tighter than the irreducible cost — the strictest
    ///   achievable setting).
    pub fn to_rule(
        &self,
        mean_processing: f64,
        mean_pending: f64,
    ) -> Result<DecisionRule, CoreError> {
        match *self {
            RobustScalerVariant::HittingProbability { target } => {
                if !(target > 0.0 && target < 1.0) {
                    return Err(CoreError::InvalidConfig(
                        "target hitting probability must be in (0, 1)",
                    ));
                }
                Ok(DecisionRule::HittingProbability {
                    alpha: 1.0 - target,
                })
            }
            RobustScalerVariant::ResponseTime { target } => {
                if !(target > 0.0) || !target.is_finite() {
                    return Err(CoreError::InvalidConfig(
                        "target response time must be finite and > 0",
                    ));
                }
                Ok(DecisionRule::ResponseTime {
                    target_waiting: (target - mean_processing).max(0.0),
                })
            }
            RobustScalerVariant::CostBudget { budget } => {
                if !(budget > 0.0) || !budget.is_finite() {
                    return Err(CoreError::InvalidConfig(
                        "cost budget must be finite and > 0",
                    ));
                }
                Ok(DecisionRule::CostBudget {
                    target_idle: (budget - mean_pending - mean_processing).max(0.0),
                })
            }
        }
    }
}

/// The kind of a scaling-layer decision rule, for error reporting.
pub fn rule_kind(rule: &DecisionRule) -> &'static str {
    match rule {
        DecisionRule::HittingProbability { .. } => "hitting-probability",
        DecisionRule::ResponseTime { .. } => "response-time",
        DecisionRule::CostBudget { .. } => "cost-budget",
    }
}

/// The HP rule's `α`, or [`CoreError::RuleMismatch`] for any other rule.
///
/// Serving code that needs a specific rule's parameter (e.g. to report a
/// tenant's configured QoS level) must use these checked accessors rather
/// than matching with a panicking fallback arm: a misconfigured tenant
/// surfaces as an error on its own request path instead of aborting the
/// whole process.
pub fn hp_alpha(rule: &DecisionRule) -> Result<f64, CoreError> {
    match rule {
        DecisionRule::HittingProbability { alpha } => Ok(*alpha),
        other => Err(CoreError::RuleMismatch {
            expected: "hitting-probability",
            got: rule_kind(other),
        }),
    }
}

/// The RT rule's waiting budget, or [`CoreError::RuleMismatch`] otherwise.
pub fn rt_target_waiting(rule: &DecisionRule) -> Result<f64, CoreError> {
    match rule {
        DecisionRule::ResponseTime { target_waiting } => Ok(*target_waiting),
        other => Err(CoreError::RuleMismatch {
            expected: "response-time",
            got: rule_kind(other),
        }),
    }
}

/// The cost rule's idle budget, or [`CoreError::RuleMismatch`] otherwise.
pub fn cost_target_idle(rule: &DecisionRule) -> Result<f64, CoreError> {
    match rule {
        DecisionRule::CostBudget { target_idle } => Ok(*target_idle),
        other => Err(CoreError::RuleMismatch {
            expected: "cost-budget",
            got: rule_kind(other),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_follow_the_paper() {
        assert_eq!(
            RobustScalerVariant::HittingProbability { target: 0.9 }.name(),
            "robustscaler-hp"
        );
        assert_eq!(
            RobustScalerVariant::ResponseTime { target: 20.0 }.name(),
            "robustscaler-rt"
        );
        assert_eq!(
            RobustScalerVariant::CostBudget { budget: 40.0 }.name(),
            "robustscaler-cost"
        );
    }

    #[test]
    fn hp_variant_maps_to_alpha() {
        let rule = RobustScalerVariant::HittingProbability { target: 0.9 }
            .to_rule(20.0, 13.0)
            .unwrap();
        assert!((hp_alpha(&rule).unwrap() - 0.1).abs() < 1e-12);
        assert!(RobustScalerVariant::HittingProbability { target: 1.0 }
            .to_rule(20.0, 13.0)
            .is_err());
        assert!(RobustScalerVariant::HittingProbability { target: 0.0 }
            .to_rule(20.0, 13.0)
            .is_err());
    }

    #[test]
    fn rt_variant_subtracts_processing_time() {
        let rule = RobustScalerVariant::ResponseTime { target: 25.0 }
            .to_rule(20.0, 13.0)
            .unwrap();
        assert!((rt_target_waiting(&rule).unwrap() - 5.0).abs() < 1e-12);
        // Target below the processing time clamps the waiting budget to 0.
        let strict = RobustScalerVariant::ResponseTime { target: 10.0 }
            .to_rule(20.0, 13.0)
            .unwrap();
        assert_eq!(rt_target_waiting(&strict).unwrap(), 0.0);
        assert!(RobustScalerVariant::ResponseTime { target: -1.0 }
            .to_rule(20.0, 13.0)
            .is_err());
    }

    #[test]
    fn cost_variant_subtracts_fixed_costs() {
        let rule = RobustScalerVariant::CostBudget { budget: 40.0 }
            .to_rule(20.0, 13.0)
            .unwrap();
        assert!((cost_target_idle(&rule).unwrap() - 7.0).abs() < 1e-12);
        let tight = RobustScalerVariant::CostBudget { budget: 10.0 }
            .to_rule(20.0, 13.0)
            .unwrap();
        assert_eq!(cost_target_idle(&tight).unwrap(), 0.0);
        assert!(RobustScalerVariant::CostBudget { budget: 0.0 }
            .to_rule(20.0, 13.0)
            .is_err());
    }

    #[test]
    fn mismatched_rule_accessors_error_instead_of_panicking() {
        let hp = DecisionRule::HittingProbability { alpha: 0.1 };
        let rt = DecisionRule::ResponseTime {
            target_waiting: 5.0,
        };
        let cost = DecisionRule::CostBudget { target_idle: 7.0 };
        assert_eq!(rule_kind(&hp), "hitting-probability");
        assert_eq!(rule_kind(&rt), "response-time");
        assert_eq!(rule_kind(&cost), "cost-budget");
        assert!(matches!(
            hp_alpha(&rt),
            Err(CoreError::RuleMismatch {
                expected: "hitting-probability",
                got: "response-time",
            })
        ));
        assert!(matches!(
            rt_target_waiting(&cost),
            Err(CoreError::RuleMismatch { .. })
        ));
        assert!(matches!(
            cost_target_idle(&hp),
            Err(CoreError::RuleMismatch { .. })
        ));
    }
}
