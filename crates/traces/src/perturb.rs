//! Trace perturbations used by the robustness experiments
//! (paper §VII-B1, Figs. 6–7, and §VII-B3, Fig. 9 / Table II).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robustscaler_simulator::{Query, Trace};

/// Seconds in one day (kept local to avoid a circular dependency on
/// `generators` in call sites that only perturb).
const DAY: f64 = 86_400.0;

/// Delete all queries falling in a window of `window` seconds that repeats
/// every `every` seconds, starting at `offset` (the paper deletes a
/// five-minute window every hour). Returns the perturbed trace.
pub fn delete_windows(trace: &Trace, every: f64, offset: f64, window: f64) -> Trace {
    let queries: Vec<Query> = trace
        .queries()
        .iter()
        .copied()
        .filter(|q| {
            let phase = (q.arrival - offset).rem_euclid(every);
            !(q.arrival >= offset && phase < window)
        })
        .collect();
    Trace::new(format!("{}-deleted", trace.name()), queries).unwrap_or_else(|_| trace.clone())
}

/// Add `factor` extra copies (with small jitter) of every query falling in a
/// window of `window` seconds repeating every `every` seconds starting at
/// `offset` (the paper adds `c` more times of queries to a five-minute window
/// every hour, starting at the sixth minute).
pub fn amplify_windows(
    trace: &Trace,
    every: f64,
    offset: f64,
    window: f64,
    factor: usize,
    seed: u64,
) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries: Vec<Query> = trace.queries().to_vec();
    for q in trace.queries() {
        let phase = (q.arrival - offset).rem_euclid(every);
        if q.arrival >= offset && phase < window {
            for _ in 0..factor {
                let jitter: f64 = rng.gen_range(0.0..window.min(60.0));
                queries.push(Query {
                    arrival: q.arrival + jitter,
                    processing: q.processing,
                });
            }
        }
    }
    Trace::new(format!("{}-amplified", trace.name()), queries).unwrap_or_else(|_| trace.clone())
}

/// Remove every query of the `day_index`-th day (0-based) — the paper's
/// missing-data injection on the CRS trace.
pub fn remove_day(trace: &Trace, day_index: usize) -> Trace {
    let from = day_index as f64 * DAY;
    let to = from + DAY;
    let queries: Vec<Query> = trace
        .queries()
        .iter()
        .copied()
        .filter(|q| !(q.arrival >= from && q.arrival < to))
        .collect();
    Trace::new(
        format!("{}-day{}-removed", trace.name(), day_index),
        queries,
    )
    .unwrap_or_else(|_| trace.clone())
}

/// Erase a burst: inside `[from, to)` keep each query only with probability
/// `keep_probability`, thinning the anomalous spike back to a normal level
/// (the paper erases the Alibaba trace's unexpected burst).
pub fn erase_burst(trace: &Trace, from: f64, to: f64, keep_probability: f64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let keep = keep_probability.clamp(0.0, 1.0);
    let queries: Vec<Query> = trace
        .queries()
        .iter()
        .copied()
        .filter(|q| {
            if q.arrival >= from && q.arrival < to {
                rng.gen::<f64>() < keep
            } else {
                true
            }
        })
        .collect();
    Trace::new(format!("{}-burst-erased", trace.name()), queries).unwrap_or_else(|_| trace.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_trace(n: usize, gap: f64) -> Trace {
        Trace::new(
            "uniform",
            (0..n)
                .map(|i| Query {
                    arrival: i as f64 * gap,
                    processing: 1.0,
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn delete_windows_removes_only_the_windows() {
        // One query per minute over 3 hours; delete 5 minutes every hour.
        let trace = uniform_trace(180, 60.0);
        let perturbed = delete_windows(&trace, 3_600.0, 0.0, 300.0);
        // Each hour loses the first 5 queries (minutes 0-4): 15 in total.
        assert_eq!(perturbed.len(), 180 - 15);
        assert!(perturbed.name().contains("deleted"));
        // Queries outside the windows are untouched.
        assert!(perturbed
            .queries()
            .iter()
            .all(|q| (q.arrival % 3_600.0) >= 300.0));
    }

    #[test]
    fn amplify_windows_adds_extra_queries() {
        let trace = uniform_trace(120, 60.0);
        let factor = 3;
        let perturbed = amplify_windows(&trace, 3_600.0, 360.0, 300.0, factor, 1);
        // Windows start at minute 6 of each hour and last 5 minutes: 5 queries
        // per window, 2 windows, each duplicated 3 extra times.
        assert_eq!(perturbed.len(), 120 + 2 * 5 * factor);
        assert!(perturbed.name().contains("amplified"));
    }

    #[test]
    fn remove_day_deletes_exactly_one_day() {
        // 4 days of one query per hour.
        let trace = uniform_trace(96, 3_600.0);
        let perturbed = remove_day(&trace, 1);
        assert_eq!(perturbed.len(), 96 - 24);
        assert!(perturbed
            .queries()
            .iter()
            .all(|q| !(q.arrival >= DAY && q.arrival < 2.0 * DAY)));
    }

    #[test]
    fn erase_burst_thins_the_window() {
        let trace = uniform_trace(1_000, 1.0);
        let erased = erase_burst(&trace, 200.0, 400.0, 0.2, 3);
        let in_window = erased
            .queries()
            .iter()
            .filter(|q| q.arrival >= 200.0 && q.arrival < 400.0)
            .count();
        assert!(in_window < 80, "kept {in_window} of 200");
        assert!(in_window > 10);
        // Outside the window nothing changes.
        let outside = erased
            .queries()
            .iter()
            .filter(|q| q.arrival < 200.0 || q.arrival >= 400.0)
            .count();
        assert_eq!(outside, 800);
        // keep_probability = 1 keeps everything.
        let untouched = erase_burst(&trace, 200.0, 400.0, 1.0, 3);
        assert_eq!(untouched.len(), 1_000);
    }
}
