//! Trace serialization.
//!
//! Generating the larger synthetic traces (weeks of arrivals) takes a few
//! seconds, so the experiment harness caches them on disk as JSON.

use robustscaler_simulator::Trace;
use std::fs;
use std::io;
use std::path::Path;

/// Save a trace as pretty-printed JSON.
pub fn save_trace(trace: &Trace, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string(trace).map_err(io::Error::other)?;
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, json)
}

/// Load a trace previously written by [`save_trace`].
pub fn load_trace(path: &Path) -> io::Result<Trace> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(io::Error::other)
}

/// Load the trace at `path` if it exists, otherwise generate it with
/// `generate`, save it, and return it.
pub fn load_or_generate<F>(path: &Path, generate: F) -> io::Result<Trace>
where
    F: FnOnce() -> Trace,
{
    if path.exists() {
        load_trace(path)
    } else {
        let trace = generate();
        save_trace(&trace, path)?;
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustscaler_simulator::Query;

    fn tiny_trace() -> Trace {
        Trace::new(
            "tiny",
            vec![
                Query {
                    arrival: 1.0,
                    processing: 2.0,
                },
                Query {
                    arrival: 3.0,
                    processing: 4.0,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("robustscaler-traces-test");
        let path = dir.join("nested").join("tiny.json");
        let trace = tiny_trace();
        save_trace(&trace, &path).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(trace, loaded);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_or_generate_generates_then_reuses() {
        let dir = std::env::temp_dir().join("robustscaler-traces-test2");
        let path = dir.join("cache.json");
        let _ = fs::remove_file(&path);
        let mut calls = 0;
        let first = load_or_generate(&path, || {
            calls += 1;
            tiny_trace()
        })
        .unwrap();
        assert_eq!(calls, 1);
        let second = load_or_generate(&path, || {
            calls += 1;
            tiny_trace()
        })
        .unwrap();
        assert_eq!(calls, 1, "second call must hit the cache");
        assert_eq!(first, second);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn loading_a_missing_file_errors() {
        assert!(load_trace(Path::new("/nonexistent/robustscaler.json")).is_err());
    }
}
