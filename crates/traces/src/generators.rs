//! Synthetic trace generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use robustscaler_nhpp::{sample_arrivals_thinning, ClosedFormIntensity};
use robustscaler_simulator::{Query, Trace};
use robustscaler_stats::{ContinuousDistribution, Exponential, LogNormal};
use serde::{Deserialize, Serialize};

/// Seconds in one hour.
pub const HOUR: f64 = 3_600.0;
/// Seconds in one day.
pub const DAY: f64 = 86_400.0;
/// Seconds in one week.
pub const WEEK: f64 = 604_800.0;

/// Processing-time model attached to generated queries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProcessingTimeModel {
    /// Deterministic processing time in seconds.
    Deterministic(f64),
    /// Exponential processing time with the given mean (the paper's
    /// scalability study uses Exp(20 s)).
    Exponential {
        /// Mean processing time in seconds.
        mean: f64,
    },
    /// Heavy-tailed log-normal processing time (container image builds).
    LogNormal {
        /// Mean processing time in seconds.
        mean: f64,
        /// Standard deviation in seconds.
        std_dev: f64,
    },
}

impl ProcessingTimeModel {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            ProcessingTimeModel::Deterministic(v) => *v,
            ProcessingTimeModel::Exponential { mean } => Exponential::with_mean(*mean)
                .expect("positive mean")
                .sample(rng),
            ProcessingTimeModel::LogNormal { mean, std_dev } => {
                LogNormal::from_mean_std(*mean, *std_dev)
                    .expect("positive parameters")
                    .sample(rng)
            }
        }
    }

    /// Expected processing time `µ_s`.
    pub fn mean(&self) -> f64 {
        match self {
            ProcessingTimeModel::Deterministic(v) => *v,
            ProcessingTimeModel::Exponential { mean } => *mean,
            ProcessingTimeModel::LogNormal { mean, .. } => *mean,
        }
    }
}

/// Common knobs of the synthetic generators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Total duration of the trace in seconds.
    pub duration: f64,
    /// Multiplier applied to the base intensity (use < 1 for faster
    /// experiments, > 1 for stress tests).
    pub traffic_scale: f64,
    /// Processing-time model of the generated queries.
    pub processing: ProcessingTimeModel,
    /// RNG seed.
    pub seed: u64,
}

impl TraceConfig {
    /// Defaults for the CRS-like trace: 4 weeks of low, noisy traffic with
    /// long (build-like) processing times.
    pub fn crs_default() -> Self {
        Self {
            duration: 4.0 * WEEK,
            traffic_scale: 1.0,
            processing: ProcessingTimeModel::LogNormal {
                mean: 180.0,
                std_dev: 300.0,
            },
            seed: 2022,
        }
    }

    /// Defaults for the Google-like trace: one day of diurnal traffic.
    pub fn google_default() -> Self {
        Self {
            duration: DAY,
            traffic_scale: 1.0,
            processing: ProcessingTimeModel::Exponential { mean: 60.0 },
            seed: 2019,
        }
    }

    /// Defaults for the Alibaba-like trace: 5 days of high daily-periodic
    /// traffic with a burst anomaly.
    pub fn alibaba_default() -> Self {
        Self {
            duration: 5.0 * DAY,
            traffic_scale: 1.0,
            processing: ProcessingTimeModel::Exponential { mean: 30.0 },
            seed: 2018,
        }
    }
}

/// Sample a trace from an arbitrary intensity function.
fn trace_from_intensity<F>(name: &str, rate: F, config: &TraceConfig, resolution: f64) -> Trace
where
    F: Fn(f64) -> f64,
{
    let scale = config.traffic_scale;
    let intensity =
        ClosedFormIntensity::new(move |t| scale * rate(t), resolution).expect("resolution > 0");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let arrivals = sample_arrivals_thinning(&intensity, 0.0, config.duration, &mut rng);
    let queries: Vec<Query> = arrivals
        .into_iter()
        .map(|arrival| Query {
            arrival,
            processing: config.processing.sample(&mut rng).max(0.01),
        })
        .collect();
    Trace::new(name, queries).expect("generators always produce at least one query")
}

/// Noise helper: a deterministic pseudo-random multiplicative factor that is
/// piecewise constant over 10-minute blocks, reproducing the "very noisy"
/// look of the CRS trace without breaking the NHPP sampling (the factor is
/// part of the intensity, not post-hoc).
fn block_noise(t: f64, seed: u64, amplitude: f64) -> f64 {
    let block = (t / 600.0).floor() as u64;
    // SplitMix64 hash of (block, seed) mapped to [1 − a, 1 + a].
    let mut z = block
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seed.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
    1.0 - amplitude + 2.0 * amplitude * unit
}

/// CRS-like trace: weekly pattern (weekdays busier than weekends) modulated
/// by a daily cycle, very low base rate, strong block noise and occasional
/// outlier bursts.
pub fn crs_like(config: &TraceConfig) -> Trace {
    let seed = config.seed;
    let rate = move |t: f64| {
        let day_of_week = ((t / DAY).floor() as i64).rem_euclid(7);
        let weekday_factor = if day_of_week < 5 { 1.0 } else { 0.35 };
        let hour_of_day = (t % DAY) / HOUR;
        // Office-hours hump centred at 14:00.
        let daily = 0.3 + 0.7 * (-((hour_of_day - 14.0) / 5.0).powi(2)).exp();
        // Occasional outlier spikes: a few minutes once every ~2 days.
        let spike = if (t % (2.0 * DAY + 1_234.0)) < 240.0 {
            6.0
        } else {
            1.0
        };
        0.02 * weekday_factor * daily * spike * block_noise(t, seed, 0.6)
    };
    trace_from_intensity("crs-like", rate, config, 60.0)
}

/// Google-like trace: strong diurnal pattern with short recurrent spikes
/// every two hours.
pub fn google_like(config: &TraceConfig) -> Trace {
    let seed = config.seed;
    let rate = move |t: f64| {
        let hour_of_day = (t % DAY) / HOUR;
        let diurnal = 0.25
            + 0.75
                * ((hour_of_day - 4.0) / 24.0 * std::f64::consts::TAU)
                    .sin()
                    .max(0.0);
        // Recurrent submission spikes lasting 5 minutes every 2 hours.
        let spike = if (t % (2.0 * HOUR)) < 300.0 { 3.0 } else { 1.0 };
        0.35 * diurnal * spike * block_noise(t, seed, 0.3)
    };
    trace_from_intensity("google-like", rate, config, 30.0)
}

/// Alibaba-like trace: strong daily periodicity with recurrent spikes and an
/// unexpected burst in the middle of day 4 (the anomaly the robustness
/// experiments erase).
pub fn alibaba_like(config: &TraceConfig) -> Trace {
    let seed = config.seed;
    let rate = move |t: f64| {
        let hour_of_day = (t % DAY) / HOUR;
        // Two daily peaks (late morning and evening batch window).
        let peak1 = (-((hour_of_day - 10.0) / 3.0).powi(2)).exp();
        let peak2 = (-((hour_of_day - 21.0) / 2.5).powi(2)).exp();
        let daily = 0.3 + 2.0 * peak1 + 1.4 * peak2;
        // Recurrent spikes at the top of every hour (batch job submissions).
        let spike = if (t % HOUR) < 120.0 { 2.5 } else { 1.0 };
        // The burst anomaly: 40 minutes in the afternoon of day 4.
        let burst_start = 3.0 * DAY + 15.0 * HOUR;
        let burst = if t >= burst_start && t < burst_start + 2_400.0 {
            6.0
        } else {
            1.0
        };
        1.2 * daily * spike * burst * block_noise(t, seed, 0.2)
    };
    trace_from_intensity("alibaba-like", rate, config, 30.0)
}

/// The paper's closed-form high-QPS intensity (§VII-B2):
/// `λ(t) = peak · 4⁴⁰ · u⁴⁰ (1−u)⁴⁰ + 0.001` with `u = (t mod 3600)/3600`,
/// peaking at `peak` once per hour. The paper uses `peak = 1000 · 4⁴⁰/4⁴⁰ =
/// 10⁴` scale; the `peak` argument makes the sweep explicit.
pub fn simulated_high_qps(
    peak: f64,
    duration: f64,
    processing: ProcessingTimeModel,
    seed: u64,
) -> Trace {
    let config = TraceConfig {
        duration,
        traffic_scale: 1.0,
        processing,
        seed,
    };
    let rate = move |t: f64| {
        let u = (t % HOUR) / HOUR;
        // 4⁴⁰·u⁴⁰(1−u)⁴⁰ peaks at exactly 1 when u = 1/2.
        let shape = (4.0 * u * (1.0 - u)).powi(40);
        peak * shape + 0.001
    };
    trace_from_intensity("simulated-high-qps", rate, &config, 1.0)
}

/// The ground-truth intensity of the periodicity-regularization study
/// (Table III): `λ(t) = 4¹⁰·u¹⁰(1−u)¹⁰ + 0.1` with `u = (t mod 86400)/86400`
/// over one week. Returns the intensity as a closure together with the
/// period length, so the experiment can both sample data and compute exact
/// errors against it.
pub fn periodic_ground_truth() -> (impl Fn(f64) -> f64 + Clone, f64) {
    let rate = |t: f64| {
        let u = (t % DAY) / DAY;
        (4.0 * u * (1.0 - u)).powi(10) + 0.1
    };
    (rate, DAY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use robustscaler_timeseries::{detect_period, PeriodicityConfig, TimeSeries};

    fn small(config: TraceConfig, duration: f64, scale: f64) -> TraceConfig {
        TraceConfig {
            duration,
            traffic_scale: scale,
            ..config
        }
    }

    #[test]
    fn crs_like_has_low_noisy_traffic_and_long_processing() {
        let trace = crs_like(&small(TraceConfig::crs_default(), WEEK, 1.0));
        // Mean QPS of the paper's CRS trace is ~0.0087 (21k queries / 4 weeks);
        // ours should be in the same low range.
        assert!(
            trace.mean_qps() > 0.003 && trace.mean_qps() < 0.05,
            "qps {}",
            trace.mean_qps()
        );
        let mean_processing: f64 =
            trace.queries().iter().map(|q| q.processing).sum::<f64>() / trace.len() as f64;
        assert!(
            mean_processing > 100.0 && mean_processing < 300.0,
            "processing {mean_processing}"
        );
    }

    #[test]
    fn crs_like_shows_a_weekly_pattern() {
        let trace = crs_like(&small(TraceConfig::crs_default(), 4.0 * WEEK, 3.0));
        // Weekday traffic should exceed weekend traffic clearly.
        let mut weekday = 0usize;
        let mut weekend = 0usize;
        for q in trace.queries() {
            let dow = ((q.arrival / DAY).floor() as i64).rem_euclid(7);
            if dow < 5 {
                weekday += 1;
            } else {
                weekend += 1;
            }
        }
        let weekday_rate = weekday as f64 / 5.0;
        let weekend_rate = weekend as f64 / 2.0;
        assert!(
            weekday_rate > 1.8 * weekend_rate,
            "weekday {weekday_rate} vs weekend {weekend_rate}"
        );
    }

    #[test]
    fn google_like_has_diurnal_periodicity_detectable_from_counts() {
        // Generate 4 days so the daily period sits comfortably inside the
        // detector's n/3 lag window.
        let trace = google_like(&small(TraceConfig::google_default(), 4.0 * DAY, 1.0));
        let counts =
            TimeSeries::from_event_times(&trace.arrival_times(), 0.0, 4.0 * DAY, 1_800.0).unwrap();
        let detected = detect_period(&counts, &PeriodicityConfig::default())
            .unwrap()
            .expect("diurnal period expected");
        // One day = 48 buckets of 30 minutes.
        assert!(
            (detected.period as i64 - 48).abs() <= 2,
            "detected {} buckets",
            detected.period
        );
    }

    #[test]
    fn alibaba_like_contains_the_day4_burst() {
        let trace = alibaba_like(&small(TraceConfig::alibaba_default(), 5.0 * DAY, 0.3));
        let burst_start = 3.0 * DAY + 15.0 * HOUR;
        let burst_rate = trace
            .queries()
            .iter()
            .filter(|q| q.arrival >= burst_start && q.arrival < burst_start + 2_400.0)
            .count() as f64
            / 2_400.0;
        // Compare with the same clock window on the previous day.
        let normal_rate = trace
            .queries()
            .iter()
            .filter(|q| q.arrival >= burst_start - DAY && q.arrival < burst_start - DAY + 2_400.0)
            .count() as f64
            / 2_400.0;
        assert!(
            burst_rate > 3.0 * normal_rate,
            "burst {burst_rate} vs normal {normal_rate}"
        );
    }

    #[test]
    fn high_qps_trace_peaks_mid_hour() {
        let trace = simulated_high_qps(
            200.0,
            2.0 * HOUR,
            ProcessingTimeModel::Exponential { mean: 20.0 },
            7,
        );
        // Count arrivals near the peak (u ≈ 0.5) vs near the trough.
        let peak_count = trace
            .queries()
            .iter()
            .filter(|q| (q.arrival % HOUR) > 1_500.0 && (q.arrival % HOUR) < 2_100.0)
            .count();
        let trough_count = trace
            .queries()
            .iter()
            .filter(|q| (q.arrival % HOUR) < 600.0)
            .count();
        assert!(
            peak_count > 20 * (trough_count + 1),
            "peak {peak_count} trough {trough_count}"
        );
    }

    #[test]
    fn ground_truth_intensity_is_daily_periodic() {
        let (rate, period) = periodic_ground_truth();
        assert_eq!(period, DAY);
        for &t in &[1_000.0, 40_000.0, 80_000.0] {
            assert!((rate(t) - rate(t + DAY)).abs() < 1e-12);
        }
        // Peak at midday is 1.1, trough at midnight is 0.1.
        assert!((rate(DAY / 2.0) - 1.1).abs() < 1e-9);
        assert!((rate(0.0) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn traffic_scale_controls_the_volume() {
        let base = google_like(&small(TraceConfig::google_default(), DAY / 2.0, 1.0));
        let double = google_like(&small(TraceConfig::google_default(), DAY / 2.0, 2.0));
        let ratio = double.len() as f64 / base.len() as f64;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn generation_is_deterministic_given_the_seed() {
        let a = google_like(&small(TraceConfig::google_default(), HOUR * 6.0, 1.0));
        let b = google_like(&small(TraceConfig::google_default(), HOUR * 6.0, 1.0));
        assert_eq!(a, b);
        let mut other_seed = small(TraceConfig::google_default(), HOUR * 6.0, 1.0);
        other_seed.seed = 999;
        let c = google_like(&other_seed);
        assert_ne!(a, c);
    }

    #[test]
    fn processing_models_report_their_means() {
        assert_eq!(ProcessingTimeModel::Deterministic(5.0).mean(), 5.0);
        assert_eq!(ProcessingTimeModel::Exponential { mean: 20.0 }.mean(), 20.0);
        assert_eq!(
            ProcessingTimeModel::LogNormal {
                mean: 180.0,
                std_dev: 10.0
            }
            .mean(),
            180.0
        );
    }
}
