//! Synthetic workload traces for the RobustScaler reproduction.
//!
//! The paper evaluates on three real-world traces (the proprietary CRS
//! container-registry trace, the Google cluster trace 2019 and the Alibaba
//! cluster trace 2018) that cannot be redistributed. Following the
//! substitution policy documented in `DESIGN.md`, this crate generates
//! synthetic traces that reproduce the statistical characteristics the
//! paper's algorithms actually depend on — traffic level, periodic
//! structure, noise, spikes, bursts and heavy-tailed processing times —
//! using the NHPP samplers of `robustscaler-nhpp`:
//!
//! * [`generators::crs_like`] — 4 weeks, weekly+daily pattern, very low and
//!   noisy traffic, long processing times (container image builds),
//! * [`generators::google_like`] — 24 hours, diurnal pattern with recurrent
//!   spikes, moderate traffic,
//! * [`generators::alibaba_like`] — 5 days, strong daily pattern with
//!   recurrent spikes and one anomalous burst on day 4,
//! * [`generators::simulated_high_qps`] — the paper's closed-form intensity
//!   peaking at 10⁴ QPS (scalability study, Fig. 8 / Table I),
//! * [`generators::periodic_ground_truth`] — the closed-form daily intensity
//!   of the periodicity-regularization study (Table III).
//!
//! [`perturb`] implements the perturbations of §VII-B1/B3 (periodic
//! delete/add windows, whole-day removal, burst erasure), and [`io`]
//! serializes traces to JSON for reuse across experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod generators;
pub mod io;
pub mod perturb;

pub use generators::{
    alibaba_like, crs_like, google_like, periodic_ground_truth, simulated_high_qps,
    ProcessingTimeModel, TraceConfig,
};
pub use perturb::{amplify_windows, delete_windows, erase_burst, remove_day};
