//! Robust filters and missing-value repair.
//!
//! The workload traces the paper targets are noisy, contain outliers and
//! monitoring gaps. These filters are used by the periodicity detector and
//! by trace preprocessing before NHPP training.

use crate::error::TimeSeriesError;
use robustscaler_stats::{mad, median};

/// Centered moving average with window `2·half + 1`; the window is truncated
/// at the series boundaries.
pub fn moving_average(xs: &[f64], half: usize) -> Vec<f64> {
    let n = xs.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let window = &xs[lo..hi];
        out.push(window.iter().sum::<f64>() / window.len() as f64);
    }
    out
}

/// Centered rolling median with window `2·half + 1`, truncated at the
/// boundaries. Robust to isolated outliers.
pub fn rolling_median(xs: &[f64], half: usize) -> Vec<f64> {
    let n = xs.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        out.push(median(&xs[lo..hi]).expect("window is non-empty"));
    }
    out
}

/// Hampel filter: replace points further than `threshold · 1.4826 · MAD`
/// from the rolling median by the rolling median itself. Returns the
/// filtered series and the indices that were replaced.
pub fn hampel_filter(xs: &[f64], half: usize, threshold: f64) -> (Vec<f64>, Vec<usize>) {
    let n = xs.len();
    let mut out = xs.to_vec();
    let mut replaced = Vec::new();
    if n == 0 {
        return (out, replaced);
    }
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let window = &xs[lo..hi];
        let med = median(window).expect("window is non-empty");
        let scale = 1.4826 * mad(window).expect("window is non-empty");
        // Degenerate windows (constant) only flag exact deviations.
        let tol = if scale > 0.0 { threshold * scale } else { 0.0 };
        if (xs[i] - med).abs() > tol {
            out[i] = med;
            replaced.push(i);
        }
    }
    (out, replaced)
}

/// Linearly interpolate missing values; leading/trailing gaps are filled
/// with the nearest observed value. Errors when every value is missing.
pub fn interpolate_missing(xs: &[Option<f64>]) -> Result<Vec<f64>, TimeSeriesError> {
    let n = xs.len();
    if xs.iter().all(|v| v.is_none()) {
        return Err(TimeSeriesError::AllMissing);
    }
    let mut out = vec![0.0; n];
    // Collect observed indices.
    let observed: Vec<usize> = (0..n).filter(|&i| xs[i].is_some()).collect();
    let first = observed[0];
    let last = *observed.last().expect("non-empty");
    for i in 0..n {
        out[i] = match xs[i] {
            Some(v) => v,
            None => {
                if i < first {
                    xs[first].expect("observed")
                } else if i > last {
                    xs[last].expect("observed")
                } else {
                    // Find the bracketing observed points.
                    let prev = observed.partition_point(|&j| j < i) - 1;
                    let (j0, j1) = (observed[prev], observed[prev + 1]);
                    let (v0, v1) = (xs[j0].expect("observed"), xs[j1].expect("observed"));
                    let w = (i - j0) as f64 / (j1 - j0) as f64;
                    v0 * (1.0 - w) + v1 * w
                }
            }
        };
    }
    Ok(out)
}

/// Remove a linear trend (ordinary least squares on the index) and return
/// the detrended series. Used before autocorrelation-based period detection.
pub fn detrend_linear(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    if n < 2 {
        return xs.to_vec();
    }
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = xs.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (i, &y) in xs.iter().enumerate() {
        let dx = i as f64 - mean_x;
        sxx += dx * dx;
        sxy += dx * (y - mean_y);
    }
    let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    xs.iter()
        .enumerate()
        .map(|(i, &y)| y - (mean_y + slope * (i as f64 - mean_x)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_smooths_and_preserves_constants() {
        let xs = [2.0; 7];
        assert_eq!(moving_average(&xs, 2), vec![2.0; 7]);
        let ys = [0.0, 0.0, 6.0, 0.0, 0.0];
        let ma = moving_average(&ys, 1);
        assert_eq!(ma[2], 2.0);
        assert_eq!(ma[0], 0.0);
        assert!(moving_average(&[], 3).is_empty());
    }

    #[test]
    fn rolling_median_ignores_single_outlier() {
        let xs = [1.0, 1.0, 100.0, 1.0, 1.0];
        let rm = rolling_median(&xs, 1);
        assert_eq!(rm[2], 1.0);
        // Boundary windows still defined.
        assert_eq!(rm[0], 1.0);
    }

    #[test]
    fn hampel_replaces_outliers_only() {
        let mut xs: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        xs[25] = 50.0;
        xs[40] = -30.0;
        let (filtered, replaced) = hampel_filter(&xs, 5, 3.0);
        assert!(replaced.contains(&25));
        assert!(replaced.contains(&40));
        assert!(filtered[25].abs() < 2.0);
        assert!(filtered[40].abs() < 2.0);
        // Clean points are untouched.
        assert_eq!(filtered[10], xs[10]);
        // Degenerate empty input.
        let (empty, none) = hampel_filter(&[], 3, 3.0);
        assert!(empty.is_empty() && none.is_empty());
    }

    #[test]
    fn interpolation_fills_interior_and_edges() {
        let xs = vec![None, Some(2.0), None, None, Some(8.0), None];
        let filled = interpolate_missing(&xs).unwrap();
        assert_eq!(filled, vec![2.0, 2.0, 4.0, 6.0, 8.0, 8.0]);
        assert!(interpolate_missing(&[None, None]).is_err());
        // Fully observed input is returned unchanged.
        let ys = vec![Some(1.0), Some(5.0)];
        assert_eq!(interpolate_missing(&ys).unwrap(), vec![1.0, 5.0]);
    }

    #[test]
    fn detrend_removes_linear_component() {
        let xs: Vec<f64> = (0..100).map(|i| 3.0 + 0.5 * i as f64).collect();
        let d = detrend_linear(&xs);
        assert!(d.iter().all(|v| v.abs() < 1e-9));
        // Short series pass through.
        assert_eq!(detrend_linear(&[7.0]), vec![7.0]);
        // Detrending a sine leaves it roughly unchanged.
        let s: Vec<f64> = (0..200)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 20.0).sin())
            .collect();
        let ds = detrend_linear(&s);
        let max_diff = s
            .iter()
            .zip(ds.iter())
            .fold(0.0_f64, |acc, (a, b)| acc.max((a - b).abs()));
        assert!(max_diff < 0.1);
    }
}
