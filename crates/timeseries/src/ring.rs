//! Ring-buffered incremental count aggregation for online serving.
//!
//! The offline pipeline aggregates a whole trace at once with
//! [`TimeSeries::from_event_times`]. A serving process instead sees arrivals
//! one at a time and must keep only a bounded training window in memory.
//! [`CountRing`] is that bounded window: a fixed-capacity ring of per-bucket
//! arrival counts keyed to absolute time. Observations increment the bucket
//! containing their timestamp; when the window grows past the capacity the
//! oldest buckets are evicted. A [`CountRing::series`] snapshot reproduces
//! *exactly* what batch aggregation over the retained range would have
//! produced, which is the property the online-equals-batch proptests pin.

use crate::error::TimeSeriesError;
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Format version written by [`CountRing::snapshot`]; bump on any change to
/// the snapshot layout and keep [`RingSnapshot::restore`] able to read every
/// version still in the fleet.
pub const RING_SNAPSHOT_VERSION: u32 = 1;

/// A serializable, version-tagged copy of a [`CountRing`]'s full state:
/// bucket grid (origin, Δt, capacity), write cursor (`first_bucket`), the
/// retained per-bucket counts, and the drop/evict accounting.
///
/// [`RingSnapshot::restore`] rebuilds a ring that is indistinguishable from
/// the one that was snapshotted — subsequent `observe`/`advance_to`/
/// `series` calls behave bit-identically — which is the property the
/// persistence proptests pin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingSnapshot {
    /// Snapshot format version ([`RING_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Bucket grid anchor.
    pub origin: f64,
    /// Aggregation Δt in seconds.
    pub bucket_width: f64,
    /// Maximum retained buckets.
    pub capacity: usize,
    /// Absolute index (relative to `origin`) of the oldest retained bucket.
    pub first_bucket: u64,
    /// Retained per-bucket counts, oldest first.
    pub counts: Vec<f64>,
    /// Observations accepted so far.
    pub observed: u64,
    /// Observations dropped so far.
    pub dropped: u64,
    /// Buckets evicted from the front so far.
    pub evicted: u64,
}

impl RingSnapshot {
    /// Rebuild the ring this snapshot was taken from.
    ///
    /// Validates the version tag and every invariant `CountRing::new`
    /// enforces, plus snapshot-specific ones (count vector within capacity,
    /// finite non-negative counts), so a corrupted or hand-edited snapshot
    /// fails loudly instead of producing a silently inconsistent ring.
    pub fn restore(self) -> Result<CountRing, TimeSeriesError> {
        if self.version != RING_SNAPSHOT_VERSION {
            return Err(TimeSeriesError::UnsupportedSnapshotVersion {
                found: self.version,
                supported: RING_SNAPSHOT_VERSION,
            });
        }
        let mut ring = CountRing::new(self.origin, self.bucket_width, self.capacity)?;
        if self.counts.len() > self.capacity {
            return Err(TimeSeriesError::InvalidParameter(
                "snapshot holds more buckets than its capacity",
            ));
        }
        if self.counts.iter().any(|c| !c.is_finite() || *c < 0.0) {
            return Err(TimeSeriesError::InvalidParameter(
                "snapshot bucket counts must be finite and non-negative",
            ));
        }
        ring.first_bucket = self.first_bucket;
        ring.counts = VecDeque::from(self.counts);
        ring.observed = self.observed;
        ring.dropped = self.dropped;
        ring.evicted = self.evicted;
        Ok(ring)
    }
}

/// A fixed-capacity ring of per-bucket arrival counts.
///
/// Buckets are aligned to `origin`: bucket `k` covers
/// `[origin + k·Δt, origin + (k+1)·Δt)`. The ring retains at most
/// `capacity` consecutive buckets ending at the most recent observation (or
/// [`CountRing::advance_to`] watermark), evicting from the front.
#[derive(Debug, Clone, PartialEq)]
pub struct CountRing {
    origin: f64,
    bucket_width: f64,
    capacity: usize,
    /// Absolute index (relative to `origin`) of `counts[0]`.
    first_bucket: u64,
    counts: VecDeque<f64>,
    /// Observations accepted into a retained bucket.
    observed: u64,
    /// Observations rejected because they fell before the retained window
    /// (or before `origin`).
    dropped: u64,
    /// Buckets evicted from the front so far.
    evicted: u64,
}

impl CountRing {
    /// Create an empty ring.
    ///
    /// `origin` anchors the bucket grid (observations before it are
    /// dropped), `bucket_width` is the aggregation Δt in seconds, and
    /// `capacity` the maximum number of retained buckets.
    pub fn new(origin: f64, bucket_width: f64, capacity: usize) -> Result<Self, TimeSeriesError> {
        if !(bucket_width > 0.0) || !bucket_width.is_finite() {
            return Err(TimeSeriesError::InvalidBucketWidth(bucket_width));
        }
        if !origin.is_finite() {
            return Err(TimeSeriesError::InvalidParameter("origin must be finite"));
        }
        if capacity == 0 {
            return Err(TimeSeriesError::InvalidParameter(
                "ring capacity must be >= 1 bucket",
            ));
        }
        Ok(Self {
            origin,
            bucket_width,
            capacity,
            first_bucket: 0,
            counts: VecDeque::with_capacity(capacity.min(1 << 20)),
            observed: 0,
            dropped: 0,
            evicted: 0,
        })
    }

    /// The bucket grid anchor.
    pub fn origin(&self) -> f64 {
        self.origin
    }

    /// Aggregation bucket width Δt in seconds.
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }

    /// Maximum number of retained buckets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained buckets.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no bucket has been materialized yet.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Left edge of the oldest retained bucket.
    pub fn start(&self) -> f64 {
        self.origin + self.first_bucket as f64 * self.bucket_width
    }

    /// Right edge (exclusive) of the newest retained bucket.
    pub fn end(&self) -> f64 {
        self.start() + self.counts.len() as f64 * self.bucket_width
    }

    /// Observations accepted into a retained bucket so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Observations dropped because they predate the retained window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buckets evicted from the front of the ring so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Absolute bucket index containing time `t`, or `None` for `t` before
    /// the origin or too absurd to index (non-finite, or beyond 2⁵³ buckets
    /// — a corrupt timestamp, not traffic; indexing it would overflow the
    /// bucket arithmetic).
    fn bucket_index(&self, t: f64) -> Option<u64> {
        if t < self.origin || !t.is_finite() {
            return None;
        }
        let offset = (t - self.origin) / self.bucket_width;
        if offset >= 9_007_199_254_740_992.0 {
            return None;
        }
        // Matches the cast in `TimeSeries::from_event_times`: a plain
        // truncating cast of the non-negative offset.
        Some(offset as u64)
    }

    /// Materialize (zero-count) buckets so the ring covers `bucket`,
    /// evicting from the front when the capacity is exceeded.
    ///
    /// A forward jump larger than the capacity (an idle tenant waking up
    /// much later, or a far-future timestamp) replaces the window outright
    /// in O(capacity) instead of stepping bucket by bucket through the gap.
    fn grow_to(&mut self, bucket: u64) {
        if self.counts.is_empty() {
            // First bucket ever: start the window at `bucket` directly
            // rather than materializing everything since the origin.
            self.first_bucket = bucket;
            self.counts.push_back(0.0);
        }
        let end = self.first_bucket + self.counts.len() as u64;
        if bucket < end {
            return;
        }
        let new_first = bucket - (self.capacity as u64 - 1).min(bucket);
        if new_first >= end {
            // The whole retained window (and the gap's virtual buckets) are
            // evicted; restart the ring at the new window.
            self.evicted += self.counts.len() as u64 + (new_first - end);
            self.counts.clear();
            self.counts.resize((bucket - new_first) as usize + 1, 0.0);
            self.first_bucket = new_first;
            return;
        }
        while self.first_bucket + (self.counts.len() as u64) <= bucket {
            self.counts.push_back(0.0);
            if self.counts.len() > self.capacity {
                self.counts.pop_front();
                self.first_bucket += 1;
                self.evicted += 1;
            }
        }
    }

    /// Record one arrival at time `t`.
    ///
    /// Returns `true` when the arrival landed in a retained bucket, `false`
    /// when it was dropped (before the origin or before the window — e.g. a
    /// late, out-of-order event older than the retained history).
    pub fn observe(&mut self, t: f64) -> bool {
        let Some(bucket) = self.bucket_index(t) else {
            self.dropped += 1;
            return false;
        };
        if !self.counts.is_empty() && bucket < self.first_bucket {
            self.dropped += 1;
            return false;
        }
        self.grow_to(bucket);
        // `grow_to` may still have evicted past `bucket` when the jump
        // exceeded the capacity; re-check before indexing.
        if bucket < self.first_bucket {
            self.dropped += 1;
            return false;
        }
        let offset = (bucket - self.first_bucket) as usize;
        self.counts[offset] += 1.0;
        self.observed += 1;
        true
    }

    /// Record a batch of arrivals; returns how many were accepted.
    ///
    /// This is the bulk append behind the online layer's batched ingestion
    /// fast path: consecutive observations landing in the same bucket are
    /// grouped into one run, so the window bookkeeping (`grow_to`, the
    /// before-window check, the ring indexing) runs once per *run* instead
    /// of once per arrival. On a sorted batch — the shape arrival queues
    /// drain in — runs are maximal and the per-arrival cost collapses to
    /// one bucket-index computation.
    ///
    /// The result is **bit-identical to calling [`CountRing::observe`] on
    /// each element in order** for *any* input (sorted or not): run
    /// membership is decided with the same bucket arithmetic as the scalar
    /// path, and a run's count is accumulated with the same sequence of
    /// `+ 1.0` adds (pinned by the batch-equals-scalar tests).
    pub fn observe_batch(&mut self, times: &[f64]) -> usize {
        let mut accepted = 0usize;
        let mut i = 0usize;
        while i < times.len() {
            let Some(bucket) = self.bucket_index(times[i]) else {
                self.dropped += 1;
                i += 1;
                continue;
            };
            if !self.counts.is_empty() && bucket < self.first_bucket {
                self.dropped += 1;
                i += 1;
                continue;
            }
            self.grow_to(bucket);
            // `grow_to` may still have evicted past `bucket` when the jump
            // exceeded the capacity; re-check before indexing (mirrors
            // `observe`).
            if bucket < self.first_bucket {
                self.dropped += 1;
                i += 1;
                continue;
            }
            let mut run = 1usize;
            while i + run < times.len() && self.bucket_index(times[i + run]) == Some(bucket) {
                run += 1;
            }
            let offset = (bucket - self.first_bucket) as usize;
            // Repeated `+ 1.0` (not `+ run as f64`): the same op sequence
            // as the scalar path, so even exotic fractional counts restored
            // from snapshots stay bit-identical.
            let mut count = self.counts[offset];
            for _ in 0..run {
                count += 1.0;
            }
            self.counts[offset] = count;
            self.observed += run as u64;
            accepted += run;
            i += run;
        }
        accepted
    }

    /// Advance the window so it covers time `t` with (possibly zero-count)
    /// buckets — bookkeeping for quiet tenants whose ring would otherwise
    /// stall at their last arrival.
    pub fn advance_to(&mut self, t: f64) {
        if let Some(bucket) = self.bucket_index(t) {
            if self.counts.is_empty() || bucket >= self.first_bucket {
                self.grow_to(bucket);
            }
        }
    }

    /// Number of retained buckets that are *complete* at time `now` (their
    /// right edge is at or before `now`) — the prefix safe to train on
    /// without biasing the newest bucket low.
    pub fn complete_len(&self, now: f64) -> usize {
        if self.counts.is_empty() {
            return 0;
        }
        let whole = ((now - self.start()) / self.bucket_width).floor();
        if whole <= 0.0 {
            0
        } else {
            (whole as usize).min(self.counts.len())
        }
    }

    /// Total count across the retained buckets wholly contained in
    /// `[from, to)` — the drift detector's observed-arrivals query.
    pub fn count_between(&self, from: f64, to: f64) -> f64 {
        let start = self.start();
        self.counts
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let left = start + *i as f64 * self.bucket_width;
                left >= from && left + self.bucket_width <= to
            })
            .map(|(_, &c)| c)
            .sum()
    }

    /// Snapshot of all retained buckets as a [`TimeSeries`].
    ///
    /// Identical to batch aggregation of the accepted events on the ring's
    /// origin-anchored bucket grid. (Re-anchoring batch aggregation at
    /// `self.start()` can bin events that straddle a bucket boundary
    /// differently due to floating-point rounding; the grid is part of the
    /// equality contract.)
    pub fn series(&self) -> Result<TimeSeries, TimeSeriesError> {
        self.series_prefix(self.counts.len())
    }

    /// Snapshot of the complete buckets at `now` (see
    /// [`CountRing::complete_len`]) as a [`TimeSeries`].
    pub fn series_complete(&self, now: f64) -> Result<TimeSeries, TimeSeriesError> {
        self.series_prefix(self.complete_len(now))
    }

    /// Capture the ring's full state as a serializable, version-tagged
    /// [`RingSnapshot`] (see [`RingSnapshot::restore`]).
    pub fn snapshot(&self) -> RingSnapshot {
        RingSnapshot {
            version: RING_SNAPSHOT_VERSION,
            origin: self.origin,
            bucket_width: self.bucket_width,
            capacity: self.capacity,
            first_bucket: self.first_bucket,
            counts: self.counts.iter().copied().collect(),
            observed: self.observed,
            dropped: self.dropped,
            evicted: self.evicted,
        }
    }

    fn series_prefix(&self, buckets: usize) -> Result<TimeSeries, TimeSeriesError> {
        if buckets == 0 {
            return Err(TimeSeriesError::InvalidParameter(
                "ring holds no complete bucket to snapshot",
            ));
        }
        let values: Vec<f64> = self.counts.iter().take(buckets).copied().collect();
        TimeSeries::from_values(self.start(), self.bucket_width, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validates() {
        assert!(CountRing::new(0.0, 0.0, 10).is_err());
        assert!(CountRing::new(0.0, -1.0, 10).is_err());
        assert!(CountRing::new(f64::NAN, 1.0, 10).is_err());
        assert!(CountRing::new(0.0, 1.0, 0).is_err());
        assert!(CountRing::new(5.0, 1.0, 3).is_ok());
    }

    #[test]
    fn matches_batch_aggregation_exactly() {
        let events: Vec<f64> = (0..500).map(|i| (i as f64 * 1.37) % 300.0).collect();
        let mut ring = CountRing::new(0.0, 10.0, 64).unwrap();
        for &t in &events {
            ring.observe(t);
        }
        let series = ring.series().unwrap();
        let batch =
            TimeSeries::from_event_times(&events, series.start(), series.end(), 10.0).unwrap();
        assert_eq!(series, batch);
        assert_eq!(ring.observed(), 500);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn eviction_keeps_the_most_recent_window() {
        let mut ring = CountRing::new(0.0, 1.0, 4).unwrap();
        for t in 0..10 {
            ring.observe(t as f64 + 0.5);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.start(), 6.0);
        assert_eq!(ring.end(), 10.0);
        assert_eq!(ring.evicted(), 6);
        let series = ring.series().unwrap();
        assert_eq!(series.optional_values().len(), 4);
        assert!(series.optional_values().iter().all(|v| *v == Some(1.0)));
        // A late event older than the window is dropped, not misfiled.
        assert!(!ring.observe(2.0));
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn pre_origin_events_are_dropped() {
        let mut ring = CountRing::new(100.0, 1.0, 8).unwrap();
        assert!(!ring.observe(99.9));
        assert!(ring.observe(100.0));
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.observed(), 1);
    }

    #[test]
    fn advance_to_materializes_zero_buckets() {
        let mut ring = CountRing::new(0.0, 5.0, 100).unwrap();
        ring.observe(2.0);
        ring.advance_to(23.0);
        assert_eq!(ring.len(), 5); // buckets [0,5) .. [20,25)
        let series = ring.series().unwrap();
        assert_eq!(series.get(0), Some(1.0));
        for i in 1..5 {
            assert_eq!(series.get(i), Some(0.0));
        }
    }

    #[test]
    fn complete_len_excludes_the_partial_bucket() {
        let mut ring = CountRing::new(0.0, 10.0, 100).unwrap();
        ring.observe(3.0);
        ring.observe(17.0);
        ring.observe(25.0);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.complete_len(25.0), 2);
        assert_eq!(ring.complete_len(30.0), 3);
        assert_eq!(ring.complete_len(1.0), 0);
        let complete = ring.series_complete(25.0).unwrap();
        assert_eq!(complete.len(), 2);
        assert!(ring.series_complete(1.0).is_err());
    }

    #[test]
    fn count_between_sums_whole_buckets_in_range() {
        let mut ring = CountRing::new(0.0, 10.0, 100).unwrap();
        for &t in &[1.0, 2.0, 15.0, 25.0, 26.0, 27.0] {
            ring.observe(t);
        }
        assert_eq!(ring.count_between(0.0, 30.0), 6.0);
        assert_eq!(ring.count_between(10.0, 30.0), 4.0);
        // Partially covered buckets are excluded on both sides.
        assert_eq!(ring.count_between(5.0, 30.0), 4.0);
        assert_eq!(ring.count_between(10.0, 25.0), 1.0);
        assert_eq!(ring.count_between(40.0, 50.0), 0.0);
    }

    #[test]
    fn huge_forward_jump_past_capacity_keeps_a_consistent_window() {
        let mut ring = CountRing::new(0.0, 1.0, 3).unwrap();
        ring.observe(0.5);
        ring.observe(1_000.5);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.start(), 998.0);
        let series = ring.series().unwrap();
        assert_eq!(series.get(2), Some(1.0));
        assert_eq!(ring.observed(), 2);
    }

    #[test]
    fn absurd_timestamps_are_dropped_not_indexed() {
        // A corrupt far-future timestamp must neither hang (stepping through
        // the gap bucket by bucket) nor overflow the bucket arithmetic.
        let mut ring = CountRing::new(0.0, 1.0, 4).unwrap();
        ring.observe(1.5);
        assert!(!ring.observe(1e30));
        assert!(!ring.observe(f64::INFINITY));
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 1);
        // A large-but-sane jump relocates the window in O(capacity).
        assert!(ring.observe(5_000_000.5));
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.start(), 4_999_997.0);
        // Eviction accounting matches what bucket-by-bucket stepping would
        // have counted: buckets 1..=5_000_000 created, 4 retained.
        assert_eq!(ring.evicted(), 5_000_000 - 4);
    }

    #[test]
    fn empty_ring_snapshot_errors() {
        let ring = CountRing::new(0.0, 1.0, 3).unwrap();
        assert!(ring.series().is_err());
        assert_eq!(ring.complete_len(50.0), 0);
    }

    #[test]
    fn snapshot_restore_is_exact() {
        let mut ring = CountRing::new(5.0, 2.5, 8).unwrap();
        for &t in &[5.1, 6.0, 14.9, 30.0, 31.0, 2.0] {
            ring.observe(t);
        }
        ring.advance_to(40.0);
        let snap = ring.snapshot();
        assert_eq!(snap.version, RING_SNAPSHOT_VERSION);
        let restored = snap.clone().restore().unwrap();
        assert_eq!(ring, restored);
        // Serde round trip through JSON is exact too.
        let json = serde_json::to_string(&snap).unwrap();
        let back: RingSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.restore().unwrap(), ring);
    }

    #[test]
    fn restored_ring_continues_identically() {
        let mut ring = CountRing::new(0.0, 1.0, 4).unwrap();
        for t in 0..7 {
            ring.observe(t as f64 + 0.25);
        }
        let mut restored = ring.snapshot().restore().unwrap();
        for &t in &[7.5, 2.0, 9.75, 100.5] {
            assert_eq!(ring.observe(t), restored.observe(t));
        }
        assert_eq!(ring, restored);
        assert_eq!(ring.series().unwrap(), restored.series().unwrap());
    }

    /// Reference implementation of batch ingestion: the per-element
    /// `observe` loop `observe_batch` is an optimization of. The bulk path
    /// must stay bit-identical to this for arbitrary inputs.
    fn observe_reference(ring: &mut CountRing, times: &[f64]) -> usize {
        times.iter().filter(|&&t| ring.observe(t)).count()
    }

    #[test]
    fn observe_batch_is_bit_identical_to_the_scalar_loop() {
        // Mixed sorted runs, duplicates, out-of-order stragglers, pre-origin
        // and absurd timestamps — every branch of the scalar path.
        let times: Vec<f64> = vec![
            0.5,
            0.6,
            0.7,
            3.1,
            3.1,
            3.2,
            9.9,
            2.0,
            50.0,
            50.5,
            49.0,
            -1.0,
            1e30,
            f64::NAN,
            120.0,
            120.0,
            119.5,
            4_000.0,
            4_000.5,
            3_999.0,
            0.25,
        ];
        let mut bulk = CountRing::new(0.0, 1.0, 32).unwrap();
        let mut scalar = CountRing::new(0.0, 1.0, 32).unwrap();
        let accepted_bulk = bulk.observe_batch(&times);
        let accepted_scalar = observe_reference(&mut scalar, &times);
        assert_eq!(accepted_bulk, accepted_scalar);
        assert_eq!(bulk, scalar);
        assert_eq!(bulk.snapshot(), scalar.snapshot());
    }

    #[test]
    fn observe_batch_matches_scalar_on_chunked_sorted_streams() {
        let times: Vec<f64> = (0..5_000).map(|i| i as f64 * 0.037).collect();
        let mut bulk = CountRing::new(0.0, 2.5, 48).unwrap();
        let mut scalar = CountRing::new(0.0, 2.5, 48).unwrap();
        for chunk in times.chunks(97) {
            assert_eq!(
                bulk.observe_batch(chunk),
                observe_reference(&mut scalar, chunk)
            );
        }
        assert_eq!(bulk, scalar);
    }

    #[test]
    fn snapshot_restore_validates() {
        let mut ring = CountRing::new(0.0, 1.0, 4).unwrap();
        ring.observe(1.5);
        let snap = ring.snapshot();
        let mut bad = snap.clone();
        bad.version = RING_SNAPSHOT_VERSION + 1;
        assert!(matches!(
            bad.restore(),
            Err(TimeSeriesError::UnsupportedSnapshotVersion { .. })
        ));
        let mut bad = snap.clone();
        bad.counts = vec![0.0; 5];
        assert!(bad.restore().is_err());
        let mut bad = snap.clone();
        bad.counts = vec![f64::NAN];
        assert!(bad.restore().is_err());
        let mut bad = snap.clone();
        bad.counts = vec![-1.0];
        assert!(bad.restore().is_err());
        let mut bad = snap;
        bad.bucket_width = -2.0;
        assert!(bad.restore().is_err());
    }
}
