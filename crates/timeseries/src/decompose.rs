//! Lightweight robust seasonal-trend decomposition.
//!
//! The paper leverages RobustSTL-style decomposition (reference \[19\]) to
//! characterize workloads with complex periodic patterns. For the
//! reproduction we implement a compact robust variant: the trend is a
//! rolling median, the seasonal component is the per-phase median of the
//! detrended series, and the remainder is what is left. It is used for
//! trace diagnostics (Fig. 3 characterization) and by tests that validate
//! the synthetic trace generators.

use crate::error::TimeSeriesError;
use crate::filters::{interpolate_missing, rolling_median};
use crate::series::TimeSeries;
use robustscaler_stats::median;

/// The result of a seasonal-trend decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Slowly varying trend component.
    pub trend: Vec<f64>,
    /// Periodic component with the given period, repeated across the series.
    pub seasonal: Vec<f64>,
    /// Remainder (original − trend − seasonal).
    pub remainder: Vec<f64>,
    /// Period used for the seasonal component.
    pub period: usize,
}

impl Decomposition {
    /// Seasonal strength in `[0, 1]`: `1 − Var(remainder)/Var(seasonal + remainder)`,
    /// the standard STL diagnostic. Values near 1 indicate strong seasonality.
    pub fn seasonal_strength(&self) -> f64 {
        let var = |xs: &[f64]| robustscaler_stats::variance(xs);
        let detrended: Vec<f64> = self
            .seasonal
            .iter()
            .zip(self.remainder.iter())
            .map(|(s, r)| s + r)
            .collect();
        let denom = var(&detrended);
        if denom <= f64::EPSILON {
            return 0.0;
        }
        (1.0 - var(&self.remainder) / denom).max(0.0)
    }
}

/// Robust seasonal-trend decomposition with a known period.
///
/// Missing values are linearly interpolated before decomposition. The trend
/// window is one full period (rounded up to an odd width).
pub fn robust_stl(series: &TimeSeries, period: usize) -> Result<Decomposition, TimeSeriesError> {
    if period < 2 {
        return Err(TimeSeriesError::InvalidParameter("period must be >= 2"));
    }
    let n = series.len();
    if n < 2 * period {
        return Err(TimeSeriesError::TooShort {
            required: 2 * period,
            actual: n,
        });
    }
    let filled = interpolate_missing(series.optional_values())?;

    // Trend: rolling median over one period.
    let half = period / 2;
    let trend = rolling_median(&filled, half);

    // Seasonal: per-phase median of the detrended values, centred to sum to 0.
    let detrended: Vec<f64> = filled
        .iter()
        .zip(trend.iter())
        .map(|(x, t)| x - t)
        .collect();
    let mut seasonal_pattern = vec![0.0; period];
    for phase in 0..period {
        let phase_values: Vec<f64> = detrended
            .iter()
            .enumerate()
            .filter(|(i, _)| i % period == phase)
            .map(|(_, v)| *v)
            .collect();
        seasonal_pattern[phase] = median(&phase_values).expect("non-empty by construction");
    }
    let pattern_mean = seasonal_pattern.iter().sum::<f64>() / seasonal_pattern.len() as f64;
    for v in &mut seasonal_pattern {
        *v -= pattern_mean;
    }

    let seasonal: Vec<f64> = (0..n).map(|i| seasonal_pattern[i % period]).collect();
    let remainder: Vec<f64> = filled
        .iter()
        .zip(trend.iter())
        .zip(seasonal.iter())
        .map(|((x, t), s)| x - t - s)
        .collect();

    Ok(Decomposition {
        trend,
        seasonal,
        remainder,
        period,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn make_series(n: usize, period: usize, noise: f64, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64;
                20.0 + 0.01 * i as f64 + 6.0 * phase.sin() + noise * (rng.gen::<f64>() - 0.5)
            })
            .collect();
        TimeSeries::from_values(0.0, 60.0, values).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        let s = make_series(100, 10, 0.0, 1);
        assert!(robust_stl(&s, 1).is_err());
        assert!(robust_stl(&s, 80).is_err());
    }

    #[test]
    fn components_reconstruct_the_series() {
        let s = make_series(300, 24, 1.0, 2);
        let d = robust_stl(&s, 24).unwrap();
        let filled = s.values_filled(0.0);
        for i in 0..s.len() {
            let rebuilt = d.trend[i] + d.seasonal[i] + d.remainder[i];
            assert!((rebuilt - filled[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn strong_seasonality_is_detected() {
        let s = make_series(400, 20, 0.5, 3);
        let d = robust_stl(&s, 20).unwrap();
        assert!(d.seasonal_strength() > 0.8, "{}", d.seasonal_strength());
        // Seasonal component is periodic by construction.
        for i in 0..s.len() - 20 {
            assert!((d.seasonal[i] - d.seasonal[i + 20]).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_noise_has_weak_seasonality() {
        let mut rng = StdRng::seed_from_u64(4);
        let values: Vec<f64> = (0..400).map(|_| rng.gen::<f64>() * 10.0).collect();
        let s = TimeSeries::from_values(0.0, 60.0, values).unwrap();
        let d = robust_stl(&s, 20).unwrap();
        assert!(d.seasonal_strength() < 0.5, "{}", d.seasonal_strength());
    }

    #[test]
    fn outliers_do_not_distort_the_seasonal_pattern() {
        let mut s = make_series(400, 25, 0.5, 5);
        // Inject gross outliers.
        for idx in [30_usize, 130, 260, 399] {
            s.set(idx, Some(500.0));
        }
        let d = robust_stl(&s, 25).unwrap();
        // The seasonal amplitude should stay near the true ±6 range.
        let max_seasonal = d.seasonal.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max_seasonal < 10.0, "seasonal contaminated: {max_seasonal}");
        assert!(max_seasonal > 3.0);
    }

    #[test]
    fn handles_missing_values() {
        let mut s = make_series(300, 24, 0.5, 6);
        s.mask_range(100.0 * 60.0, 120.0 * 60.0);
        let d = robust_stl(&s, 24).unwrap();
        assert_eq!(d.trend.len(), 300);
        assert!(d.seasonal_strength() > 0.5);
    }
}
