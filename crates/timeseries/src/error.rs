//! Error type for the time-series substrate.

use std::fmt;

/// Errors produced by series construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum TimeSeriesError {
    /// The series is empty or shorter than the operation requires.
    TooShort {
        /// Minimum length required.
        required: usize,
        /// Actual length.
        actual: usize,
    },
    /// An invalid parameter was supplied.
    InvalidParameter(&'static str),
    /// The bucket width must be strictly positive.
    InvalidBucketWidth(f64),
    /// All values are missing, so the requested statistic is undefined.
    AllMissing,
    /// A snapshot carries a format version this build does not understand.
    UnsupportedSnapshotVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
}

impl fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeSeriesError::TooShort { required, actual } => {
                write!(f, "series too short: need {required}, have {actual}")
            }
            TimeSeriesError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            TimeSeriesError::InvalidBucketWidth(w) => {
                write!(f, "bucket width must be > 0, got {w}")
            }
            TimeSeriesError::AllMissing => write!(f, "series contains only missing values"),
            TimeSeriesError::UnsupportedSnapshotVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} not supported (this build reads <= {supported})"
                )
            }
        }
    }
}

impl std::error::Error for TimeSeriesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_contain_key_facts() {
        assert!(TimeSeriesError::TooShort {
            required: 10,
            actual: 3
        }
        .to_string()
        .contains("10"));
        assert!(TimeSeriesError::InvalidBucketWidth(-1.0)
            .to_string()
            .contains("-1"));
        assert!(TimeSeriesError::InvalidParameter("window")
            .to_string()
            .contains("window"));
        assert_eq!(
            TimeSeriesError::AllMissing.to_string(),
            "series contains only missing values"
        );
    }
}
