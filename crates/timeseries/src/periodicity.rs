//! Robust periodicity detection.
//!
//! The paper's first module detects cyclic patterns in the aggregated QPS
//! series using robust periodicity detection (RobustPeriod, reference \[18\]).
//! This implementation follows the same spirit with a self-contained
//! pipeline:
//!
//! 1. interpolate missing buckets and aggregate (caller-controlled),
//! 2. Hampel-filter outliers and remove a linear trend,
//! 3. compute the autocorrelation function (ACF) of the cleaned series,
//! 4. find local ACF maxima whose value exceeds a significance threshold
//!    derived from the large-lag standard error `1/√n`, and
//! 5. validate candidates by checking that the ACF also peaks at integer
//!    multiples of the candidate period (harmonic consistency), which
//!    suppresses spurious peaks created by noise or isolated bursts.

use crate::error::TimeSeriesError;
use crate::filters::{detrend_linear, hampel_filter, interpolate_missing};
use crate::series::TimeSeries;
use robustscaler_stats::autocorrelation;
use serde::{Deserialize, Serialize};

/// Configuration of the periodicity detector.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PeriodicityConfig {
    /// Smallest period (in buckets) considered.
    pub min_period: usize,
    /// Largest period (in buckets) considered; capped at `len / 3` so at
    /// least three full cycles support the detection.
    pub max_period: Option<usize>,
    /// Multiplier of the `1/√n` ACF standard error used as the significance
    /// threshold (default 3 ≈ 99.7% under the white-noise null).
    pub significance: f64,
    /// Half-window of the Hampel outlier filter applied before the ACF.
    pub hampel_half_window: usize,
    /// Hampel threshold in robust standard deviations.
    pub hampel_threshold: f64,
    /// Maximum number of distinct periods reported by [`detect_periods`].
    pub max_periods: usize,
    /// Minimum prominence of an ACF peak: the ACF must dip at least this far
    /// below the peak at some shorter lag. This rejects the spuriously high
    /// "peaks" that sit on the slowly decaying initial stretch of the ACF of
    /// any smooth series.
    pub min_prominence: f64,
}

impl Default for PeriodicityConfig {
    fn default() -> Self {
        Self {
            min_period: 2,
            max_period: None,
            significance: 3.0,
            hampel_half_window: 5,
            hampel_threshold: 3.0,
            max_periods: 3,
            min_prominence: 0.1,
        }
    }
}

/// A detected period with its supporting evidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodicityResult {
    /// Period length in buckets of the analyzed series.
    pub period: usize,
    /// ACF value at the period lag.
    pub acf: f64,
    /// Fraction of tested harmonics whose ACF is also significant.
    pub harmonic_support: f64,
}

/// Detect the dominant period of a series. Returns `Ok(None)` when no
/// statistically significant periodicity is found.
pub fn detect_period(
    series: &TimeSeries,
    config: &PeriodicityConfig,
) -> Result<Option<PeriodicityResult>, TimeSeriesError> {
    Ok(detect_periods(series, config)?.into_iter().next())
}

/// Detect up to `config.max_periods` distinct periods, strongest first.
pub fn detect_periods(
    series: &TimeSeries,
    config: &PeriodicityConfig,
) -> Result<Vec<PeriodicityResult>, TimeSeriesError> {
    let n = series.len();
    if n < config.min_period * 3 || n < 6 {
        return Err(TimeSeriesError::TooShort {
            required: (config.min_period * 3).max(6),
            actual: n,
        });
    }

    // 1-2. Repair missing data, remove outliers and a linear trend.
    let filled = interpolate_missing(series.optional_values())?;
    let (clean, _) = hampel_filter(&filled, config.hampel_half_window, config.hampel_threshold);
    let detrended = detrend_linear(&clean);

    // 3-5. Iteratively find the strongest significant period, subtract its
    // per-phase (seasonal) contribution, and search the residual again. The
    // subtraction step lets nested periodicities (e.g. daily inside weekly)
    // be recovered one at a time, as RobustPeriod does with its filter bank.
    let max_lag = config
        .max_period
        .unwrap_or(usize::MAX)
        .min(n / 3)
        .max(config.min_period);
    let threshold = config.significance / (n as f64).sqrt();

    let mut remaining = detrended;
    let mut results: Vec<PeriodicityResult> = Vec::new();
    for _round in 0..config.max_periods {
        let acf: Vec<f64> = (0..=max_lag)
            .map(|lag| autocorrelation(&remaining, lag))
            .collect();

        // Local maxima of the ACF above the significance threshold. The lag
        // equal to `max_lag` itself is eligible (its right neighbour is
        // unobserved and treated as not larger), so a period sitting exactly
        // at the n/3 boundary is still detectable. Each peak must also be
        // *prominent*: the ACF has to dip well below the peak somewhere at a
        // shorter lag, otherwise the "peak" is just noise riding on the slowly
        // decaying start of the ACF of a smooth series.
        let mut candidates: Vec<(usize, f64)> = Vec::new();
        let mut running_min = f64::INFINITY;
        let prominence = config.min_prominence.max(threshold);
        for lag in config.min_period..=max_lag {
            let v = acf[lag];
            running_min = running_min.min(acf[lag - 1]);
            let right = acf.get(lag + 1).copied().unwrap_or(f64::NEG_INFINITY);
            if v > threshold && v >= acf[lag - 1] && v >= right && v - running_min >= prominence {
                candidates.push((lag, v));
            }
        }
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("ACF is finite"));

        let mut accepted: Option<PeriodicityResult> = None;
        for (lag, v) in candidates {
            // Skip lags that are (approximately) multiples of an already
            // accepted shorter period — harmonics, not new periods.
            let is_harmonic_of_existing = results.iter().any(|r| {
                let ratio = lag as f64 / r.period as f64;
                (ratio - ratio.round()).abs() < 0.05 && ratio >= 1.95
            });
            if is_harmonic_of_existing {
                continue;
            }
            let mut harmonics_tested = 0;
            let mut harmonics_ok = 0;
            let mut k = 2;
            while k * lag <= max_lag && harmonics_tested < 3 {
                harmonics_tested += 1;
                // Allow a ±1 lag slack when checking the harmonic peak.
                let around = [
                    acf.get(k * lag - 1).copied().unwrap_or(0.0),
                    acf[k * lag],
                    acf.get(k * lag + 1).copied().unwrap_or(0.0),
                ];
                if around.iter().cloned().fold(f64::MIN, f64::max) > threshold {
                    harmonics_ok += 1;
                }
                k += 1;
            }
            let harmonic_support = if harmonics_tested == 0 {
                1.0
            } else {
                harmonics_ok as f64 / harmonics_tested as f64
            };
            // Require at least half of the tested harmonics to be significant;
            // when no harmonic fits in the window the ACF peak alone decides.
            if harmonics_tested == 0 || harmonic_support >= 0.5 {
                accepted = Some(PeriodicityResult {
                    period: lag,
                    acf: v,
                    harmonic_support,
                });
                break;
            }
        }

        let Some(result) = accepted else { break };
        results.push(result);
        // Subtract the per-phase mean at the accepted period so weaker,
        // non-harmonic periodicities become visible in the next round.
        let p = result.period;
        let mut phase_sum = vec![0.0_f64; p];
        let mut phase_count = vec![0_usize; p];
        for (i, &v) in remaining.iter().enumerate() {
            phase_sum[i % p] += v;
            phase_count[i % p] += 1;
        }
        for (i, v) in remaining.iter_mut().enumerate() {
            let phase = i % p;
            if phase_count[phase] > 0 {
                *v -= phase_sum[phase] / phase_count[phase] as f64;
            }
        }
    }
    Ok(results)
}

/// Refine a candidate period against a (typically higher-resolution) series
/// by maximizing a harmonic "comb" ACF score.
///
/// Periodicity detection is usually run on a time-aggregated series to
/// suppress random effects, which quantizes the detected period to the
/// aggregation grid and lets the ACF peak drift a few aggregated lags under
/// noise or secondary (e.g. weekly) structure. A period that is even a few
/// buckets off dephases a forecast extrapolated over many cycles, so the
/// pipeline re-estimates it at full resolution: for each period `p` within
/// `candidate ± slack`, score `p` by the mean ACF over its first few
/// multiples (`acf(p)`, `acf(2p)`, `acf(3p)`). Scoring the multiples is what
/// gives the estimate its precision — an error of `e` buckets at lag `p`
/// grows to `3e` at lag `3p`, so wrong periods are punished much harder than
/// at the fundamental lag alone.
///
/// Returns the best-scoring period, or the unchanged candidate when the
/// series is too short to score any alternative.
pub fn refine_period(
    series: &TimeSeries,
    candidate: usize,
    slack: usize,
    config: &PeriodicityConfig,
) -> Result<usize, TimeSeriesError> {
    let n = series.len();
    if candidate < 2 || n < 2 * candidate {
        return Ok(candidate);
    }
    // Same cleaning as detection: repair, de-spike, detrend.
    let filled = interpolate_missing(series.optional_values())?;
    let (clean, _) = hampel_filter(&filled, config.hampel_half_window, config.hampel_threshold);
    let detrended = detrend_linear(&clean);

    let lo = candidate.saturating_sub(slack).max(2);
    let hi = (candidate + slack).min(n / 2);
    // Score every candidate over the same harmonics. The count is fixed by
    // the largest candidate (each multiple needs at least half a period of
    // overlap supporting the ACF), so no candidate gains or loses a harmonic
    // at a length cutoff inside the window — the comparison stays apples to
    // apples. k = 1 always fits because `hi <= n/2`. The higher multiples
    // are what separate the true period from a nearby impostor: an error of
    // `e` buckets at lag `p` grows to `3e` at lag `3p`.
    let harmonics = (1..=3usize)
        .take_while(|k| k * hi + hi / 2 <= n)
        .count()
        .max(1);
    let mut best = candidate;
    let mut best_score = f64::NEG_INFINITY;
    for p in lo..=hi {
        let score = (1..=harmonics)
            .map(|k| autocorrelation(&detrended, k * p))
            .sum::<f64>()
            / harmonics as f64;
        if score > best_score {
            best_score = score;
            best = p;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn periodic_series(
        n: usize,
        period: usize,
        noise: f64,
        outliers: usize,
        missing: usize,
        seed: u64,
    ) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values: Vec<Option<f64>> = (0..n)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64;
                let base = 10.0 + 5.0 * phase.sin() + 2.0 * (2.0 * phase).cos();
                Some(base + noise * (rng.gen::<f64>() - 0.5))
            })
            .collect();
        for _ in 0..outliers {
            let idx = rng.gen_range(0..n);
            values[idx] = Some(100.0 + rng.gen::<f64>() * 50.0);
        }
        for _ in 0..missing {
            let idx = rng.gen_range(0..n);
            values[idx] = None;
        }
        TimeSeries::from_optional_values(0.0, 60.0, values).unwrap()
    }

    #[test]
    fn detects_clean_periodicity() {
        let s = periodic_series(600, 24, 0.1, 0, 0, 1);
        let r = detect_period(&s, &PeriodicityConfig::default())
            .unwrap()
            .expect("period expected");
        assert_eq!(r.period, 24);
        assert!(r.acf > 0.8);
        assert!(r.harmonic_support >= 0.5);
    }

    #[test]
    fn detects_periodicity_under_noise_outliers_and_missing_data() {
        let s = periodic_series(800, 48, 4.0, 20, 30, 2);
        let r = detect_period(&s, &PeriodicityConfig::default())
            .unwrap()
            .expect("period expected");
        assert!(
            (r.period as i64 - 48).unsigned_abs() <= 1,
            "detected {} instead of 48",
            r.period
        );
    }

    #[test]
    fn white_noise_has_no_period() {
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<f64> = (0..500).map(|_| rng.gen::<f64>()).collect();
        let s = TimeSeries::from_values(0.0, 60.0, values).unwrap();
        let r = detect_period(&s, &PeriodicityConfig::default()).unwrap();
        assert!(r.is_none(), "spurious period {:?}", r);
    }

    #[test]
    fn constant_series_has_no_period() {
        let s = TimeSeries::from_values(0.0, 60.0, vec![5.0; 300]).unwrap();
        assert!(detect_period(&s, &PeriodicityConfig::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn too_short_series_is_rejected() {
        let s = TimeSeries::from_values(0.0, 60.0, vec![1.0, 2.0, 3.0]).unwrap();
        assert!(matches!(
            detect_period(&s, &PeriodicityConfig::default()),
            Err(TimeSeriesError::TooShort { .. })
        ));
    }

    #[test]
    fn nested_daily_and_weekly_periods_are_both_reported() {
        // A "daily" period of 24 buckets nested inside a "weekly" period of
        // 168 buckets — the structure of the CRS workload in the paper.
        let n = 1400;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let daily = 2.0 * std::f64::consts::PI * i as f64 / 24.0;
                let weekly = 2.0 * std::f64::consts::PI * i as f64 / 168.0;
                3.0 * daily.sin() + 6.0 * weekly.sin() + 20.0
            })
            .collect();
        let s = TimeSeries::from_values(0.0, 60.0, values).unwrap();
        let rs = detect_periods(&s, &PeriodicityConfig::default()).unwrap();
        assert!(!rs.is_empty());
        // The weekly period of 168 buckets fully explains the nested daily
        // pattern (24 divides 168), so it must be the dominant detection —
        // this is exactly the L the D_L regularizer needs.
        assert!(
            (rs[0].period as i64 - 168).abs() <= 2,
            "dominant period {} should be ~168",
            rs[0].period
        );
        // No spurious longer periods (e.g. unfiltered harmonics) may appear.
        assert!(rs.iter().all(|r| r.period <= 170));
    }

    #[test]
    fn refine_period_recovers_the_exact_period_from_a_coarse_candidate() {
        // The true period is 48; a detector working on aggregated data might
        // hand over 45 or 52 — refinement at full resolution must snap back.
        let s = periodic_series(800, 48, 2.0, 5, 10, 7);
        let config = PeriodicityConfig::default();
        for candidate in [44, 45, 48, 51, 52] {
            let refined = refine_period(&s, candidate, 6, &config).unwrap();
            assert!(
                (refined as i64 - 48).abs() <= 1,
                "candidate {candidate} refined to {refined}, expected ~48"
            );
        }
    }

    #[test]
    fn refine_period_leaves_short_series_and_degenerate_candidates_alone() {
        let s = periodic_series(100, 24, 0.1, 0, 0, 9);
        let config = PeriodicityConfig::default();
        // Series shorter than two candidate periods: unchanged.
        assert_eq!(refine_period(&s, 60, 10, &config).unwrap(), 60);
        // Degenerate candidates: unchanged.
        assert_eq!(refine_period(&s, 0, 5, &config).unwrap(), 0);
        assert_eq!(refine_period(&s, 1, 5, &config).unwrap(), 1);
    }

    #[test]
    fn respects_max_period_cap() {
        let s = periodic_series(600, 24, 0.1, 0, 0, 5);
        let config = PeriodicityConfig {
            max_period: Some(10),
            ..PeriodicityConfig::default()
        };
        // The 24-bucket period cannot be found when the cap is 10; either a
        // harmonic-free sub-period or nothing is returned, but never > 10.
        let rs = detect_periods(&s, &config).unwrap();
        assert!(rs.iter().all(|r| r.period <= 10));
    }
}
