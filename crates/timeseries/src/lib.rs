//! Time-series substrate for the RobustScaler reproduction.
//!
//! RobustScaler's first module (paper Fig. 2) aggregates the raw query
//! arrival log into a QPS series, applies robust filtering, and detects
//! periodic patterns even under noise, missing data and anomalies. This
//! crate provides:
//!
//! * [`series::TimeSeries`] — a regularly spaced series with explicit
//!   missing-value support, plus aggregation from raw arrival timestamps,
//! * [`ring::CountRing`] — bounded, incremental count aggregation for the
//!   online serving layer (`robustscaler-online`),
//! * [`filters`] — moving averages, rolling medians, Hampel filtering and
//!   missing-value interpolation,
//! * [`periodicity`] — a robust autocorrelation-based period detector in the
//!   spirit of RobustPeriod (the paper's reference \[18\]),
//! * [`decompose`] — a lightweight robust seasonal-trend decomposition used
//!   for diagnostics and trace characterization, and
//! * [`anomaly`] — MAD-based anomaly detection used by the robustness
//!   experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anomaly;
pub mod decompose;
pub mod error;
pub mod filters;
pub mod periodicity;
pub mod ring;
pub mod series;

pub use anomaly::{detect_anomalies, AnomalyReport};
pub use decompose::{robust_stl, Decomposition};
pub use error::TimeSeriesError;
pub use periodicity::{
    detect_period, detect_periods, refine_period, PeriodicityConfig, PeriodicityResult,
};
pub use ring::{CountRing, RingSnapshot, RING_SNAPSHOT_VERSION};
pub use series::TimeSeries;
