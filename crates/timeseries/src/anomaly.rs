//! MAD-based anomaly detection.
//!
//! Used by the robustness experiments (paper §VII-B3) to locate and erase
//! bursts in the Alibaba-like trace, and as a diagnostic on the noisy
//! CRS-like trace.

use crate::error::TimeSeriesError;
use crate::filters::{interpolate_missing, rolling_median};
use crate::series::TimeSeries;
use robustscaler_stats::{mad, median};
use serde::{Deserialize, Serialize};

/// Result of anomaly detection on a series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyReport {
    /// Indices of buckets flagged as anomalous.
    pub indices: Vec<usize>,
    /// Robust z-scores of every bucket (|x − rolling median| / (1.4826·MAD)).
    pub scores: Vec<f64>,
    /// Threshold that was applied to the scores.
    pub threshold: f64,
}

impl AnomalyReport {
    /// Fraction of buckets flagged anomalous.
    pub fn anomaly_rate(&self) -> f64 {
        if self.scores.is_empty() {
            0.0
        } else {
            self.indices.len() as f64 / self.scores.len() as f64
        }
    }
}

/// Detect anomalous buckets whose robust z-score against a rolling median
/// baseline exceeds `threshold` (typically 3–6).
///
/// `window_half` controls the rolling-median baseline window
/// (`2·window_half + 1` buckets).
pub fn detect_anomalies(
    series: &TimeSeries,
    window_half: usize,
    threshold: f64,
) -> Result<AnomalyReport, TimeSeriesError> {
    if !(threshold > 0.0) {
        return Err(TimeSeriesError::InvalidParameter("threshold must be > 0"));
    }
    if series.len() < 3 {
        return Err(TimeSeriesError::TooShort {
            required: 3,
            actual: series.len(),
        });
    }
    let filled = interpolate_missing(series.optional_values())?;
    let baseline = rolling_median(&filled, window_half);
    let residuals: Vec<f64> = filled
        .iter()
        .zip(baseline.iter())
        .map(|(x, b)| x - b)
        .collect();
    // Global robust scale of the residuals.
    let med = median(&residuals).expect("non-empty");
    let scale = 1.4826 * mad(&residuals).expect("non-empty");
    let scale = if scale > 0.0 { scale } else { 1.0 };

    let scores: Vec<f64> = residuals.iter().map(|r| (r - med).abs() / scale).collect();
    let indices: Vec<usize> = scores
        .iter()
        .enumerate()
        .filter(|(_, &s)| s > threshold)
        .map(|(i, _)| i)
        .collect();
    Ok(AnomalyReport {
        indices,
        scores,
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_series_with_burst(n: usize, burst_at: usize, burst_len: usize) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(7);
        let mut values: Vec<f64> = (0..n)
            .map(|i| {
                10.0 + 3.0 * (2.0 * std::f64::consts::PI * i as f64 / 50.0).sin() + rng.gen::<f64>()
            })
            .collect();
        for v in values.iter_mut().skip(burst_at).take(burst_len) {
            *v += 200.0;
        }
        TimeSeries::from_values(0.0, 60.0, values).unwrap()
    }

    #[test]
    fn rejects_bad_inputs() {
        let s = TimeSeries::from_values(0.0, 1.0, vec![1.0, 2.0]).unwrap();
        assert!(detect_anomalies(&s, 3, 3.0).is_err());
        let s2 = TimeSeries::from_values(0.0, 1.0, vec![1.0; 10]).unwrap();
        assert!(detect_anomalies(&s2, 3, 0.0).is_err());
    }

    #[test]
    fn finds_injected_burst() {
        let s = noisy_series_with_burst(500, 200, 5);
        let report = detect_anomalies(&s, 10, 5.0).unwrap();
        for i in 200..205 {
            assert!(report.indices.contains(&i), "missed burst bucket {i}");
        }
        // Few false positives.
        assert!(report.anomaly_rate() < 0.05, "{}", report.anomaly_rate());
        assert_eq!(report.threshold, 5.0);
        assert_eq!(report.scores.len(), 500);
    }

    #[test]
    fn clean_series_has_few_anomalies() {
        let mut rng = StdRng::seed_from_u64(8);
        let values: Vec<f64> = (0..400).map(|_| 5.0 + rng.gen::<f64>()).collect();
        let s = TimeSeries::from_values(0.0, 60.0, values).unwrap();
        let report = detect_anomalies(&s, 10, 6.0).unwrap();
        assert!(report.anomaly_rate() < 0.02);
    }

    #[test]
    fn constant_series_has_no_anomalies() {
        let s = TimeSeries::from_values(0.0, 60.0, vec![4.0; 100]).unwrap();
        let report = detect_anomalies(&s, 5, 3.0).unwrap();
        assert!(report.indices.is_empty());
        assert_eq!(report.anomaly_rate(), 0.0);
    }
}
