//! Regularly spaced time series with explicit missing values.

use crate::error::TimeSeriesError;
use serde::{Deserialize, Serialize};

/// A regularly spaced time series.
///
/// `values[t]` covers the half-open interval
/// `[start + t·bucket_width, start + (t+1)·bucket_width)`; `None` marks a
/// missing observation (e.g. a monitoring gap).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    start: f64,
    bucket_width: f64,
    values: Vec<Option<f64>>,
}

impl TimeSeries {
    /// Create a series from fully observed values.
    pub fn from_values(
        start: f64,
        bucket_width: f64,
        values: Vec<f64>,
    ) -> Result<Self, TimeSeriesError> {
        if !(bucket_width > 0.0) {
            return Err(TimeSeriesError::InvalidBucketWidth(bucket_width));
        }
        Ok(Self {
            start,
            bucket_width,
            values: values.into_iter().map(Some).collect(),
        })
    }

    /// Create a series that may contain missing observations.
    pub fn from_optional_values(
        start: f64,
        bucket_width: f64,
        values: Vec<Option<f64>>,
    ) -> Result<Self, TimeSeriesError> {
        if !(bucket_width > 0.0) {
            return Err(TimeSeriesError::InvalidBucketWidth(bucket_width));
        }
        Ok(Self {
            start,
            bucket_width,
            values,
        })
    }

    /// Aggregate raw event timestamps into a count-per-bucket series
    /// covering `[start, end)`. Events outside the range are ignored.
    pub fn from_event_times(
        events: &[f64],
        start: f64,
        end: f64,
        bucket_width: f64,
    ) -> Result<Self, TimeSeriesError> {
        if !(bucket_width > 0.0) {
            return Err(TimeSeriesError::InvalidBucketWidth(bucket_width));
        }
        if !(end > start) {
            return Err(TimeSeriesError::InvalidParameter("end must exceed start"));
        }
        let buckets = ((end - start) / bucket_width).ceil() as usize;
        let mut counts = vec![0.0_f64; buckets];
        for &t in events {
            if t < start || t >= end {
                continue;
            }
            let idx = ((t - start) / bucket_width) as usize;
            if idx < buckets {
                counts[idx] += 1.0;
            }
        }
        Self::from_values(start, bucket_width, counts)
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no buckets.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Start time of the series.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Width of each bucket in seconds.
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }

    /// End time (exclusive) of the series.
    pub fn end(&self) -> f64 {
        self.start + self.bucket_width * self.values.len() as f64
    }

    /// The time at the left edge of bucket `t`.
    pub fn time_at(&self, t: usize) -> f64 {
        self.start + self.bucket_width * t as f64
    }

    /// Value of bucket `t` (`None` if missing or out of range).
    pub fn get(&self, t: usize) -> Option<f64> {
        self.values.get(t).copied().flatten()
    }

    /// Borrow the raw optional values.
    pub fn optional_values(&self) -> &[Option<f64>] {
        &self.values
    }

    /// Number of missing buckets.
    pub fn missing_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_none()).count()
    }

    /// Observed values with missing buckets skipped.
    pub fn observed_values(&self) -> Vec<f64> {
        self.values.iter().filter_map(|v| *v).collect()
    }

    /// Values with missing buckets replaced by `fill`.
    pub fn values_filled(&self, fill: f64) -> Vec<f64> {
        self.values.iter().map(|v| v.unwrap_or(fill)).collect()
    }

    /// Convert a count series to a rate (per-second) series by dividing by
    /// the bucket width — the "QPS" view used throughout the paper.
    pub fn to_rate(&self) -> TimeSeries {
        TimeSeries {
            start: self.start,
            bucket_width: self.bucket_width,
            values: self
                .values
                .iter()
                .map(|v| v.map(|x| x / self.bucket_width))
                .collect(),
        }
    }

    /// Mark a closed time range `[from, to)` as missing and return the
    /// number of buckets affected (used by the missing-data experiments).
    pub fn mask_range(&mut self, from: f64, to: f64) -> usize {
        let mut masked = 0;
        for t in 0..self.values.len() {
            let left = self.time_at(t);
            if left >= from && left < to && self.values[t].is_some() {
                self.values[t] = None;
                masked += 1;
            }
        }
        masked
    }

    /// Set the value of bucket `t`.
    pub fn set(&mut self, t: usize, value: Option<f64>) {
        if t < self.values.len() {
            self.values[t] = value;
        }
    }

    /// Aggregate the series by averaging disjoint windows of `window`
    /// buckets (the time-aggregation step of the periodicity-detection
    /// module). Missing values are skipped; a window with no observed value
    /// becomes missing.
    pub fn aggregate_mean(&self, window: usize) -> Result<TimeSeries, TimeSeriesError> {
        if window == 0 {
            return Err(TimeSeriesError::InvalidParameter("window must be >= 1"));
        }
        let mut out = Vec::with_capacity(self.values.len().div_ceil(window));
        for chunk in self.values.chunks(window) {
            let observed: Vec<f64> = chunk.iter().filter_map(|v| *v).collect();
            if observed.is_empty() {
                out.push(None);
            } else {
                out.push(Some(observed.iter().sum::<f64>() / observed.len() as f64));
            }
        }
        Ok(TimeSeries {
            start: self.start,
            bucket_width: self.bucket_width * window as f64,
            values: out,
        })
    }

    /// Mean of the observed values.
    pub fn mean(&self) -> Result<f64, TimeSeriesError> {
        let observed = self.observed_values();
        if observed.is_empty() {
            return Err(TimeSeriesError::AllMissing);
        }
        Ok(robustscaler_stats::mean(&observed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_bucket_width() {
        assert!(TimeSeries::from_values(0.0, 0.0, vec![1.0]).is_err());
        assert!(TimeSeries::from_values(0.0, -5.0, vec![1.0]).is_err());
        assert!(TimeSeries::from_optional_values(0.0, 0.0, vec![Some(1.0)]).is_err());
        let s = TimeSeries::from_values(10.0, 60.0, vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.start(), 10.0);
        assert_eq!(s.bucket_width(), 60.0);
        assert_eq!(s.end(), 190.0);
        assert_eq!(s.time_at(2), 130.0);
    }

    #[test]
    fn aggregation_from_event_times_counts_correctly() {
        let events = [0.5, 1.5, 1.7, 59.0, 60.0, 61.0, 179.9, 200.0, -1.0];
        let s = TimeSeries::from_event_times(&events, 0.0, 180.0, 60.0).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0), Some(4.0));
        assert_eq!(s.get(1), Some(2.0));
        assert_eq!(s.get(2), Some(1.0));
        assert!(TimeSeries::from_event_times(&events, 10.0, 10.0, 60.0).is_err());
        assert!(TimeSeries::from_event_times(&events, 0.0, 100.0, 0.0).is_err());
    }

    #[test]
    fn rate_conversion_divides_by_bucket_width() {
        let s = TimeSeries::from_values(0.0, 60.0, vec![120.0, 60.0, 0.0]).unwrap();
        let qps = s.to_rate();
        assert_eq!(qps.get(0), Some(2.0));
        assert_eq!(qps.get(1), Some(1.0));
        assert_eq!(qps.get(2), Some(0.0));
    }

    #[test]
    fn missing_values_are_tracked() {
        let mut s = TimeSeries::from_values(0.0, 1.0, (0..10).map(|i| i as f64).collect()).unwrap();
        assert_eq!(s.missing_count(), 0);
        let masked = s.mask_range(3.0, 6.0);
        assert_eq!(masked, 3);
        assert_eq!(s.missing_count(), 3);
        assert_eq!(s.get(3), None);
        assert_eq!(s.get(6), Some(6.0));
        assert_eq!(s.observed_values().len(), 7);
        assert_eq!(s.values_filled(-1.0)[4], -1.0);
        s.set(3, Some(99.0));
        assert_eq!(s.get(3), Some(99.0));
        s.set(100, Some(1.0)); // out of range is a no-op
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn aggregate_mean_averages_windows_and_handles_missing() {
        let mut s = TimeSeries::from_values(0.0, 1.0, vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0]).unwrap();
        let agg = s.aggregate_mean(2).unwrap();
        assert_eq!(agg.len(), 3);
        assert_eq!(agg.get(0), Some(2.0));
        assert_eq!(agg.get(1), Some(6.0));
        assert_eq!(agg.get(2), Some(10.0));
        assert_eq!(agg.bucket_width(), 2.0);

        s.mask_range(0.0, 2.0);
        let agg2 = s.aggregate_mean(2).unwrap();
        assert_eq!(agg2.get(0), None);
        assert!(s.aggregate_mean(0).is_err());

        // Uneven tail window still aggregates.
        let s3 = TimeSeries::from_values(0.0, 1.0, vec![2.0, 4.0, 6.0]).unwrap();
        let agg3 = s3.aggregate_mean(2).unwrap();
        assert_eq!(agg3.len(), 2);
        assert_eq!(agg3.get(1), Some(6.0));
    }

    #[test]
    fn mean_requires_observed_values() {
        let s = TimeSeries::from_optional_values(0.0, 1.0, vec![None, None]).unwrap();
        assert!(matches!(s.mean(), Err(TimeSeriesError::AllMissing)));
        let s2 = TimeSeries::from_values(0.0, 1.0, vec![2.0, 4.0]).unwrap();
        assert_eq!(s2.mean().unwrap(), 3.0);
    }

    #[test]
    fn serde_round_trip() {
        let s =
            TimeSeries::from_optional_values(5.0, 2.0, vec![Some(1.0), None, Some(3.0)]).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: TimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
