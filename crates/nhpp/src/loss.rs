//! The periodicity-regularized NHPP training loss (paper eq. 1).
//!
//! `loss(r) = −Qᵀr + Δt·1ᵀeʳ + β₁‖D₂r‖₁ + (β₂/2)‖D_L r‖₂²`
//!
//! The loss value and (sub)gradient are exposed so tests can verify the ADMM
//! solution's optimality and so the ablation benches can compare against a
//! plain proximal-gradient baseline.

use crate::error::NhppError;
use robustscaler_linalg::{DifferenceOperator, ForwardDifference, SecondDifference};
use serde::{Deserialize, Serialize};

/// Configuration of the regularized loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegularizedLossConfig {
    /// Bucket width Δt in seconds.
    pub bucket_width: f64,
    /// Weight β₁ of the ℓ1 second-difference (trend-filter) penalty.
    pub beta1: f64,
    /// Weight β₂ of the ℓ2 periodic-difference penalty.
    pub beta2: f64,
    /// Period length `L` in buckets; `None` disables the periodic penalty.
    pub period: Option<usize>,
}

impl RegularizedLossConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), NhppError> {
        if !(self.bucket_width > 0.0) {
            return Err(NhppError::InvalidParameter("bucket width must be > 0"));
        }
        if self.beta1 < 0.0 || self.beta2 < 0.0 {
            return Err(NhppError::InvalidParameter(
                "regularization weights must be non-negative",
            ));
        }
        if let Some(period) = self.period {
            if period < 1 {
                return Err(NhppError::InvalidParameter("period must be >= 1"));
            }
        }
        Ok(())
    }
}

/// Evaluator of the regularized NHPP loss for a fixed count vector `Q`.
#[derive(Debug, Clone)]
pub struct RegularizedLoss {
    counts: Vec<f64>,
    config: RegularizedLossConfig,
    d2: SecondDifference,
    dl: Option<ForwardDifference>,
}

impl RegularizedLoss {
    /// Create the loss for the given per-bucket counts.
    pub fn new(counts: Vec<f64>, config: RegularizedLossConfig) -> Result<Self, NhppError> {
        config.validate()?;
        if counts.is_empty() {
            return Err(NhppError::InvalidParameter("counts must be non-empty"));
        }
        if counts.iter().any(|c| !c.is_finite() || *c < 0.0) {
            return Err(NhppError::InvalidParameter(
                "counts must be finite and non-negative",
            ));
        }
        let t = counts.len();
        let dl = match config.period {
            Some(period) if period < t => {
                Some(ForwardDifference::new(t, period).expect("period >= 1 validated above"))
            }
            _ => None,
        };
        Ok(Self {
            counts,
            config,
            d2: SecondDifference::new(t),
            dl,
        })
    }

    /// Number of buckets `T`.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the loss covers no buckets (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The per-bucket counts `Q`.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// The configuration used.
    pub fn config(&self) -> &RegularizedLossConfig {
        &self.config
    }

    /// The second-difference operator `D₂`.
    pub fn second_difference(&self) -> &SecondDifference {
        &self.d2
    }

    /// The periodic difference operator `D_L`, when a period is configured
    /// and shorter than the series.
    pub fn periodic_difference(&self) -> Option<&ForwardDifference> {
        self.dl.as_ref()
    }

    /// The smooth (differentiable) part of the loss:
    /// `−Qᵀr + Δt·1ᵀeʳ + (β₂/2)‖D_L r‖²`.
    pub fn smooth_value(&self, r: &[f64]) -> f64 {
        let dt = self.config.bucket_width;
        let mut value = 0.0;
        for (q, &ri) in self.counts.iter().zip(r.iter()) {
            value += -q * ri + dt * ri.exp();
        }
        if let Some(dl) = &self.dl {
            let z = dl.apply(r).expect("dimension fixed at construction");
            value += 0.5 * self.config.beta2 * z.iter().map(|v| v * v).sum::<f64>();
        }
        value
    }

    /// The non-smooth part `β₁‖D₂ r‖₁`.
    pub fn l1_value(&self, r: &[f64]) -> f64 {
        let y = self.d2.apply(r).expect("dimension fixed at construction");
        self.config.beta1 * y.iter().map(|v| v.abs()).sum::<f64>()
    }

    /// Full loss value.
    pub fn value(&self, r: &[f64]) -> f64 {
        self.smooth_value(r) + self.l1_value(r)
    }

    /// Gradient of the smooth part.
    pub fn smooth_gradient(&self, r: &[f64]) -> Vec<f64> {
        let dt = self.config.bucket_width;
        let mut grad: Vec<f64> = self
            .counts
            .iter()
            .zip(r.iter())
            .map(|(q, &ri)| -q + dt * ri.exp())
            .collect();
        if let Some(dl) = &self.dl {
            let z = dl.apply(r).expect("dimension fixed at construction");
            let back = dl
                .apply_transpose(&z)
                .expect("dimension fixed at construction");
            for (g, b) in grad.iter_mut().zip(back.iter()) {
                *g += self.config.beta2 * b;
            }
        }
        grad
    }

    /// A subgradient of the full loss (using `sign(0) = 0` for the ℓ1 term).
    pub fn subgradient(&self, r: &[f64]) -> Vec<f64> {
        let mut grad = self.smooth_gradient(r);
        let y = self.d2.apply(r).expect("dimension fixed at construction");
        let signs: Vec<f64> = y.iter().map(|v| v.signum()).collect();
        let back = self
            .d2
            .apply_transpose(&signs)
            .expect("dimension fixed at construction");
        for (g, b) in grad.iter_mut().zip(back.iter()) {
            *g += self.config.beta1 * b;
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(beta1: f64, beta2: f64, period: Option<usize>) -> RegularizedLossConfig {
        RegularizedLossConfig {
            bucket_width: 2.0,
            beta1,
            beta2,
            period,
        }
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(RegularizedLoss::new(vec![], config(0.1, 0.1, None)).is_err());
        assert!(RegularizedLoss::new(vec![-1.0], config(0.1, 0.1, None)).is_err());
        assert!(RegularizedLoss::new(
            vec![1.0],
            RegularizedLossConfig {
                bucket_width: 0.0,
                beta1: 0.1,
                beta2: 0.1,
                period: None
            }
        )
        .is_err());
        assert!(RegularizedLoss::new(vec![1.0], config(-0.1, 0.1, None)).is_err());
        let loss = RegularizedLoss::new(vec![1.0, 2.0, 3.0], config(0.1, 0.2, Some(2))).unwrap();
        assert_eq!(loss.len(), 3);
        assert!(!loss.is_empty());
        assert!(loss.periodic_difference().is_some());
        // A period longer than the series disables the periodic penalty.
        let loss2 = RegularizedLoss::new(vec![1.0, 2.0, 3.0], config(0.1, 0.2, Some(10))).unwrap();
        assert!(loss2.periodic_difference().is_none());
    }

    #[test]
    fn unregularized_loss_is_minimized_at_log_qps() {
        // With β₁ = β₂ = 0 the minimizer is r_t = log(Q_t / Δt).
        let counts = vec![4.0, 10.0, 1.0];
        let loss = RegularizedLoss::new(counts.clone(), config(0.0, 0.0, None)).unwrap();
        let optimum: Vec<f64> = counts.iter().map(|q| (q / 2.0).ln()).collect();
        let grad = loss.smooth_gradient(&optimum);
        for g in grad {
            assert!(g.abs() < 1e-10);
        }
        // Perturbations increase the loss.
        let base = loss.value(&optimum);
        for i in 0..counts.len() {
            let mut r = optimum.clone();
            r[i] += 0.1;
            assert!(loss.value(&r) > base);
            r[i] -= 0.2;
            assert!(loss.value(&r) > base);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let counts = vec![3.0, 0.0, 5.0, 2.0, 8.0, 1.0];
        let loss = RegularizedLoss::new(counts, config(0.0, 0.7, Some(2))).unwrap();
        let r: Vec<f64> = (0..6).map(|i| 0.3 * (i as f64) - 1.0).collect();
        let grad = loss.smooth_gradient(&r);
        let eps = 1e-6;
        for i in 0..r.len() {
            let mut plus = r.clone();
            plus[i] += eps;
            let mut minus = r.clone();
            minus[i] -= eps;
            let fd = (loss.smooth_value(&plus) - loss.smooth_value(&minus)) / (2.0 * eps);
            assert!(
                (grad[i] - fd).abs() < 1e-5,
                "i={i}: analytic {} vs fd {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn subgradient_matches_finite_differences_away_from_kinks() {
        let counts = vec![3.0, 1.0, 5.0, 2.0, 8.0, 1.0, 4.0];
        let loss = RegularizedLoss::new(counts, config(0.5, 0.3, Some(3))).unwrap();
        // A strictly convex-position r whose second differences are nonzero,
        // so the ℓ1 term is differentiable there.
        let r: Vec<f64> = (0..7).map(|i| ((i * i) as f64) * 0.05).collect();
        let grad = loss.subgradient(&r);
        let eps = 1e-6;
        for i in 0..r.len() {
            let mut plus = r.clone();
            plus[i] += eps;
            let mut minus = r.clone();
            minus[i] -= eps;
            let fd = (loss.value(&plus) - loss.value(&minus)) / (2.0 * eps);
            assert!(
                (grad[i] - fd).abs() < 1e-4,
                "i={i}: analytic {} vs fd {fd}",
                grad[i]
            );
        }
    }

    #[test]
    fn periodic_penalty_prefers_periodic_solutions() {
        let counts = vec![2.0; 8];
        let loss = RegularizedLoss::new(counts, config(0.0, 10.0, Some(4))).unwrap();
        let periodic = vec![0.1, 0.5, -0.2, 0.3, 0.1, 0.5, -0.2, 0.3];
        let aperiodic = vec![0.1, 0.5, -0.2, 0.3, 0.5, -0.3, 0.4, 0.0];
        // Compare only the penalty parts by subtracting the likelihood part.
        let likelihood = |r: &[f64]| {
            let unpenalized = RegularizedLoss::new(vec![2.0; 8], config(0.0, 0.0, None)).unwrap();
            unpenalized.value(r)
        };
        let pen_periodic = loss.value(&periodic) - likelihood(&periodic);
        let pen_aperiodic = loss.value(&aperiodic) - likelihood(&aperiodic);
        assert!(pen_periodic < 1e-12);
        assert!(pen_aperiodic > 0.1);
    }
}
