//! Error type for the NHPP crate.

use robustscaler_linalg::LinalgError;
use robustscaler_stats::StatsError;
use robustscaler_timeseries::TimeSeriesError;
use std::fmt;

/// Errors produced by NHPP modeling, training and sampling.
#[derive(Debug, Clone, PartialEq)]
pub enum NhppError {
    /// A parameter was invalid.
    InvalidParameter(&'static str),
    /// The training series is unusable (too short, all missing, ...).
    InvalidSeries(TimeSeriesError),
    /// The ADMM linear algebra failed.
    Linalg(LinalgError),
    /// A statistical routine failed.
    Stats(StatsError),
    /// The trainer did not converge within its iteration budget.
    NonConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final primal residual.
        residual: f64,
    },
    /// A snapshot carries a format version this build does not understand.
    UnsupportedSnapshotVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Newest version this build supports.
        supported: u32,
    },
    /// A query was made outside the model's defined time range.
    OutOfRange {
        /// The offending time.
        time: f64,
        /// Start of the valid range.
        start: f64,
        /// End of the valid range.
        end: f64,
    },
}

impl fmt::Display for NhppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NhppError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            NhppError::InvalidSeries(e) => write!(f, "invalid training series: {e}"),
            NhppError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            NhppError::Stats(e) => write!(f, "statistics failure: {e}"),
            NhppError::NonConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "ADMM did not converge after {iterations} iterations (residual {residual:e})"
            ),
            NhppError::UnsupportedSnapshotVersion { found, supported } => {
                write!(
                    f,
                    "forecaster snapshot version {found} not supported (this build reads <= {supported})"
                )
            }
            NhppError::OutOfRange { time, start, end } => {
                write!(f, "time {time} outside the model range [{start}, {end})")
            }
        }
    }
}

impl std::error::Error for NhppError {}

impl From<LinalgError> for NhppError {
    fn from(e: LinalgError) -> Self {
        NhppError::Linalg(e)
    }
}

impl From<StatsError> for NhppError {
    fn from(e: StatsError) -> Self {
        NhppError::Stats(e)
    }
}

impl From<TimeSeriesError> for NhppError {
    fn from(e: TimeSeriesError) -> Self {
        NhppError::InvalidSeries(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: NhppError = LinalgError::InvalidArgument("x").into();
        assert!(e.to_string().contains("linear algebra"));
        let e: NhppError = StatsError::EmptySample.into();
        assert!(e.to_string().contains("statistics"));
        let e: NhppError = TimeSeriesError::AllMissing.into();
        assert!(e.to_string().contains("training series"));
        let e = NhppError::OutOfRange {
            time: 5.0,
            start: 0.0,
            end: 3.0,
        };
        assert!(e.to_string().contains("outside"));
        assert!(NhppError::NonConvergence {
            iterations: 7,
            residual: 0.1
        }
        .to_string()
        .contains("7"));
        assert!(NhppError::InvalidParameter("rho")
            .to_string()
            .contains("rho"));
    }
}
