//! Non-homogeneous Poisson process (NHPP) modeling for RobustScaler.
//!
//! This crate implements the paper's second and third modules:
//!
//! * [`intensity`] — the [`Intensity`] abstraction (piecewise-constant and
//!   closed-form intensities) with exact integrated intensity and its
//!   inverse, the primitives behind both sampling and scaling decisions,
//! * [`loss`] — the periodicity-regularized negative log-likelihood of
//!   eq. (1),
//! * [`admm`] — the quadratically approximated ADMM trainer of Algorithm 2,
//!   using a banded Cholesky or a matrix-free conjugate gradient for the
//!   `r`-subproblem,
//! * [`model`] — the fitted [`NhppModel`] tying the learned log-intensities
//!   to wall-clock time,
//! * [`forecast`] — periodic extrapolation of the fitted intensity into the
//!   future (module 3 of the paper's framework),
//! * [`sampling`] — exact NHPP simulation by per-bucket Poisson counts and
//!   Ogata thinning, and
//! * [`rescale`] — the time-rescaling transform used by the QoS guarantee
//!   analysis (Propositions 1 and 2) and by goodness-of-fit tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admm;
pub mod error;
pub mod forecast;
pub mod intensity;
pub mod loss;
pub mod model;
pub mod rescale;
pub mod sampling;

pub use admm::{AdmmConfig, AdmmReport, AdmmSolver};
pub use error::NhppError;
pub use forecast::{ForecastConfig, Forecaster, ForecasterSnapshot, FORECASTER_SNAPSHOT_VERSION};
pub use intensity::{
    ClosedFormIntensity, Intensity, InverseCursor, InverseHint, PiecewiseConstantIntensity,
};
pub use loss::{RegularizedLoss, RegularizedLossConfig};
pub use model::NhppModel;
pub use rescale::{rescale_arrivals, rescaled_ks_statistic};
pub use sampling::{sample_arrivals, sample_arrivals_thinning};
