//! Exact simulation of NHPP arrival times.
//!
//! Two samplers are provided:
//!
//! * [`sample_arrivals`] — time-rescaling: successive arrival times are
//!   `t_{k+1} = Λ⁻¹(t_k, E_k)` with `E_k ~ Exp(1)`. Exact whenever the
//!   intensity's integrated form is exact (always true for
//!   piecewise-constant intensities).
//! * [`sample_arrivals_thinning`] — Ogata thinning against an upper bound of
//!   the rate. Used as an independent cross-check in tests and for closed
//!   form intensities whose `Λ⁻¹` is only available numerically.

use crate::intensity::Intensity;
use rand::Rng;

/// Sample all arrival times in `[from, to)` by time-rescaling.
pub fn sample_arrivals<I, R>(intensity: &I, from: f64, to: f64, rng: &mut R) -> Vec<f64>
where
    I: Intensity,
    R: Rng + ?Sized,
{
    debug_assert!(to >= from, "sampling window must be non-empty");
    let mut arrivals = Vec::new();
    let mut current = from;
    loop {
        let exp: f64 = {
            let u: f64 = rng.gen::<f64>();
            -(1.0 - u).ln()
        };
        let next = intensity.inverse_integrated(current, exp);
        if !next.is_finite() || next >= to {
            break;
        }
        // Guard against pathological zero-progress (zero-rate plateaus are
        // handled inside inverse_integrated, but stay safe).
        if next <= current {
            break;
        }
        arrivals.push(next);
        current = next;
    }
    arrivals
}

/// Sample all arrival times in `[from, to)` by Ogata thinning.
///
/// The candidate stream is a homogeneous Poisson process at the rate bound
/// returned by [`Intensity::max_rate`]; candidates are accepted with
/// probability `λ(t)/bound`.
pub fn sample_arrivals_thinning<I, R>(intensity: &I, from: f64, to: f64, rng: &mut R) -> Vec<f64>
where
    I: Intensity,
    R: Rng + ?Sized,
{
    debug_assert!(to >= from, "sampling window must be non-empty");
    let bound = intensity.max_rate(from, to);
    if bound <= 0.0 {
        return Vec::new();
    }
    let mut arrivals = Vec::new();
    let mut current = from;
    loop {
        let u: f64 = rng.gen::<f64>();
        current += -(1.0 - u).ln() / bound;
        if current >= to {
            break;
        }
        let accept: f64 = rng.gen::<f64>();
        if accept * bound <= intensity.rate(current) {
            arrivals.push(current);
        }
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::{ClosedFormIntensity, PiecewiseConstantIntensity};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn homogeneous_counts_match_poisson_mean_and_variance() {
        let intensity = PiecewiseConstantIntensity::new(0.0, 100.0, vec![0.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let runs = 2000;
        let counts: Vec<f64> = (0..runs)
            .map(|_| sample_arrivals(&intensity, 0.0, 100.0, &mut rng).len() as f64)
            .collect();
        let mean = counts.iter().sum::<f64>() / runs as f64;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (runs as f64 - 1.0);
        // True mean and variance are both 50.
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
        assert!((var - 50.0).abs() < 6.0, "var {var}");
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_inside_the_window() {
        let intensity =
            PiecewiseConstantIntensity::new(10.0, 5.0, vec![0.1, 2.0, 0.0, 1.0, 0.3]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let arrivals = sample_arrivals(&intensity, 10.0, 35.0, &mut rng);
        for w in arrivals.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(arrivals.iter().all(|&t| (10.0..35.0).contains(&t)));
    }

    #[test]
    fn zero_intensity_produces_no_arrivals() {
        let intensity = PiecewiseConstantIntensity::new(0.0, 10.0, vec![0.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sample_arrivals(&intensity, 0.0, 20.0, &mut rng).is_empty());
        assert!(sample_arrivals_thinning(&intensity, 0.0, 20.0, &mut rng).is_empty());
    }

    #[test]
    fn zero_rate_buckets_receive_no_arrivals() {
        let intensity = PiecewiseConstantIntensity::new(0.0, 10.0, vec![1.0, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let arrivals = sample_arrivals(&intensity, 0.0, 30.0, &mut rng);
        assert!(!arrivals.is_empty());
        assert!(arrivals.iter().all(|&t| !(10.0..20.0).contains(&t)));
    }

    #[test]
    fn rescaling_and_thinning_agree_on_bucket_proportions() {
        // Non-homogeneous: second half has 4x the rate of the first half.
        let intensity = PiecewiseConstantIntensity::new(0.0, 50.0, vec![0.2, 0.8]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut first_rescale = 0usize;
        let mut total_rescale = 0usize;
        let mut first_thin = 0usize;
        let mut total_thin = 0usize;
        for _ in 0..400 {
            let a = sample_arrivals(&intensity, 0.0, 100.0, &mut rng);
            first_rescale += a.iter().filter(|&&t| t < 50.0).count();
            total_rescale += a.len();
            let b = sample_arrivals_thinning(&intensity, 0.0, 100.0, &mut rng);
            first_thin += b.iter().filter(|&&t| t < 50.0).count();
            total_thin += b.len();
        }
        let frac_rescale = first_rescale as f64 / total_rescale as f64;
        let frac_thin = first_thin as f64 / total_thin as f64;
        // The first bucket holds 20% of the total mass.
        assert!((frac_rescale - 0.2).abs() < 0.02, "{frac_rescale}");
        assert!((frac_thin - 0.2).abs() < 0.02, "{frac_thin}");
        // Totals agree between the two exact samplers.
        let mean_rescale = total_rescale as f64 / 400.0;
        let mean_thin = total_thin as f64 / 400.0;
        assert!((mean_rescale - 50.0).abs() < 1.5, "{mean_rescale}");
        assert!((mean_thin - 50.0).abs() < 1.5, "{mean_thin}");
    }

    #[test]
    fn closed_form_intensity_sampling_matches_expected_mass() {
        // λ(t) = 2 + sin(t/5), total mass over [0, 100] = 200 + 5(1-cos(20)).
        let intensity = ClosedFormIntensity::new(|t: f64| 2.0 + (t / 5.0).sin(), 0.05).unwrap();
        let expected = 200.0 + 5.0 * (1.0 - (20.0_f64).cos());
        let mut rng = StdRng::seed_from_u64(6);
        let runs = 200;
        let total: usize = (0..runs)
            .map(|_| sample_arrivals_thinning(&intensity, 0.0, 100.0, &mut rng).len())
            .sum();
        let mean = total as f64 / runs as f64;
        assert!(
            (mean - expected).abs() < 0.05 * expected,
            "mean {mean} vs expected {expected}"
        );
    }
}
