//! Quadratically approximated ADMM for the regularized NHPP loss
//! (paper Algorithm 2).
//!
//! Auxiliary variables `y = D₂r` and `z = D_L r` split the non-smooth and
//! periodic penalties off the Poisson likelihood. Each iteration:
//!
//! 1. solves the `r`-subproblem after a second-order Taylor expansion of the
//!    `Δt·1ᵀeʳ` term around the current iterate — a sparse SPD linear system
//!    `A_k r = B_k` with `A_k = Δt·diag(e^{r_k}) + ρD₂ᵀD₂ + ρD_LᵀD_L`,
//! 2. updates `y` by soft-thresholding,
//! 3. updates `z` in closed form, and
//! 4. performs the dual ascent on `ν_y`, `ν_z`.
//!
//! The linear system is solved either with a banded Cholesky factorization
//! (`O(T·L²)`, exactly the complexity the paper quotes) or with a matrix-free
//! Jacobi-preconditioned conjugate gradient (`O(T)` per product) — the
//! `Auto` policy picks CG once the bandwidth would exceed a threshold.

use crate::error::NhppError;
use crate::loss::{RegularizedLoss, RegularizedLossConfig};
use robustscaler_linalg::{
    cg::{conjugate_gradient, CgOptions, LinearOperator},
    vector::soft_threshold,
    DifferenceOperator, SymmetricBandedMatrix,
};
use serde::{Deserialize, Serialize};

/// Strategy for the `r`-subproblem linear solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubproblemSolver {
    /// Banded Cholesky when the bandwidth is small, CG otherwise.
    Auto,
    /// Always factorize the banded system (`O(T·L²)` per iteration).
    BandedCholesky,
    /// Always use the matrix-free preconditioned conjugate gradient.
    ConjugateGradient,
}

/// Configuration of the ADMM trainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmmConfig {
    /// Weight β₁ of the ℓ1 second-difference penalty.
    pub beta1: f64,
    /// Weight β₂ of the ℓ2 periodic penalty.
    pub beta2: f64,
    /// ADMM penalty parameter ρ > 0.
    pub rho: f64,
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the scaled primal residual and the
    /// per-iteration change of `r`.
    pub tolerance: f64,
    /// Linear solver policy for the `r`-subproblem.
    pub solver: SubproblemSolver,
    /// Maximum absolute change of any `r_t` in one iteration (a trust-region
    /// safeguard for the quadratic approximation of the exponential).
    pub max_step: f64,
}

impl Default for AdmmConfig {
    fn default() -> Self {
        Self {
            beta1: 2.0,
            beta2: 5.0,
            rho: 1.0,
            max_iterations: 200,
            tolerance: 1e-6,
            solver: SubproblemSolver::Auto,
            max_step: 5.0,
        }
    }
}

/// Convergence report of one ADMM fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmmReport {
    /// Outer iterations performed.
    pub iterations: usize,
    /// Final scaled primal residual.
    pub primal_residual: f64,
    /// Final value of the regularized loss (eq. 1).
    pub final_loss: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}

/// The ADMM trainer for one count series.
#[derive(Debug, Clone)]
pub struct AdmmSolver {
    loss: RegularizedLoss,
    config: AdmmConfig,
}

/// Matrix-free representation of `A_k` for the CG path.
struct SystemOperator<'a> {
    diag: &'a [f64],
    rho: f64,
    loss: &'a RegularizedLoss,
}

impl LinearOperator for SystemOperator<'_> {
    fn dim(&self) -> usize {
        self.diag.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for ((yi, &di), &xi) in y.iter_mut().zip(self.diag.iter()).zip(x.iter()) {
            *yi = di * xi;
        }
        let d2 = self.loss.second_difference();
        let fwd = d2.apply(x).expect("dimensions fixed");
        let back = d2.apply_transpose(&fwd).expect("dimensions fixed");
        for (yi, b) in y.iter_mut().zip(back.iter()) {
            *yi += self.rho * b;
        }
        if let Some(dl) = self.loss.periodic_difference() {
            let fwd = dl.apply(x).expect("dimensions fixed");
            let back = dl.apply_transpose(&fwd).expect("dimensions fixed");
            for (yi, b) in y.iter_mut().zip(back.iter()) {
                *yi += self.rho * b;
            }
        }
    }

    fn diagonal(&self) -> Option<Vec<f64>> {
        let t = self.diag.len();
        let mut diag = self.diag.to_vec();
        // diag(D₂ᵀD₂): stencil [1, -2, 1] contributes 1, 4, 1 per row.
        for row in 0..t.saturating_sub(2) {
            diag[row] += self.rho;
            diag[row + 1] += 4.0 * self.rho;
            diag[row + 2] += self.rho;
        }
        if let Some(dl) = self.loss.periodic_difference() {
            let lag = dl.lag();
            for row in 0..t.saturating_sub(lag) {
                diag[row] += self.rho;
                diag[row + lag] += self.rho;
            }
        }
        Some(diag)
    }
}

impl AdmmSolver {
    /// Create a trainer for per-bucket counts `Q`, bucket width Δt and an
    /// optional detected period (in buckets).
    pub fn new(
        counts: Vec<f64>,
        bucket_width: f64,
        period: Option<usize>,
        config: AdmmConfig,
    ) -> Result<Self, NhppError> {
        if !(config.rho > 0.0) {
            return Err(NhppError::InvalidParameter("rho must be > 0"));
        }
        if config.max_iterations == 0 {
            return Err(NhppError::InvalidParameter("max_iterations must be >= 1"));
        }
        if !(config.tolerance > 0.0) {
            return Err(NhppError::InvalidParameter("tolerance must be > 0"));
        }
        if !(config.max_step > 0.0) {
            return Err(NhppError::InvalidParameter("max_step must be > 0"));
        }
        let loss = RegularizedLoss::new(
            counts,
            RegularizedLossConfig {
                bucket_width,
                beta1: config.beta1,
                beta2: config.beta2,
                period,
            },
        )?;
        Ok(Self { loss, config })
    }

    /// Access the underlying loss (e.g. to evaluate baselines).
    pub fn loss(&self) -> &RegularizedLoss {
        &self.loss
    }

    /// The initial iterate: a lightly smoothed log-QPS.
    fn initial_log_rates(&self) -> Vec<f64> {
        let dt = self.loss.config().bucket_width;
        let raw: Vec<f64> = self
            .loss
            .counts()
            .iter()
            .map(|&q| ((q + 0.5) / dt).ln())
            .collect();
        // 3-point moving average to temper isolated spikes in the start point.
        let n = raw.len();
        (0..n)
            .map(|i| {
                let lo = i.saturating_sub(1);
                let hi = (i + 2).min(n);
                raw[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    }

    /// Decide whether this fit should use the banded factorization.
    fn use_banded(&self) -> bool {
        match self.config.solver {
            SubproblemSolver::BandedCholesky => true,
            SubproblemSolver::ConjugateGradient => false,
            SubproblemSolver::Auto => {
                let bandwidth = self
                    .loss
                    .periodic_difference()
                    .map(|dl| dl.lag())
                    .unwrap_or(2)
                    .max(2);
                bandwidth <= 96
            }
        }
    }

    /// Solve the `r`-subproblem `A_k r = B_k`.
    fn solve_system(
        &self,
        diag: &[f64],
        rhs: &[f64],
        warm_start: &[f64],
    ) -> Result<Vec<f64>, NhppError> {
        if self.use_banded() {
            let t = diag.len();
            let d2 = self.loss.second_difference();
            let bandwidth = self
                .loss
                .periodic_difference()
                .map(|dl| dl.gram_half_bandwidth())
                .unwrap_or(0)
                .max(d2.gram_half_bandwidth());
            let mut a = SymmetricBandedMatrix::zeros(t, bandwidth);
            a.add_diagonal(diag).map_err(NhppError::from)?;
            d2.add_gram_to(&mut a, self.config.rho)
                .map_err(NhppError::from)?;
            if let Some(dl) = self.loss.periodic_difference() {
                dl.add_gram_to(&mut a, self.config.rho)
                    .map_err(NhppError::from)?;
            }
            a.solve(rhs).map_err(NhppError::from)
        } else {
            let operator = SystemOperator {
                diag,
                rho: self.config.rho,
                loss: &self.loss,
            };
            let (solution, _) = conjugate_gradient(
                &operator,
                rhs,
                warm_start,
                CgOptions {
                    tolerance: 1e-9,
                    max_iterations: 10 * diag.len() + 100,
                },
            )
            .map_err(NhppError::from)?;
            Ok(solution)
        }
    }

    /// Run the ADMM iterations and return the fitted log-intensities together
    /// with a convergence report.
    pub fn fit(&self) -> Result<(Vec<f64>, AdmmReport), NhppError> {
        let dt = self.loss.config().bucket_width;
        let rho = self.config.rho;
        let d2 = self.loss.second_difference();
        let counts = self.loss.counts();
        let t = counts.len();

        let mut r = self.initial_log_rates();
        let mut y = d2.apply(&r).expect("dimensions fixed");
        let mut z = self
            .loss
            .periodic_difference()
            .map(|dl| dl.apply(&r).expect("dimensions fixed"));
        let mut nu_y = vec![0.0; y.len()];
        let mut nu_z = z.as_ref().map(|z| vec![0.0; z.len()]);

        let mut iterations = 0;
        let mut primal_residual = f64::INFINITY;
        let mut converged = false;

        for iter in 1..=self.config.max_iterations {
            iterations = iter;

            // --- r update (quadratic approximation of the exponential). ---
            // A_k = Δt·diag(e^{r_k}) + ρD₂ᵀD₂ + ρD_LᵀD_L
            // B_k = Q − Δt·e^{r_k} + Δt·diag(e^{r_k})·r_k
            //       + D₂ᵀ(ν_y + ρ·y) + D_Lᵀ(ν_z + ρ·z)
            let exp_r: Vec<f64> = r.iter().map(|v| (dt * v.exp()).max(1e-12)).collect();
            let mut rhs: Vec<f64> = counts
                .iter()
                .zip(exp_r.iter())
                .zip(r.iter())
                .map(|((&q, &er), &ri)| q - er + er * ri)
                .collect();
            let combo_y: Vec<f64> = nu_y
                .iter()
                .zip(y.iter())
                .map(|(nu, yv)| nu + rho * yv)
                .collect();
            let back_y = d2.apply_transpose(&combo_y).expect("dimensions fixed");
            for (b, v) in rhs.iter_mut().zip(back_y.iter()) {
                *b += v;
            }
            if let (Some(dl), Some(zv), Some(nz)) =
                (self.loss.periodic_difference(), z.as_ref(), nu_z.as_ref())
            {
                let combo_z: Vec<f64> = nz
                    .iter()
                    .zip(zv.iter())
                    .map(|(nu, zi)| nu + rho * zi)
                    .collect();
                let back_z = dl.apply_transpose(&combo_z).expect("dimensions fixed");
                for (b, v) in rhs.iter_mut().zip(back_z.iter()) {
                    *b += v;
                }
            }
            let r_unclamped = self.solve_system(&exp_r, &rhs, &r)?;
            // Trust-region safeguard on the quadratic approximation.
            let mut max_change = 0.0_f64;
            let mut r_next = Vec::with_capacity(t);
            for (old, new) in r.iter().zip(r_unclamped.iter()) {
                let delta = (new - old).clamp(-self.config.max_step, self.config.max_step);
                max_change = max_change.max(delta.abs());
                r_next.push(old + delta);
            }
            r = r_next;

            // --- y update: soft-thresholding (paper line 3). ---
            let d2r = d2.apply(&r).expect("dimensions fixed");
            let shifted: Vec<f64> = d2r
                .iter()
                .zip(nu_y.iter())
                .map(|(d, nu)| d - nu / rho)
                .collect();
            y = soft_threshold(&shifted, self.config.beta1 / rho);

            // --- z update: closed form (paper line 4). ---
            let dlr = self
                .loss
                .periodic_difference()
                .map(|dl| dl.apply(&r).expect("dimensions fixed"));
            if let (Some(dlr_v), Some(zv), Some(nz)) = (dlr.as_ref(), z.as_mut(), nu_z.as_ref()) {
                let beta2 = self.config.beta2;
                for ((zi, &d), &nu) in zv.iter_mut().zip(dlr_v.iter()).zip(nz.iter()) {
                    *zi = (rho * d - nu) / (beta2 + rho);
                }
            }

            // --- dual updates (paper lines 5-6). ---
            let mut residual_sq = 0.0;
            let mut residual_dim = 0usize;
            for ((nu, &yv), &d) in nu_y.iter_mut().zip(y.iter()).zip(d2r.iter()) {
                let gap = yv - d;
                *nu += rho * gap;
                residual_sq += gap * gap;
            }
            residual_dim += y.len();
            if let (Some(dlr_v), Some(zv), Some(nz)) = (dlr.as_ref(), z.as_ref(), nu_z.as_mut()) {
                for ((nu, &zi), &d) in nz.iter_mut().zip(zv.iter()).zip(dlr_v.iter()) {
                    let gap = zi - d;
                    *nu += rho * gap;
                    residual_sq += gap * gap;
                }
                residual_dim += zv.len();
            }
            primal_residual = if residual_dim > 0 {
                (residual_sq / residual_dim as f64).sqrt()
            } else {
                0.0
            };

            if primal_residual < self.config.tolerance && max_change < self.config.tolerance {
                converged = true;
                break;
            }
        }

        let report = AdmmReport {
            iterations,
            primal_residual,
            final_loss: self.loss.value(&r),
            converged,
        };
        Ok((r, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use robustscaler_stats::{DiscreteDistribution, Poisson};

    fn poisson_counts(rates: &[f64], dt: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        rates
            .iter()
            .map(|&lambda| {
                let mean = lambda * dt;
                if mean <= 0.0 {
                    0.0
                } else {
                    Poisson::new(mean).unwrap().sample(&mut rng) as f64
                }
            })
            .collect()
    }

    #[test]
    fn constructor_validates_config() {
        let bad_rho = AdmmConfig {
            rho: 0.0,
            ..AdmmConfig::default()
        };
        assert!(AdmmSolver::new(vec![1.0; 10], 1.0, None, bad_rho).is_err());
        let bad_iter = AdmmConfig {
            max_iterations: 0,
            ..AdmmConfig::default()
        };
        assert!(AdmmSolver::new(vec![1.0; 10], 1.0, None, bad_iter).is_err());
        let bad_tol = AdmmConfig {
            tolerance: 0.0,
            ..AdmmConfig::default()
        };
        assert!(AdmmSolver::new(vec![1.0; 10], 1.0, None, bad_tol).is_err());
        let bad_step = AdmmConfig {
            max_step: 0.0,
            ..AdmmConfig::default()
        };
        assert!(AdmmSolver::new(vec![1.0; 10], 1.0, None, bad_step).is_err());
    }

    #[test]
    fn recovers_constant_intensity() {
        let dt = 60.0;
        let true_rate = 0.5; // 0.5 QPS
        let counts = poisson_counts(&vec![true_rate; 200], dt, 1);
        let solver = AdmmSolver::new(
            counts,
            dt,
            None,
            AdmmConfig {
                beta1: 5.0,
                beta2: 0.0,
                ..AdmmConfig::default()
            },
        )
        .unwrap();
        let (r, report) = solver.fit().unwrap();
        assert!(report.iterations > 0);
        let mean_rate: f64 = r.iter().map(|v| v.exp()).sum::<f64>() / r.len() as f64;
        assert!(
            (mean_rate - true_rate).abs() / true_rate < 0.1,
            "recovered {mean_rate} vs true {true_rate}"
        );
    }

    #[test]
    fn smoothing_beats_raw_log_counts_on_noisy_data() {
        let dt = 60.0;
        // Smooth sinusoidal ground truth.
        let true_rates: Vec<f64> = (0..300)
            .map(|i| 0.4 + 0.3 * (2.0 * std::f64::consts::PI * i as f64 / 75.0).sin())
            .collect();
        let counts = poisson_counts(&true_rates, dt, 2);
        let solver = AdmmSolver::new(counts.clone(), dt, None, AdmmConfig::default()).unwrap();
        let (r, _) = solver.fit().unwrap();
        let mse = |estimate: &[f64]| -> f64 {
            estimate
                .iter()
                .zip(true_rates.iter())
                .map(|(e, t)| (e - t) * (e - t))
                .sum::<f64>()
                / true_rates.len() as f64
        };
        let fitted: Vec<f64> = r.iter().map(|v| v.exp()).collect();
        let raw: Vec<f64> = counts.iter().map(|q| q / dt).collect();
        assert!(
            mse(&fitted) < mse(&raw),
            "fitted MSE {} should beat raw MSE {}",
            mse(&fitted),
            mse(&raw)
        );
    }

    #[test]
    fn periodic_regularization_improves_estimation() {
        let dt = 60.0;
        let period = 50usize;
        let true_rates: Vec<f64> = (0..400)
            .map(|i| {
                0.1 + 0.4
                    * (2.0 * std::f64::consts::PI * (i % period) as f64 / period as f64)
                        .sin()
                        .powi(2)
            })
            .collect();
        let counts = poisson_counts(&true_rates, dt, 3);
        let mse_for = |period_opt: Option<usize>, beta2: f64| -> f64 {
            let solver = AdmmSolver::new(
                counts.clone(),
                dt,
                period_opt,
                AdmmConfig {
                    beta1: 2.0,
                    beta2,
                    max_iterations: 150,
                    ..AdmmConfig::default()
                },
            )
            .unwrap();
            let (r, _) = solver.fit().unwrap();
            r.iter()
                .map(|v| v.exp())
                .zip(true_rates.iter())
                .map(|(e, t)| (e - t) * (e - t))
                .sum::<f64>()
                / true_rates.len() as f64
        };
        let with_reg = mse_for(Some(period), 20.0);
        let without_reg = mse_for(None, 0.0);
        assert!(
            with_reg < without_reg,
            "periodic regularization should reduce MSE: {with_reg} vs {without_reg}"
        );
    }

    #[test]
    fn admm_solution_approaches_the_unregularized_optimum_when_betas_are_zero() {
        let dt = 10.0;
        let counts = vec![5.0, 8.0, 2.0, 7.0, 4.0, 9.0, 3.0, 6.0];
        let solver = AdmmSolver::new(
            counts.clone(),
            dt,
            None,
            AdmmConfig {
                beta1: 0.0,
                beta2: 0.0,
                max_iterations: 300,
                tolerance: 1e-9,
                ..AdmmConfig::default()
            },
        )
        .unwrap();
        let (r, report) = solver.fit().unwrap();
        assert!(report.converged, "report: {report:?}");
        for (ri, q) in r.iter().zip(counts.iter()) {
            let expected = (q / dt).ln();
            assert!(
                (ri - expected).abs() < 1e-3,
                "r {} vs log-QPS {expected}",
                ri
            );
        }
    }

    #[test]
    fn banded_and_cg_paths_agree() {
        let dt = 60.0;
        let period = 30usize;
        let true_rates: Vec<f64> = (0..240)
            .map(|i| 0.3 + 0.2 * (2.0 * std::f64::consts::PI * i as f64 / period as f64).cos())
            .collect();
        let counts = poisson_counts(&true_rates, dt, 5);
        let fit_with = |solver_kind: SubproblemSolver| -> Vec<f64> {
            let solver = AdmmSolver::new(
                counts.clone(),
                dt,
                Some(period),
                AdmmConfig {
                    solver: solver_kind,
                    max_iterations: 120,
                    ..AdmmConfig::default()
                },
            )
            .unwrap();
            solver.fit().unwrap().0
        };
        let banded = fit_with(SubproblemSolver::BandedCholesky);
        let cg = fit_with(SubproblemSolver::ConjugateGradient);
        let max_diff = banded
            .iter()
            .zip(cg.iter())
            .fold(0.0_f64, |acc, (a, b)| acc.max((a - b).abs()));
        assert!(max_diff < 1e-3, "solver paths diverge: {max_diff}");
    }

    #[test]
    fn fit_reduces_the_regularized_loss_from_the_start_point() {
        let dt = 60.0;
        let true_rates: Vec<f64> = (0..150)
            .map(|i| 0.2 + 0.1 * ((i / 25) % 2) as f64)
            .collect();
        let counts = poisson_counts(&true_rates, dt, 7);
        let solver = AdmmSolver::new(counts, dt, Some(50), AdmmConfig::default()).unwrap();
        let start = solver.initial_log_rates();
        let start_loss = solver.loss().value(&start);
        let (r, report) = solver.fit().unwrap();
        assert!(report.final_loss < start_loss);
        assert_eq!(r.len(), 150);
    }
}
