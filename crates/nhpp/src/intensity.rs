//! Intensity functions of non-homogeneous Poisson processes.
//!
//! Both the scaling optimizer (which needs the distribution of the time of
//! the i-th upcoming arrival) and the trace generators (which need to sample
//! arrivals from closed-form intensities) work through the [`Intensity`]
//! trait: the rate `λ(t)`, the integrated intensity
//! `Λ(a, b) = ∫_a^b λ(t) dt` and its inverse in the second argument.

use crate::error::NhppError;
use serde::{Deserialize, Serialize};

/// An intensity function `λ(t) ≥ 0` of an NHPP.
pub trait Intensity {
    /// The instantaneous rate at time `t`.
    fn rate(&self, t: f64) -> f64;

    /// Integrated intensity `Λ(from, to) = ∫_from^to λ(t) dt` with
    /// `to ≥ from`.
    fn integrated(&self, from: f64, to: f64) -> f64;

    /// The smallest `t ≥ from` such that `Λ(from, t) ≥ target`
    /// (`target ≥ 0`). Returns `f64::INFINITY` when the cumulative intensity
    /// never reaches the target.
    fn inverse_integrated(&self, from: f64, target: f64) -> f64;

    /// An upper bound of the rate over `[from, to)`, used by thinning
    /// samplers and by the κ threshold of Algorithm 4.
    fn max_rate(&self, from: f64, to: f64) -> f64;
}

/// Piecewise-constant intensity over equal-width buckets, the natural output
/// of the NHPP trainer (`λ_t = exp(r_t)` on bucket `t`).
///
/// Outside the covered range the intensity continues with the first/last
/// bucket's rate, so forecasts can extend a little past the planned horizon
/// without panicking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseConstantIntensity {
    start: f64,
    bucket_width: f64,
    rates: Vec<f64>,
    /// Cumulative integrated intensity at bucket boundaries; length
    /// `rates.len() + 1`, `cumulative[0] = 0`.
    cumulative: Vec<f64>,
}

impl PiecewiseConstantIntensity {
    /// Create a piecewise-constant intensity. All rates must be finite and
    /// non-negative.
    pub fn new(start: f64, bucket_width: f64, rates: Vec<f64>) -> Result<Self, NhppError> {
        if !(bucket_width > 0.0) {
            return Err(NhppError::InvalidParameter("bucket width must be > 0"));
        }
        if rates.is_empty() {
            return Err(NhppError::InvalidParameter("rates must be non-empty"));
        }
        if rates.iter().any(|r| !r.is_finite() || *r < 0.0) {
            return Err(NhppError::InvalidParameter(
                "rates must be finite and non-negative",
            ));
        }
        let mut cumulative = Vec::with_capacity(rates.len() + 1);
        cumulative.push(0.0);
        let mut acc = 0.0;
        for &r in &rates {
            acc += r * bucket_width;
            cumulative.push(acc);
        }
        Ok(Self {
            start,
            bucket_width,
            rates,
            cumulative,
        })
    }

    /// Build from log-intensities `r_t` (the trainer's parameterization).
    pub fn from_log_rates(
        start: f64,
        bucket_width: f64,
        log_rates: &[f64],
    ) -> Result<Self, NhppError> {
        Self::new(
            start,
            bucket_width,
            log_rates.iter().map(|r| r.exp()).collect(),
        )
    }

    /// Start of the covered range.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// End of the covered range.
    pub fn end(&self) -> f64 {
        self.start + self.bucket_width * self.rates.len() as f64
    }

    /// Bucket width in seconds.
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }

    /// The per-bucket rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the intensity covers no buckets (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Total integrated intensity over the covered range (expected number of
    /// arrivals).
    pub fn total_mass(&self) -> f64 {
        *self.cumulative.last().expect("non-empty")
    }

    fn bucket_of(&self, t: f64) -> usize {
        if t <= self.start {
            return 0;
        }
        let idx = ((t - self.start) / self.bucket_width) as usize;
        idx.min(self.rates.len() - 1)
    }

    /// Integrated intensity from the start of coverage up to `t` (clamping
    /// `t` into the covered range; beyond the end the final rate extends).
    fn cumulative_at(&self, t: f64) -> f64 {
        if t <= self.start {
            // Extend the first bucket's rate backwards in time.
            return (t - self.start) * self.rates[0];
        }
        let end = self.end();
        if t >= end {
            return self.total_mass() + (t - end) * *self.rates.last().expect("non-empty");
        }
        let idx = self.bucket_of(t);
        let left = self.start + idx as f64 * self.bucket_width;
        self.cumulative[idx] + (t - left) * self.rates[idx]
    }
}

impl Intensity for PiecewiseConstantIntensity {
    fn rate(&self, t: f64) -> f64 {
        if t < self.start {
            self.rates[0]
        } else if t >= self.end() {
            *self.rates.last().expect("non-empty")
        } else {
            self.rates[self.bucket_of(t)]
        }
    }

    fn integrated(&self, from: f64, to: f64) -> f64 {
        debug_assert!(to >= from, "integrated requires to >= from");
        self.cumulative_at(to) - self.cumulative_at(from)
    }

    fn inverse_integrated(&self, from: f64, target: f64) -> f64 {
        debug_assert!(target >= 0.0, "target must be non-negative");
        if target == 0.0 {
            return from;
        }
        let base = self.cumulative_at(from);
        let goal = base + target;
        let end = self.end();
        let total = self.total_mass();
        if goal > total || from >= end {
            // Continue with the final bucket's rate beyond the end.
            let tail_rate = *self.rates.last().expect("non-empty");
            if tail_rate <= 0.0 {
                return f64::INFINITY;
            }
            let from_for_tail = from.max(end);
            let already = self.cumulative_at(from_for_tail);
            return from_for_tail + (goal - already) / tail_rate;
        }
        // Binary search the bucket whose cumulative bound reaches the goal.
        let idx = self.cumulative.partition_point(|&c| c < goal);
        // idx >= 1 because goal > 0 and cumulative[0] = 0.
        let idx = idx.min(self.rates.len());
        let bucket = idx - 1;
        let left = self.start + bucket as f64 * self.bucket_width;
        let rate = self.rates[bucket];
        if rate <= 0.0 {
            // Zero-rate bucket cannot accumulate mass; move to its right edge
            // and recurse (the remaining mass must lie in a later bucket).
            let right = left + self.bucket_width;
            return self.inverse_integrated(right, goal - self.cumulative_at(right));
        }
        let t = left + (goal - self.cumulative[bucket]) / rate;
        t.max(from)
    }

    fn max_rate(&self, from: f64, to: f64) -> f64 {
        let lo = self.bucket_of(from.max(self.start));
        let hi = self.bucket_of(to.min(self.end() - 1e-12).max(self.start));
        self.rates[lo..=hi]
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max)
            .max(if to > self.end() {
                *self.rates.last().expect("non-empty")
            } else {
                0.0
            })
    }
}

/// A closed-form intensity defined by an arbitrary function, integrated
/// numerically with the composite Simpson rule. Used for the paper's
/// synthetic ground-truth intensities (scalability test of Fig. 8 and the
/// periodicity-regularization study of Table III).
#[derive(Clone)]
pub struct ClosedFormIntensity<F>
where
    F: Fn(f64) -> f64,
{
    f: F,
    /// Step used for numeric integration and for the max-rate scan.
    resolution: f64,
}

impl<F> ClosedFormIntensity<F>
where
    F: Fn(f64) -> f64,
{
    /// Wrap a rate function; `resolution` is the numeric-integration step in
    /// seconds (must be > 0).
    pub fn new(f: F, resolution: f64) -> Result<Self, NhppError> {
        if !(resolution > 0.0) {
            return Err(NhppError::InvalidParameter("resolution must be > 0"));
        }
        Ok(Self { f, resolution })
    }
}

impl<F> Intensity for ClosedFormIntensity<F>
where
    F: Fn(f64) -> f64,
{
    fn rate(&self, t: f64) -> f64 {
        (self.f)(t).max(0.0)
    }

    fn integrated(&self, from: f64, to: f64) -> f64 {
        debug_assert!(to >= from);
        if to == from {
            return 0.0;
        }
        // Cap the number of Simpson panels so that pathological ranges (e.g.
        // the bracket expansion of `inverse_integrated` over a near-zero
        // intensity) neither overflow the step count nor take unbounded time;
        // the effective resolution simply coarsens for huge ranges.
        let steps = ((to - from) / self.resolution)
            .ceil()
            .clamp(1.0, 2_000_000.0) as usize;
        // Composite Simpson needs an even number of sub-intervals.
        let steps = if steps % 2 == 1 { steps + 1 } else { steps };
        let h = (to - from) / steps as f64;
        let mut acc = self.rate(from) + self.rate(to);
        for i in 1..steps {
            let weight = if i % 2 == 1 { 4.0 } else { 2.0 };
            acc += weight * self.rate(from + i as f64 * h);
        }
        acc * h / 3.0
    }

    fn inverse_integrated(&self, from: f64, target: f64) -> f64 {
        debug_assert!(target >= 0.0);
        if target == 0.0 {
            return from;
        }
        // Expand an upper bracket (accumulating mass incrementally so each
        // expansion only integrates the new segment), then bisect.
        let mut step = self.resolution.max(1e-9);
        let mut hi = from + step;
        let mut mass = self.integrated(from, hi);
        let mut expansions = 0;
        while mass < target {
            step *= 2.0;
            let next_hi = hi + step;
            mass += self.integrated(hi, next_hi);
            hi = next_hi;
            expansions += 1;
            // After ~60 doublings the bracket spans ~1e18 resolutions; an
            // intensity that has not accumulated the target by then is
            // treated as never reaching it.
            if expansions > 60 {
                return f64::INFINITY;
            }
        }
        let mut lo = from;
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if self.integrated(from, mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-9 * (1.0 + hi.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn max_rate(&self, from: f64, to: f64) -> f64 {
        let steps = (((to - from) / self.resolution).ceil() as usize).max(1);
        let h = (to - from) / steps as f64;
        let mut max = 0.0_f64;
        for i in 0..=steps {
            max = max.max(self.rate(from + i as f64 * h));
        }
        // Small safety margin for the scan's finite resolution.
        max * 1.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piecewise_constructor_validates_inputs() {
        assert!(PiecewiseConstantIntensity::new(0.0, 0.0, vec![1.0]).is_err());
        assert!(PiecewiseConstantIntensity::new(0.0, 1.0, vec![]).is_err());
        assert!(PiecewiseConstantIntensity::new(0.0, 1.0, vec![-1.0]).is_err());
        assert!(PiecewiseConstantIntensity::new(0.0, 1.0, vec![f64::NAN]).is_err());
        let p = PiecewiseConstantIntensity::from_log_rates(0.0, 2.0, &[0.0, 1.0_f64.ln()]).unwrap();
        assert_eq!(p.rates(), &[1.0, 1.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn piecewise_rate_lookup() {
        let p = PiecewiseConstantIntensity::new(10.0, 5.0, vec![1.0, 3.0, 0.5]).unwrap();
        assert_eq!(p.rate(10.0), 1.0);
        assert_eq!(p.rate(14.9), 1.0);
        assert_eq!(p.rate(15.0), 3.0);
        assert_eq!(p.rate(24.9), 0.5);
        // Extension beyond the covered range.
        assert_eq!(p.rate(5.0), 1.0);
        assert_eq!(p.rate(100.0), 0.5);
        assert_eq!(p.start(), 10.0);
        assert_eq!(p.end(), 25.0);
    }

    #[test]
    fn piecewise_integration_is_exact() {
        let p = PiecewiseConstantIntensity::new(0.0, 2.0, vec![1.0, 3.0, 0.0, 2.0]).unwrap();
        assert!((p.total_mass() - 12.0).abs() < 1e-12);
        assert!((p.integrated(0.0, 2.0) - 2.0).abs() < 1e-12);
        assert!((p.integrated(1.0, 3.0) - (1.0 + 3.0)).abs() < 1e-12);
        assert!((p.integrated(0.0, 8.0) - 12.0).abs() < 1e-12);
        // Crossing the right boundary extends with the last rate.
        assert!((p.integrated(6.0, 10.0) - (4.0 + 4.0)).abs() < 1e-12);
        assert_eq!(p.integrated(3.0, 3.0), 0.0);
    }

    #[test]
    fn piecewise_inverse_integrated_round_trips() {
        let p = PiecewiseConstantIntensity::new(0.0, 2.0, vec![1.0, 3.0, 0.0, 2.0]).unwrap();
        for &from in &[0.0, 1.0, 2.5, 5.0] {
            for &target in &[0.1, 0.5, 1.0, 3.0, 6.0] {
                let t = p.inverse_integrated(from, target);
                let mass = p.integrated(from, t);
                assert!(
                    (mass - target).abs() < 1e-9,
                    "from={from} target={target}: t={t}, mass={mass}"
                );
            }
        }
        // Zero target returns the starting point.
        assert_eq!(p.inverse_integrated(1.5, 0.0), 1.5);
    }

    #[test]
    fn piecewise_inverse_handles_zero_rate_buckets_and_tail() {
        let p = PiecewiseConstantIntensity::new(0.0, 1.0, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        // Mass 1.5 from t=0: 1.0 accumulates in bucket 0, the rest must wait
        // until bucket 3.
        let t = p.inverse_integrated(0.0, 1.5);
        assert!((t - 3.5).abs() < 1e-9, "t = {t}");
        // Beyond the end, the final rate (1.0) continues.
        let t2 = p.inverse_integrated(0.0, 3.0);
        assert!((t2 - 5.0).abs() < 1e-9, "t2 = {t2}");
        // A trailing zero rate makes large targets unreachable.
        let pz = PiecewiseConstantIntensity::new(0.0, 1.0, vec![1.0, 0.0]).unwrap();
        assert!(pz.inverse_integrated(0.0, 2.0).is_infinite());
    }

    #[test]
    fn piecewise_max_rate_scans_the_window() {
        let p = PiecewiseConstantIntensity::new(0.0, 1.0, vec![1.0, 5.0, 2.0]).unwrap();
        assert_eq!(p.max_rate(0.0, 0.5), 1.0);
        assert_eq!(p.max_rate(0.0, 3.0), 5.0);
        assert_eq!(p.max_rate(2.0, 10.0), 2.0);
    }

    #[test]
    fn closed_form_integrates_polynomials_accurately() {
        // λ(t) = t² on [0, 3] integrates to 9.
        let c = ClosedFormIntensity::new(|t: f64| t * t, 0.01).unwrap();
        assert!((c.integrated(0.0, 3.0) - 9.0).abs() < 1e-6);
        assert!((c.rate(2.0) - 4.0).abs() < 1e-12);
        // Negative rates are clamped to zero.
        let neg = ClosedFormIntensity::new(|_| -5.0, 0.1).unwrap();
        assert_eq!(neg.rate(1.0), 0.0);
        assert_eq!(neg.integrated(0.0, 10.0), 0.0);
        assert!(ClosedFormIntensity::new(|_| 1.0, 0.0).is_err());
    }

    #[test]
    fn closed_form_inverse_round_trips() {
        let c = ClosedFormIntensity::new(|t: f64| 2.0 + (t / 10.0).sin().abs(), 0.05).unwrap();
        for &target in &[0.5, 2.0, 7.5, 30.0] {
            let t = c.inverse_integrated(1.0, target);
            assert!((c.integrated(1.0, t) - target).abs() < 1e-5);
        }
        assert_eq!(c.inverse_integrated(4.0, 0.0), 4.0);
        // A zero intensity never accumulates mass.
        let z = ClosedFormIntensity::new(|_| 0.0, 0.1).unwrap();
        assert!(z.inverse_integrated(0.0, 1.0).is_infinite());
    }

    #[test]
    fn closed_form_max_rate_bounds_the_function() {
        let c = ClosedFormIntensity::new(|t: f64| 3.0 + (t).sin(), 0.01).unwrap();
        let bound = c.max_rate(0.0, 20.0);
        assert!(bound >= 4.0);
        assert!(bound < 4.5);
    }
}
