//! Intensity functions of non-homogeneous Poisson processes.
//!
//! Both the scaling optimizer (which needs the distribution of the time of
//! the i-th upcoming arrival) and the trace generators (which need to sample
//! arrivals from closed-form intensities) work through the [`Intensity`]
//! trait: the rate `λ(t)`, the integrated intensity
//! `Λ(a, b) = ∫_a^b λ(t) dt` and its inverse in the second argument.

use crate::error::NhppError;
use serde::{Deserialize, Serialize};

/// An intensity function `λ(t) ≥ 0` of an NHPP.
pub trait Intensity {
    /// The instantaneous rate at time `t`.
    fn rate(&self, t: f64) -> f64;

    /// Integrated intensity `Λ(from, to) = ∫_from^to λ(t) dt` with
    /// `to ≥ from`.
    fn integrated(&self, from: f64, to: f64) -> f64;

    /// The smallest `t ≥ from` such that `Λ(from, t) ≥ target`
    /// (`target ≥ 0`). Returns `f64::INFINITY` when the cumulative intensity
    /// never reaches the target.
    fn inverse_integrated(&self, from: f64, target: f64) -> f64;

    /// [`Intensity::inverse_integrated`] with a resumable cursor hint for
    /// monotone query sequences.
    ///
    /// When a caller inverts a *nondecreasing* sequence of targets from a
    /// fixed `from` (the Monte Carlo arrival sampler does exactly this — the
    /// cumulative mass within one path only grows), implementations can use
    /// `hint` to remember where the previous inversion landed and resume
    /// there instead of starting over. The default ignores the hint and must
    /// return exactly what `inverse_integrated` returns; overrides must
    /// preserve that equivalence bit for bit.
    ///
    /// Start each monotone sequence with `InverseHint::default()`. A hint
    /// may only ever be reused against the *same* intensity it was produced
    /// by (the cached piece is meaningless elsewhere); the arrival sampler
    /// upholds this by pinning one forecast per sampler.
    fn inverse_integrated_hinted(&self, from: f64, target: f64, hint: &mut InverseHint) -> f64 {
        let _ = hint;
        self.inverse_integrated(from, target)
    }

    /// An upper bound of the rate over `[from, to)`, used by thinning
    /// samplers and by the κ threshold of Algorithm 4.
    fn max_rate(&self, from: f64, to: f64) -> f64;
}

/// Resumable state for monotone [`Intensity::inverse_integrated_hinted`]
/// sequences: the linear piece (in absolute cumulative-mass coordinates) the
/// previous inversion landed in, plus the cached mass at the query origin.
///
/// Opaque on purpose — obtain one with `InverseHint::default()` (or from
/// [`InverseCursor::hint`]) and only ever reuse it against the intensity
/// that produced it.
#[derive(Debug, Clone, Copy)]
pub struct InverseHint {
    /// Bucket index to resume the forward scan from (`usize::MAX` forces the
    /// one-shot binary search).
    bucket: usize,
    /// Cached `cumulative_at(base_from)`; `base_from` is NaN until primed.
    base_from: f64,
    base: f64,
    /// The cached piece inverts goals in `(valid_lo, mass_hi]` as
    /// `left + (goal − mass_lo) / rate`.
    valid_lo: f64,
    mass_hi: f64,
    left: f64,
    mass_lo: f64,
    rate: f64,
}

impl Default for InverseHint {
    fn default() -> Self {
        InverseHint {
            bucket: usize::MAX,
            base_from: f64::NAN,
            base: 0.0,
            // An empty validity interval: the first query always takes the
            // slow path, which then populates the piece.
            valid_lo: f64::INFINITY,
            mass_hi: f64::NEG_INFINITY,
            left: 0.0,
            mass_lo: 0.0,
            rate: 1.0,
        }
    }
}

/// Piecewise-constant intensity over equal-width buckets, the natural output
/// of the NHPP trainer (`λ_t = exp(r_t)` on bucket `t`).
///
/// Outside the covered range the intensity continues with the first/last
/// bucket's rate, so forecasts can extend a little past the planned horizon
/// without panicking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseConstantIntensity {
    start: f64,
    bucket_width: f64,
    rates: Vec<f64>,
    /// Cumulative integrated intensity at bucket boundaries; length
    /// `rates.len() + 1`, `cumulative[0] = 0`.
    cumulative: Vec<f64>,
}

impl PiecewiseConstantIntensity {
    /// Create a piecewise-constant intensity. All rates must be finite and
    /// non-negative.
    pub fn new(start: f64, bucket_width: f64, rates: Vec<f64>) -> Result<Self, NhppError> {
        if !(bucket_width > 0.0) {
            return Err(NhppError::InvalidParameter("bucket width must be > 0"));
        }
        if rates.is_empty() {
            return Err(NhppError::InvalidParameter("rates must be non-empty"));
        }
        if rates.iter().any(|r| !r.is_finite() || *r < 0.0) {
            return Err(NhppError::InvalidParameter(
                "rates must be finite and non-negative",
            ));
        }
        let mut cumulative = Vec::with_capacity(rates.len() + 1);
        cumulative.push(0.0);
        let mut acc = 0.0;
        for &r in &rates {
            acc += r * bucket_width;
            cumulative.push(acc);
        }
        Ok(Self {
            start,
            bucket_width,
            rates,
            cumulative,
        })
    }

    /// Build from log-intensities `r_t` (the trainer's parameterization).
    pub fn from_log_rates(
        start: f64,
        bucket_width: f64,
        log_rates: &[f64],
    ) -> Result<Self, NhppError> {
        Self::new(
            start,
            bucket_width,
            log_rates.iter().map(|r| r.exp()).collect(),
        )
    }

    /// Start of the covered range.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// End of the covered range.
    pub fn end(&self) -> f64 {
        self.start + self.bucket_width * self.rates.len() as f64
    }

    /// Bucket width in seconds.
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }

    /// The per-bucket rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the intensity covers no buckets (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Total integrated intensity over the covered range (expected number of
    /// arrivals).
    pub fn total_mass(&self) -> f64 {
        *self.cumulative.last().expect("non-empty")
    }

    #[inline]
    fn bucket_of(&self, t: f64) -> usize {
        if t <= self.start {
            return 0;
        }
        let idx = ((t - self.start) / self.bucket_width) as usize;
        idx.min(self.rates.len() - 1)
    }

    /// Integrated intensity from the start of coverage up to `t` (clamping
    /// `t` into the covered range; beyond the end the final rate extends).
    #[inline]
    fn cumulative_at(&self, t: f64) -> f64 {
        if t <= self.start {
            // Extend the first bucket's rate backwards in time.
            return (t - self.start) * self.rates[0];
        }
        let end = self.end();
        if t >= end {
            return self.total_mass() + (t - end) * *self.rates.last().expect("non-empty");
        }
        let idx = self.bucket_of(t);
        let left = self.start + idx as f64 * self.bucket_width;
        self.cumulative[idx] + (t - left) * self.rates[idx]
    }

    /// Shared implementation of the inverse integrated intensity.
    ///
    /// The hot path — almost every call in a monotone sequence — is the
    /// cached linear piece in `hint`: one interval test plus one
    /// interpolation, with arithmetic identical to the slow path below so
    /// hinted and fresh inversions agree bit for bit. On a miss the slow
    /// path resolves the piece (resuming the bucket scan at `hint.bucket`
    /// when possible) and re-primes the cache.
    #[inline]
    fn inverse_impl(&self, from: f64, target: f64, hint: &mut InverseHint) -> f64 {
        debug_assert!(target >= 0.0, "target must be non-negative");
        if target == 0.0 {
            return from;
        }
        let base = if hint.base_from == from {
            hint.base
        } else {
            let base = self.cumulative_at(from);
            hint.base_from = from;
            hint.base = base;
            base
        };
        let goal = base + target;
        if goal > hint.valid_lo && goal <= hint.mass_hi {
            return (hint.left + (goal - hint.mass_lo) / hint.rate).max(from);
        }
        self.inverse_slow(from, goal, hint)
    }

    /// Slow path of [`Self::inverse_impl`]: locate the piece containing
    /// `goal` (absolute cumulative-mass coordinates) and cache it in `hint`.
    fn inverse_slow(&self, from: f64, goal: f64, hint: &mut InverseHint) -> f64 {
        if goal <= 0.0 {
            // `from` lies before the covered range and the target is reached
            // while still under the backwards-extended first-bucket rate
            // (which must be positive for the cumulative mass to be negative
            // at `from`). The piece extends through bucket 0's real span
            // too — same origin, same rate.
            hint.bucket = 0;
            hint.valid_lo = f64::NEG_INFINITY;
            hint.mass_hi = self.cumulative[1];
            hint.left = self.start;
            hint.mass_lo = 0.0;
            hint.rate = self.rates[0];
            return (self.start + goal / self.rates[0]).max(from);
        }
        let end = self.end();
        let total = self.total_mass();
        if goal > total || from >= end {
            // Continue with the final bucket's rate beyond the end.
            hint.bucket = self.rates.len() - 1;
            let tail_rate = *self.rates.last().expect("non-empty");
            if tail_rate <= 0.0 {
                // Unreachable mass; never cache a piece for it.
                hint.valid_lo = f64::INFINITY;
                hint.mass_hi = f64::NEG_INFINITY;
                return f64::INFINITY;
            }
            let from_for_tail = from.max(end);
            let already = self.cumulative_at(from_for_tail);
            hint.valid_lo = already;
            hint.mass_hi = f64::INFINITY;
            hint.left = from_for_tail;
            hint.mass_lo = already;
            hint.rate = tail_rate;
            return from_for_tail + (goal - already) / tail_rate;
        }
        // Find the bucket whose cumulative upper bound reaches the goal:
        // the smallest `idx` with `cumulative[idx + 1] >= goal`. When the
        // hint is usable (`cumulative[hint] < goal`, which monotone callers
        // maintain for free), a forward scan from it is O(1) amortized over
        // a nondecreasing target sequence; otherwise fall back to the
        // binary search.
        let mut idx = hint.bucket;
        if idx >= self.rates.len() || self.cumulative[idx] >= goal {
            // cumulative[i] < goal for i < partition point, so the bucket
            // below keeps the scan invariant cumulative[idx] < goal.
            idx = self.cumulative.partition_point(|&c| c < goal);
            idx = idx.min(self.rates.len()) - 1;
        }
        while idx + 1 < self.rates.len() && self.cumulative[idx + 1] < goal {
            idx += 1;
        }
        // `cumulative[idx] < goal <= cumulative[idx + 1]` implies the
        // bucket's rate is strictly positive (a zero-rate bucket cannot
        // accumulate the remaining mass).
        let left = self.start + idx as f64 * self.bucket_width;
        let rate = self.rates[idx];
        debug_assert!(rate > 0.0, "goal bucket must have positive rate");
        hint.bucket = idx;
        hint.valid_lo = self.cumulative[idx];
        hint.mass_hi = self.cumulative[idx + 1];
        hint.left = left;
        hint.mass_lo = self.cumulative[idx];
        hint.rate = rate;
        let t = left + (goal - self.cumulative[idx]) / rate;
        t.max(from)
    }
}

/// A stateful, monotone inverse of the integrated intensity of a
/// [`PiecewiseConstantIntensity`].
///
/// The Monte Carlo arrival sampler inverts a *nondecreasing* sequence of
/// cumulative masses per path (`Λ⁻¹(t₀, γ₁), Λ⁻¹(t₀, γ₂), …` with
/// `γ₁ ≤ γ₂ ≤ …`). A fresh binary search per inversion costs `O(log n)`
/// in the bucket count; this cursor remembers the bucket the previous
/// inversion landed in and scans forward from there, which is `O(1)`
/// amortized over the whole sequence.
///
/// Results are bit-for-bit identical to
/// [`Intensity::inverse_integrated`] for every target.
#[derive(Debug, Clone)]
pub struct InverseCursor<'a> {
    intensity: &'a PiecewiseConstantIntensity,
    from: f64,
    hint: InverseHint,
}

impl<'a> InverseCursor<'a> {
    /// Create a cursor inverting from the fixed origin `from`.
    pub fn new(intensity: &'a PiecewiseConstantIntensity, from: f64) -> Self {
        Self::resume(intensity, from, InverseHint::default())
    }

    /// Recreate a cursor from a previously saved [`InverseCursor::hint`],
    /// continuing an earlier monotone sequence (used when the arrival
    /// sampler extends its horizon). The hint must come from a cursor over
    /// the *same* intensity.
    pub fn resume(intensity: &'a PiecewiseConstantIntensity, from: f64, hint: InverseHint) -> Self {
        Self {
            intensity,
            from,
            hint,
        }
    }

    /// The smallest `t ≥ from` with `Λ(from, t) ≥ target`, exactly as
    /// [`Intensity::inverse_integrated`] computes it.
    ///
    /// Targets should be nondecreasing across calls; a smaller target than
    /// the previous one is still answered correctly but pays a fresh search
    /// for its piece.
    pub fn advance(&mut self, target: f64) -> f64 {
        self.intensity
            .inverse_impl(self.from, target, &mut self.hint)
    }

    /// The resumable state for [`InverseCursor::resume`]: the piece the
    /// previous inversion landed in.
    pub fn hint(&self) -> InverseHint {
        self.hint
    }
}

impl Intensity for PiecewiseConstantIntensity {
    fn rate(&self, t: f64) -> f64 {
        if t < self.start {
            self.rates[0]
        } else if t >= self.end() {
            *self.rates.last().expect("non-empty")
        } else {
            self.rates[self.bucket_of(t)]
        }
    }

    fn integrated(&self, from: f64, to: f64) -> f64 {
        debug_assert!(to >= from, "integrated requires to >= from");
        self.cumulative_at(to) - self.cumulative_at(from)
    }

    fn inverse_integrated(&self, from: f64, target: f64) -> f64 {
        // A default hint has an empty validity interval and an out-of-range
        // bucket, forcing the one-shot binary search.
        let mut hint = InverseHint::default();
        self.inverse_impl(from, target, &mut hint)
    }

    #[inline]
    fn inverse_integrated_hinted(&self, from: f64, target: f64, hint: &mut InverseHint) -> f64 {
        self.inverse_impl(from, target, hint)
    }

    fn max_rate(&self, from: f64, to: f64) -> f64 {
        let lo = self.bucket_of(from.max(self.start));
        let hi = self.bucket_of(to.min(self.end() - 1e-12).max(self.start));
        self.rates[lo..=hi]
            .iter()
            .cloned()
            .fold(0.0_f64, f64::max)
            .max(if to > self.end() {
                *self.rates.last().expect("non-empty")
            } else {
                0.0
            })
    }
}

/// A closed-form intensity defined by an arbitrary function, integrated
/// numerically with the composite Simpson rule. Used for the paper's
/// synthetic ground-truth intensities (scalability test of Fig. 8 and the
/// periodicity-regularization study of Table III).
#[derive(Clone)]
pub struct ClosedFormIntensity<F>
where
    F: Fn(f64) -> f64,
{
    f: F,
    /// Step used for numeric integration and for the max-rate scan.
    resolution: f64,
}

impl<F> ClosedFormIntensity<F>
where
    F: Fn(f64) -> f64,
{
    /// Wrap a rate function; `resolution` is the numeric-integration step in
    /// seconds (must be > 0).
    pub fn new(f: F, resolution: f64) -> Result<Self, NhppError> {
        if !(resolution > 0.0) {
            return Err(NhppError::InvalidParameter("resolution must be > 0"));
        }
        Ok(Self { f, resolution })
    }
}

impl<F> Intensity for ClosedFormIntensity<F>
where
    F: Fn(f64) -> f64,
{
    fn rate(&self, t: f64) -> f64 {
        (self.f)(t).max(0.0)
    }

    fn integrated(&self, from: f64, to: f64) -> f64 {
        debug_assert!(to >= from);
        if to == from {
            return 0.0;
        }
        // Cap the number of Simpson panels so that pathological ranges (e.g.
        // the bracket expansion of `inverse_integrated` over a near-zero
        // intensity) neither overflow the step count nor take unbounded time;
        // the effective resolution simply coarsens for huge ranges.
        let steps = ((to - from) / self.resolution)
            .ceil()
            .clamp(1.0, 2_000_000.0) as usize;
        // Composite Simpson needs an even number of sub-intervals.
        let steps = if steps % 2 == 1 { steps + 1 } else { steps };
        let h = (to - from) / steps as f64;
        let mut acc = self.rate(from) + self.rate(to);
        for i in 1..steps {
            let weight = if i % 2 == 1 { 4.0 } else { 2.0 };
            acc += weight * self.rate(from + i as f64 * h);
        }
        acc * h / 3.0
    }

    fn inverse_integrated(&self, from: f64, target: f64) -> f64 {
        debug_assert!(target >= 0.0);
        if target == 0.0 {
            return from;
        }
        // Expand an upper bracket (accumulating mass incrementally so each
        // expansion only integrates the new segment), then bisect.
        let mut step = self.resolution.max(1e-9);
        let mut hi = from + step;
        let mut mass = self.integrated(from, hi);
        let mut expansions = 0;
        while mass < target {
            step *= 2.0;
            let next_hi = hi + step;
            mass += self.integrated(hi, next_hi);
            hi = next_hi;
            expansions += 1;
            // After ~60 doublings the bracket spans ~1e18 resolutions; an
            // intensity that has not accumulated the target by then is
            // treated as never reaching it.
            if expansions > 60 {
                return f64::INFINITY;
            }
        }
        let mut lo = from;
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if self.integrated(from, mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-9 * (1.0 + hi.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn max_rate(&self, from: f64, to: f64) -> f64 {
        let steps = (((to - from) / self.resolution).ceil() as usize).max(1);
        let h = (to - from) / steps as f64;
        let mut max = 0.0_f64;
        for i in 0..=steps {
            max = max.max(self.rate(from + i as f64 * h));
        }
        // Small safety margin for the scan's finite resolution.
        max * 1.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn piecewise_constructor_validates_inputs() {
        assert!(PiecewiseConstantIntensity::new(0.0, 0.0, vec![1.0]).is_err());
        assert!(PiecewiseConstantIntensity::new(0.0, 1.0, vec![]).is_err());
        assert!(PiecewiseConstantIntensity::new(0.0, 1.0, vec![-1.0]).is_err());
        assert!(PiecewiseConstantIntensity::new(0.0, 1.0, vec![f64::NAN]).is_err());
        let p = PiecewiseConstantIntensity::from_log_rates(0.0, 2.0, &[0.0, 1.0_f64.ln()]).unwrap();
        assert_eq!(p.rates(), &[1.0, 1.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn piecewise_rate_lookup() {
        let p = PiecewiseConstantIntensity::new(10.0, 5.0, vec![1.0, 3.0, 0.5]).unwrap();
        assert_eq!(p.rate(10.0), 1.0);
        assert_eq!(p.rate(14.9), 1.0);
        assert_eq!(p.rate(15.0), 3.0);
        assert_eq!(p.rate(24.9), 0.5);
        // Extension beyond the covered range.
        assert_eq!(p.rate(5.0), 1.0);
        assert_eq!(p.rate(100.0), 0.5);
        assert_eq!(p.start(), 10.0);
        assert_eq!(p.end(), 25.0);
    }

    #[test]
    fn piecewise_integration_is_exact() {
        let p = PiecewiseConstantIntensity::new(0.0, 2.0, vec![1.0, 3.0, 0.0, 2.0]).unwrap();
        assert!((p.total_mass() - 12.0).abs() < 1e-12);
        assert!((p.integrated(0.0, 2.0) - 2.0).abs() < 1e-12);
        assert!((p.integrated(1.0, 3.0) - (1.0 + 3.0)).abs() < 1e-12);
        assert!((p.integrated(0.0, 8.0) - 12.0).abs() < 1e-12);
        // Crossing the right boundary extends with the last rate.
        assert!((p.integrated(6.0, 10.0) - (4.0 + 4.0)).abs() < 1e-12);
        assert_eq!(p.integrated(3.0, 3.0), 0.0);
    }

    #[test]
    fn piecewise_inverse_integrated_round_trips() {
        let p = PiecewiseConstantIntensity::new(0.0, 2.0, vec![1.0, 3.0, 0.0, 2.0]).unwrap();
        for &from in &[0.0, 1.0, 2.5, 5.0] {
            for &target in &[0.1, 0.5, 1.0, 3.0, 6.0] {
                let t = p.inverse_integrated(from, target);
                let mass = p.integrated(from, t);
                assert!(
                    (mass - target).abs() < 1e-9,
                    "from={from} target={target}: t={t}, mass={mass}"
                );
            }
        }
        // Zero target returns the starting point.
        assert_eq!(p.inverse_integrated(1.5, 0.0), 1.5);
    }

    #[test]
    fn piecewise_inverse_handles_zero_rate_buckets_and_tail() {
        let p = PiecewiseConstantIntensity::new(0.0, 1.0, vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        // Mass 1.5 from t=0: 1.0 accumulates in bucket 0, the rest must wait
        // until bucket 3.
        let t = p.inverse_integrated(0.0, 1.5);
        assert!((t - 3.5).abs() < 1e-9, "t = {t}");
        // Beyond the end, the final rate (1.0) continues.
        let t2 = p.inverse_integrated(0.0, 3.0);
        assert!((t2 - 5.0).abs() < 1e-9, "t2 = {t2}");
        // A trailing zero rate makes large targets unreachable.
        let pz = PiecewiseConstantIntensity::new(0.0, 1.0, vec![1.0, 0.0]).unwrap();
        assert!(pz.inverse_integrated(0.0, 2.0).is_infinite());
    }

    #[test]
    fn piecewise_max_rate_scans_the_window() {
        let p = PiecewiseConstantIntensity::new(0.0, 1.0, vec![1.0, 5.0, 2.0]).unwrap();
        assert_eq!(p.max_rate(0.0, 0.5), 1.0);
        assert_eq!(p.max_rate(0.0, 3.0), 5.0);
        assert_eq!(p.max_rate(2.0, 10.0), 2.0);
    }

    #[test]
    fn closed_form_integrates_polynomials_accurately() {
        // λ(t) = t² on [0, 3] integrates to 9.
        let c = ClosedFormIntensity::new(|t: f64| t * t, 0.01).unwrap();
        assert!((c.integrated(0.0, 3.0) - 9.0).abs() < 1e-6);
        assert!((c.rate(2.0) - 4.0).abs() < 1e-12);
        // Negative rates are clamped to zero.
        let neg = ClosedFormIntensity::new(|_| -5.0, 0.1).unwrap();
        assert_eq!(neg.rate(1.0), 0.0);
        assert_eq!(neg.integrated(0.0, 10.0), 0.0);
        assert!(ClosedFormIntensity::new(|_| 1.0, 0.0).is_err());
    }

    #[test]
    fn closed_form_inverse_round_trips() {
        let c = ClosedFormIntensity::new(|t: f64| 2.0 + (t / 10.0).sin().abs(), 0.05).unwrap();
        for &target in &[0.5, 2.0, 7.5, 30.0] {
            let t = c.inverse_integrated(1.0, target);
            assert!((c.integrated(1.0, t) - target).abs() < 1e-5);
        }
        assert_eq!(c.inverse_integrated(4.0, 0.0), 4.0);
        // A zero intensity never accumulates mass.
        let z = ClosedFormIntensity::new(|_| 0.0, 0.1).unwrap();
        assert!(z.inverse_integrated(0.0, 1.0).is_infinite());
    }

    #[test]
    fn cursor_matches_inverse_integrated_on_monotone_targets() {
        let p = PiecewiseConstantIntensity::new(0.0, 2.0, vec![1.0, 3.0, 0.0, 2.0]).unwrap();
        for &from in &[-1.0, 0.0, 1.0, 2.5, 5.0, 9.0] {
            let mut cursor = InverseCursor::new(&p, from);
            let mut target = 0.0;
            for step in 1..200 {
                target += 0.07 * (1.0 + (step % 5) as f64);
                let expected = p.inverse_integrated(from, target);
                assert_eq!(
                    cursor.advance(target),
                    expected,
                    "from={from} target={target}"
                );
            }
        }
    }

    #[test]
    fn cursor_handles_zero_rate_buckets_and_the_tail() {
        // Leading, inner and trailing zero-rate buckets.
        let p = PiecewiseConstantIntensity::new(0.0, 1.0, vec![0.0, 1.0, 0.0, 0.0, 2.0]).unwrap();
        let mut cursor = InverseCursor::new(&p, 0.0);
        for &target in &[0.2, 0.5, 1.0, 1.5, 2.9, 3.0, 4.0, 50.0] {
            assert_eq!(cursor.advance(target), p.inverse_integrated(0.0, target));
        }
        // Unreachable target under a trailing zero rate.
        let pz = PiecewiseConstantIntensity::new(0.0, 1.0, vec![1.0, 0.0]).unwrap();
        let mut cz = InverseCursor::new(&pz, 0.0);
        assert_eq!(cz.advance(0.5), 0.5);
        assert!(cz.advance(2.0).is_infinite());
    }

    #[test]
    fn cursor_survives_non_monotone_targets_and_resumes() {
        let p = PiecewiseConstantIntensity::new(0.0, 1.0, vec![1.0, 4.0, 0.5, 2.0]).unwrap();
        let mut cursor = InverseCursor::new(&p, 0.0);
        // Jump far ahead, then back: the fallback search keeps it correct.
        assert_eq!(cursor.advance(6.0), p.inverse_integrated(0.0, 6.0));
        assert_eq!(cursor.advance(0.5), p.inverse_integrated(0.0, 0.5));
        // Continuing a sequence through a saved hint matches a fresh cursor.
        let mut resumed = InverseCursor::resume(&p, 0.0, cursor.hint());
        assert_eq!(resumed.advance(1.5), p.inverse_integrated(0.0, 1.5));
        assert_eq!(resumed.advance(7.2), p.inverse_integrated(0.0, 7.2));
    }

    #[test]
    fn hinted_trait_method_matches_the_default() {
        let p = PiecewiseConstantIntensity::new(3.0, 0.5, vec![0.3, 0.0, 1.7, 0.9]).unwrap();
        let mut hint = InverseHint::default();
        let mut target = 0.0;
        for _ in 0..50 {
            target += 0.11;
            assert_eq!(
                p.inverse_integrated_hinted(3.2, target, &mut hint),
                p.inverse_integrated(3.2, target)
            );
        }
        // The default trait implementation ignores the hint entirely.
        let c = ClosedFormIntensity::new(|_| 1.0, 0.1).unwrap();
        let mut hint = InverseHint::default();
        assert_eq!(
            c.inverse_integrated_hinted(0.0, 2.0, &mut hint),
            c.inverse_integrated(0.0, 2.0)
        );
    }

    #[test]
    fn closed_form_max_rate_bounds_the_function() {
        let c = ClosedFormIntensity::new(|t: f64| 3.0 + (t).sin(), 0.01).unwrap();
        let bound = c.max_rate(0.0, 20.0);
        assert!(bound >= 4.0);
        assert!(bound < 4.5);
    }
}
