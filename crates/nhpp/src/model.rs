//! The fitted NHPP model.
//!
//! [`NhppModel`] ties the log-intensities learned by the ADMM trainer to
//! wall-clock time and exposes the quantities the rest of the system needs:
//! the historical intensity, goodness-of-fit diagnostics, and (through
//! [`crate::forecast`]) the future intensity the scaling optimizer consumes.

use crate::admm::{AdmmConfig, AdmmReport, AdmmSolver};
use crate::error::NhppError;
use crate::intensity::{Intensity, PiecewiseConstantIntensity};
use robustscaler_timeseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// A fitted non-homogeneous Poisson process with piecewise-constant
/// intensity over the training window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NhppModel {
    start: f64,
    bucket_width: f64,
    log_rates: Vec<f64>,
    period: Option<usize>,
    report: AdmmReport,
}

impl NhppModel {
    /// Fit a model to a count series (counts per bucket, not QPS).
    ///
    /// `period` is the detected period length in buckets (if any); it both
    /// activates the periodic regularizer and is carried along for
    /// forecasting. Missing buckets are treated as zero-count buckets after
    /// interpolation is *not* applied — callers that want interpolation
    /// should repair the series first (the pipeline in `robustscaler-core`
    /// does).
    pub fn fit(
        counts: &TimeSeries,
        period: Option<usize>,
        config: AdmmConfig,
    ) -> Result<Self, NhppError> {
        let values = counts.values_filled(0.0);
        let solver = AdmmSolver::new(values, counts.bucket_width(), period, config)?;
        let (log_rates, report) = solver.fit()?;
        Ok(Self {
            start: counts.start(),
            bucket_width: counts.bucket_width(),
            log_rates,
            period,
            report,
        })
    }

    /// Construct a model directly from known log-intensities (used by tests
    /// and by the forecaster).
    pub fn from_log_rates(
        start: f64,
        bucket_width: f64,
        log_rates: Vec<f64>,
        period: Option<usize>,
    ) -> Result<Self, NhppError> {
        if !(bucket_width > 0.0) {
            return Err(NhppError::InvalidParameter("bucket width must be > 0"));
        }
        if log_rates.is_empty() {
            return Err(NhppError::InvalidParameter("log rates must be non-empty"));
        }
        Ok(Self {
            start,
            bucket_width,
            log_rates,
            period,
            report: AdmmReport {
                iterations: 0,
                primal_residual: 0.0,
                final_loss: 0.0,
                converged: true,
            },
        })
    }

    /// Start time of the training window.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// End time of the training window.
    pub fn end(&self) -> f64 {
        self.start + self.bucket_width * self.log_rates.len() as f64
    }

    /// Bucket width Δt in seconds.
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }

    /// The fitted log-intensities `r_t`.
    pub fn log_rates(&self) -> &[f64] {
        &self.log_rates
    }

    /// The fitted intensities `λ_t = exp(r_t)` (queries per second).
    pub fn rates(&self) -> Vec<f64> {
        self.log_rates.iter().map(|r| r.exp()).collect()
    }

    /// The period (in buckets) used during training, if any.
    pub fn period(&self) -> Option<usize> {
        self.period
    }

    /// The period in seconds, if any.
    pub fn period_seconds(&self) -> Option<f64> {
        self.period.map(|p| p as f64 * self.bucket_width)
    }

    /// The trainer's convergence report.
    pub fn report(&self) -> &AdmmReport {
        &self.report
    }

    /// The historical intensity as a piecewise-constant function of time.
    pub fn historical_intensity(&self) -> PiecewiseConstantIntensity {
        PiecewiseConstantIntensity::from_log_rates(self.start, self.bucket_width, &self.log_rates)
            .expect("validated at construction")
    }

    /// Expected number of arrivals in `[from, to)` under the fitted model.
    pub fn expected_count(&self, from: f64, to: f64) -> f64 {
        self.historical_intensity().integrated(from, to)
    }

    /// In-sample mean absolute error between fitted per-bucket expected
    /// counts and the observed counts — a quick goodness-of-fit diagnostic.
    pub fn in_sample_mae(&self, counts: &TimeSeries) -> Result<f64, NhppError> {
        if counts.len() != self.log_rates.len() {
            return Err(NhppError::InvalidParameter(
                "count series length differs from the fitted model",
            ));
        }
        let observed = counts.values_filled(0.0);
        let mae = self
            .log_rates
            .iter()
            .zip(observed.iter())
            .map(|(r, q)| (r.exp() * self.bucket_width - q).abs())
            .sum::<f64>()
            / observed.len() as f64;
        Ok(mae)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use robustscaler_stats::{DiscreteDistribution, Poisson};

    fn counts_from_rates(rates: &[f64], dt: f64, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let counts: Vec<f64> = rates
            .iter()
            .map(|&r| Poisson::new((r * dt).max(1e-9)).unwrap().sample(&mut rng) as f64)
            .collect();
        TimeSeries::from_values(0.0, dt, counts).unwrap()
    }

    #[test]
    fn from_log_rates_validates() {
        assert!(NhppModel::from_log_rates(0.0, 0.0, vec![0.0], None).is_err());
        assert!(NhppModel::from_log_rates(0.0, 1.0, vec![], None).is_err());
        let m = NhppModel::from_log_rates(10.0, 60.0, vec![0.0, 1.0], Some(2)).unwrap();
        assert_eq!(m.start(), 10.0);
        assert_eq!(m.end(), 130.0);
        assert_eq!(m.period(), Some(2));
        assert_eq!(m.period_seconds(), Some(120.0));
        assert_eq!(m.rates()[0], 1.0);
    }

    #[test]
    fn fit_recovers_piecewise_rates() {
        let dt = 60.0;
        let rates: Vec<f64> = (0..200)
            .map(|i| if (i / 50) % 2 == 0 { 0.2 } else { 0.8 })
            .collect();
        let series = counts_from_rates(&rates, dt, 11);
        let model = NhppModel::fit(&series, None, AdmmConfig::default()).unwrap();
        assert_eq!(model.log_rates().len(), 200);
        // Expected arrivals over the whole window should be close to observed.
        let observed_total: f64 = series.values_filled(0.0).iter().sum();
        let expected_total = model.expected_count(series.start(), series.end());
        assert!(
            (expected_total - observed_total).abs() / observed_total < 0.15,
            "expected {expected_total}, observed {observed_total}"
        );
        // MAE per bucket should be small relative to the mean count.
        let mae = model.in_sample_mae(&series).unwrap();
        let mean_count = observed_total / 200.0;
        assert!(mae < mean_count, "mae {mae} vs mean count {mean_count}");
    }

    #[test]
    fn historical_intensity_matches_log_rates() {
        let m = NhppModel::from_log_rates(0.0, 2.0, vec![0.0, (2.0_f64).ln()], None).unwrap();
        let intensity = m.historical_intensity();
        assert!((intensity.rate(1.0) - 1.0).abs() < 1e-12);
        assert!((intensity.rate(3.0) - 2.0).abs() < 1e-12);
        assert!((m.expected_count(0.0, 4.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn in_sample_mae_requires_matching_length() {
        let m = NhppModel::from_log_rates(0.0, 1.0, vec![0.0; 5], None).unwrap();
        let series = TimeSeries::from_values(0.0, 1.0, vec![1.0; 4]).unwrap();
        assert!(m.in_sample_mae(&series).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let m = NhppModel::from_log_rates(0.0, 60.0, vec![0.1, -0.2, 0.3], Some(3)).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: NhppModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
