//! Query arrival prediction (module 3 of the paper's framework).
//!
//! The fitted intensity is extrapolated into the near future. When a period
//! was detected, the forecast repeats the per-phase intensity estimated from
//! the most recent periods (robustly, via the median across periods); when
//! the workload is aperiodic, the forecast carries the recent local level
//! forward — the same "local intensity" the paper recommends for computing
//! the κ threshold.

use crate::error::NhppError;
use crate::intensity::PiecewiseConstantIntensity;
use crate::model::NhppModel;
use robustscaler_stats::median;
use serde::{Deserialize, Serialize};

/// Configuration of the intensity forecaster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForecastConfig {
    /// How many of the most recent periods to pool when estimating the
    /// per-phase pattern (periodic workloads).
    pub lookback_periods: usize,
    /// How many recent buckets to average for aperiodic workloads (and as a
    /// fallback when fewer than one full period of history exists).
    pub recent_window: usize,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        Self {
            lookback_periods: 4,
            recent_window: 10,
        }
    }
}

/// Format version written by [`Forecaster::snapshot`]; bump on any layout
/// change and keep [`ForecasterSnapshot::restore`] reading old versions
/// still present in fleet checkpoints.
pub const FORECASTER_SNAPSHOT_VERSION: u32 = 1;

/// A serializable, version-tagged envelope around a [`Forecaster`]'s full
/// state: the installed [`NhppModel`] (which already derives serde) plus
/// the forecast configuration it is refreshed under.
///
/// The envelope exists so on-disk checkpoints can evolve: the version tag
/// is checked before any field is interpreted, and unknown versions fail
/// with [`NhppError::UnsupportedSnapshotVersion`] instead of
/// mis-deserializing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForecasterSnapshot {
    /// Snapshot format version ([`FORECASTER_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The installed model.
    pub model: NhppModel,
    /// The forecast configuration.
    pub config: ForecastConfig,
}

impl ForecasterSnapshot {
    /// Rebuild the forecaster this snapshot was taken from, revalidating
    /// the configuration as [`Forecaster::new`] would.
    pub fn restore(self) -> Result<Forecaster, NhppError> {
        if self.version != FORECASTER_SNAPSHOT_VERSION {
            return Err(NhppError::UnsupportedSnapshotVersion {
                found: self.version,
                supported: FORECASTER_SNAPSHOT_VERSION,
            });
        }
        Forecaster::new(self.model, self.config)
    }
}

/// Forecaster wrapping a fitted [`NhppModel`].
#[derive(Debug, Clone)]
pub struct Forecaster {
    model: NhppModel,
    config: ForecastConfig,
}

impl Forecaster {
    /// Create a forecaster.
    pub fn new(model: NhppModel, config: ForecastConfig) -> Result<Self, NhppError> {
        if config.lookback_periods == 0 || config.recent_window == 0 {
            return Err(NhppError::InvalidParameter(
                "lookback_periods and recent_window must be >= 1",
            ));
        }
        Ok(Self { model, config })
    }

    /// The wrapped model.
    pub fn model(&self) -> &NhppModel {
        &self.model
    }

    /// The forecaster's configuration.
    pub fn config(&self) -> &ForecastConfig {
        &self.config
    }

    /// Capture the forecaster's state as a serializable, version-tagged
    /// [`ForecasterSnapshot`].
    pub fn snapshot(&self) -> ForecasterSnapshot {
        ForecasterSnapshot {
            version: FORECASTER_SNAPSHOT_VERSION,
            model: self.model.clone(),
            config: self.config,
        }
    }

    /// Swap in a freshly fitted model, keeping the configuration.
    ///
    /// This is the online serving layer's rolling-refit entry point: a
    /// long-lived forecaster is refreshed in place whenever drift detection
    /// or the refit schedule retrains the NHPP, instead of being rebuilt
    /// (and re-validated) from scratch every round.
    pub fn refresh(&mut self, model: NhppModel) {
        self.model = model;
    }

    /// Forecast the intensity for `[from, from + horizon)`.
    ///
    /// `from` is usually the end of the training window ("now"); forecasts
    /// starting later are supported and simply shift the periodic phase.
    pub fn forecast(
        &self,
        from: f64,
        horizon: f64,
    ) -> Result<PiecewiseConstantIntensity, NhppError> {
        if !(horizon > 0.0) {
            return Err(NhppError::InvalidParameter("horizon must be > 0"));
        }
        if from < self.model.start() {
            return Err(NhppError::OutOfRange {
                time: from,
                start: self.model.start(),
                end: f64::INFINITY,
            });
        }
        let dt = self.model.bucket_width();
        let rates = self.model.rates();
        let t = rates.len();
        let buckets = (horizon / dt).ceil() as usize;
        let buckets = buckets.max(1);

        let predicted: Vec<f64> = match self.model.period() {
            Some(period) if period >= 1 && t >= period => {
                // Per-phase robust pattern over the last `lookback_periods`.
                let lookback = self.config.lookback_periods.min(t / period).max(1);
                let pattern: Vec<f64> = (0..period)
                    .map(|phase| {
                        let mut values = Vec::with_capacity(lookback);
                        for k in 1..=lookback {
                            let idx = t as i64 - (k * period) as i64 + phase as i64;
                            if idx >= 0 {
                                values.push(rates[idx as usize]);
                            }
                        }
                        if values.is_empty() {
                            rates[t - 1]
                        } else {
                            median(&values).expect("non-empty")
                        }
                    })
                    .collect();
                // Phase of the first forecast bucket relative to the training
                // start, so the pattern lines up with wall-clock time.
                let first_bucket_index = ((from - self.model.start()) / dt).round() as i64;
                (0..buckets)
                    .map(|i| {
                        let phase =
                            ((first_bucket_index + i as i64).rem_euclid(period as i64)) as usize;
                        pattern[phase]
                    })
                    .collect()
            }
            _ => {
                // Aperiodic: carry the recent local level forward.
                let window = self.config.recent_window.min(t).max(1);
                let recent = &rates[t - window..];
                let level = recent.iter().sum::<f64>() / window as f64;
                vec![level; buckets]
            }
        };

        PiecewiseConstantIntensity::new(from, dt, predicted)
    }

    /// Forecast the *local* intensity level at `from` — a single scalar used
    /// by the κ threshold of Algorithm 4 (paper §VI-C recommends using the
    /// local intensity rather than a global upper bound).
    pub fn local_intensity(&self, from: f64) -> Result<f64, NhppError> {
        let horizon = self.model.bucket_width();
        let forecast = self.forecast(from, horizon)?;
        Ok(forecast.rates()[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::Intensity;

    fn periodic_model(buckets: usize, period: usize) -> NhppModel {
        // rate alternates by phase: λ(phase) = 0.1·(phase+1)
        let log_rates: Vec<f64> = (0..buckets)
            .map(|i| (0.1 * ((i % period) as f64 + 1.0)).ln())
            .collect();
        NhppModel::from_log_rates(0.0, 60.0, log_rates, Some(period)).unwrap()
    }

    #[test]
    fn constructor_validates_config() {
        let m = periodic_model(40, 4);
        assert!(Forecaster::new(
            m.clone(),
            ForecastConfig {
                lookback_periods: 0,
                recent_window: 10
            }
        )
        .is_err());
        assert!(Forecaster::new(
            m,
            ForecastConfig {
                lookback_periods: 4,
                recent_window: 0
            }
        )
        .is_err());
    }

    #[test]
    fn periodic_forecast_repeats_the_phase_pattern() {
        let m = periodic_model(48, 4);
        let f = Forecaster::new(m.clone(), ForecastConfig::default()).unwrap();
        let forecast = f.forecast(m.end(), 8.0 * 60.0).unwrap();
        assert_eq!(forecast.len(), 8);
        // Training covered exactly 12 periods, so the forecast picks up at
        // phase 0 again.
        for (i, &rate) in forecast.rates().iter().enumerate() {
            let expected = 0.1 * ((i % 4) as f64 + 1.0);
            assert!(
                (rate - expected).abs() < 1e-9,
                "bucket {i}: {rate} vs {expected}"
            );
        }
        // The forecast starts where requested.
        assert_eq!(forecast.start(), m.end());
    }

    #[test]
    fn forecast_phase_alignment_respects_the_requested_start() {
        let m = periodic_model(48, 4);
        let f = Forecaster::new(m.clone(), ForecastConfig::default()).unwrap();
        // Start two buckets after the end of training: phase shifts by 2.
        let from = m.end() + 2.0 * 60.0;
        let forecast = f.forecast(from, 4.0 * 60.0).unwrap();
        let expected_phases = [2usize, 3, 0, 1];
        for (i, &rate) in forecast.rates().iter().enumerate() {
            let expected = 0.1 * (expected_phases[i] as f64 + 1.0);
            assert!((rate - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn aperiodic_forecast_carries_recent_level() {
        let log_rates: Vec<f64> = (0..30)
            .map(|i| {
                if i < 20 {
                    (0.2_f64).ln()
                } else {
                    (0.6_f64).ln()
                }
            })
            .collect();
        let m = NhppModel::from_log_rates(0.0, 60.0, log_rates, None).unwrap();
        let f = Forecaster::new(m.clone(), ForecastConfig::default()).unwrap();
        let forecast = f.forecast(m.end(), 5.0 * 60.0).unwrap();
        for &rate in forecast.rates() {
            assert!((rate - 0.6).abs() < 1e-9);
        }
        assert!((f.local_intensity(m.end()).unwrap() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn refresh_swaps_the_model_in_place() {
        let m = periodic_model(48, 4);
        let mut f = Forecaster::new(m.clone(), ForecastConfig::default()).unwrap();
        let before = f.forecast(m.end(), 4.0 * 60.0).unwrap();
        // A flat replacement model: every refreshed forecast bucket is 0.5.
        let flat = NhppModel::from_log_rates(0.0, 60.0, vec![(0.5_f64).ln(); 48], None).unwrap();
        f.refresh(flat);
        assert_eq!(f.config().lookback_periods, 4);
        let after = f.forecast(m.end(), 4.0 * 60.0).unwrap();
        assert_ne!(before.rates(), after.rates());
        for &rate in after.rates() {
            assert!((rate - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn snapshot_restore_round_trips_through_json() {
        let m = periodic_model(48, 4);
        let f = Forecaster::new(m.clone(), ForecastConfig::default()).unwrap();
        let snap = f.snapshot();
        assert_eq!(snap.version, FORECASTER_SNAPSHOT_VERSION);
        let json = serde_json::to_string(&snap).unwrap();
        let back: ForecasterSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        let restored = back.restore().unwrap();
        assert_eq!(restored.model(), &m);
        // Forecasts from the restored forecaster are bit-identical.
        let a = f.forecast(m.end(), 8.0 * 60.0).unwrap();
        let b = restored.forecast(m.end(), 8.0 * 60.0).unwrap();
        assert_eq!(a.rates(), b.rates());
    }

    #[test]
    fn snapshot_restore_rejects_unknown_versions_and_bad_config() {
        let m = periodic_model(20, 4);
        let f = Forecaster::new(m, ForecastConfig::default()).unwrap();
        let mut snap = f.snapshot();
        snap.version += 1;
        assert!(matches!(
            snap.clone().restore(),
            Err(NhppError::UnsupportedSnapshotVersion { found, supported })
                if found == supported + 1
        ));
        snap.version = FORECASTER_SNAPSHOT_VERSION;
        snap.config.lookback_periods = 0;
        assert!(snap.restore().is_err());
    }

    #[test]
    fn rejects_invalid_horizon_and_start() {
        let m = periodic_model(20, 4);
        let f = Forecaster::new(m.clone(), ForecastConfig::default()).unwrap();
        assert!(f.forecast(m.end(), 0.0).is_err());
        assert!(f.forecast(m.start() - 1.0, 60.0).is_err());
    }

    #[test]
    fn forecast_total_mass_matches_periodic_average() {
        let m = periodic_model(400, 4);
        let f = Forecaster::new(m.clone(), ForecastConfig::default()).unwrap();
        let horizon = 400.0 * 60.0;
        let forecast = f.forecast(m.end(), horizon).unwrap();
        // Average rate of the pattern is 0.1·(1+2+3+4)/4 = 0.25.
        let expected_mass = 0.25 * horizon;
        assert!(
            (forecast.total_mass() - expected_mass).abs() / expected_mass < 1e-9,
            "mass {} vs {}",
            forecast.total_mass(),
            expected_mass
        );
        assert!((forecast.integrated(m.end(), m.end() + 240.0) - 0.25 * 240.0).abs() < 1e-9);
    }
}
