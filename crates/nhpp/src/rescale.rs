//! Time-rescaling diagnostics.
//!
//! If arrivals `ξ_1 < ξ_2 < …` follow an NHPP with intensity `λ`, then the
//! transformed times `Λ(start, ξ_i)` follow a unit-rate homogeneous Poisson
//! process, so their increments are i.i.d. `Exp(1)`. This is the argument
//! behind the paper's Proposition 2 and also a standard goodness-of-fit test
//! for the fitted model, which the pipeline uses as a diagnostic.

use crate::intensity::Intensity;

/// Transform arrival times through the integrated intensity,
/// `u_i = Λ(start, ξ_i)`.
pub fn rescale_arrivals<I: Intensity>(intensity: &I, arrivals: &[f64], start: f64) -> Vec<f64> {
    arrivals
        .iter()
        .map(|&t| intensity.integrated(start, t))
        .collect()
}

/// Kolmogorov–Smirnov statistic of the rescaled inter-arrival times against
/// the `Exp(1)` distribution. Values below roughly `1.36/√n` indicate a good
/// fit at the 5% level.
pub fn rescaled_ks_statistic<I: Intensity>(intensity: &I, arrivals: &[f64], start: f64) -> f64 {
    let rescaled = rescale_arrivals(intensity, arrivals, start);
    if rescaled.len() < 2 {
        return 0.0;
    }
    let mut gaps: Vec<f64> = rescaled.windows(2).map(|w| w[1] - w[0]).collect();
    // Include the first gap from the window start.
    gaps.push(rescaled[0]);
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite gaps"));
    let n = gaps.len() as f64;
    let mut ks = 0.0_f64;
    for (i, &g) in gaps.iter().enumerate() {
        let f = 1.0 - (-g).exp();
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        ks = ks.max((f - lo).abs()).max((f - hi).abs());
    }
    ks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::PiecewiseConstantIntensity;
    use crate::sampling::sample_arrivals;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rescaling_linearizes_the_cumulative_intensity() {
        let intensity = PiecewiseConstantIntensity::new(0.0, 10.0, vec![1.0, 3.0]).unwrap();
        let arrivals = [5.0, 10.0, 15.0];
        let rescaled = rescale_arrivals(&intensity, &arrivals, 0.0);
        assert!((rescaled[0] - 5.0).abs() < 1e-12);
        assert!((rescaled[1] - 10.0).abs() < 1e-12);
        assert!((rescaled[2] - 25.0).abs() < 1e-12);
    }

    #[test]
    fn correctly_specified_model_passes_the_ks_test() {
        let intensity =
            PiecewiseConstantIntensity::new(0.0, 100.0, vec![0.5, 2.0, 0.1, 1.0, 3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let arrivals = sample_arrivals(&intensity, 0.0, 500.0, &mut rng);
        assert!(arrivals.len() > 300);
        let ks = rescaled_ks_statistic(&intensity, &arrivals, 0.0);
        let critical = 1.63 / (arrivals.len() as f64).sqrt(); // ~1% level
        assert!(ks < critical * 1.5, "ks = {ks}, critical = {critical}");
    }

    #[test]
    fn misspecified_model_fails_the_ks_test() {
        // Generate from a strongly non-homogeneous intensity but test against
        // a constant-rate model with the same total mass.
        let truth =
            PiecewiseConstantIntensity::new(0.0, 100.0, vec![0.02, 3.0, 0.02, 3.0, 0.02]).unwrap();
        let wrong = PiecewiseConstantIntensity::new(0.0, 500.0, vec![1.212]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let arrivals = sample_arrivals(&truth, 0.0, 500.0, &mut rng);
        let ks = rescaled_ks_statistic(&wrong, &arrivals, 0.0);
        let critical = 1.63 / (arrivals.len() as f64).sqrt();
        assert!(
            ks > critical * 3.0,
            "ks = {ks} should reject the flat model"
        );
    }

    #[test]
    fn degenerate_inputs_return_zero() {
        let intensity = PiecewiseConstantIntensity::new(0.0, 1.0, vec![1.0]).unwrap();
        assert_eq!(rescaled_ks_statistic(&intensity, &[], 0.0), 0.0);
        assert_eq!(rescaled_ks_statistic(&intensity, &[0.5], 0.0), 0.0);
    }
}
